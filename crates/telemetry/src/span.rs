//! Request-scoped distributed tracing: deterministic span contexts,
//! a bounded span sink, a critical-path extractor, and Chrome-trace
//! export so request spans and cycle-level sim tracks render in one
//! Perfetto timeline.
//!
//! # Design
//!
//! A *trace* is one request's causal history; a *span* is one stage of
//! it (queue wait, batch execution, retry backoff, an elastic-ring
//! exchange). Everything is deterministic and wall-clock-free:
//!
//! - trace ids derive from a seed and the request id ([`derive_trace_id`]
//!   — a SplitMix64 finalizer, so consecutive ids spread uniformly);
//! - span ids are allocated sequentially by the [`SpanSink`];
//! - timestamps are whatever virtual clock the producer runs on
//!   (microseconds in the serving engine, cycles in the simulators).
//!
//! Spans are recorded *closed* (both endpoints known), so the sink is a
//! plain bounded vector — no open-span bookkeeping, no allocation beyond
//! the record itself. Producers that need to link children to a parent
//! allocate the parent's context first with [`SpanSink::open_root`] and
//! record the root last with [`SpanSink::close_root`].
//!
//! [`critical_path`] folds a span forest into per-request-class stage
//! attribution: for every class (e.g. `resnet50/fp16`), how many cycles
//! or microseconds went to each stage, and which stage dominates. Since
//! child spans partition their root by construction, attribution sums to
//! total request latency exactly; `obs_sweep` hard-asserts it within 1%.

use crate::trace::TraceSink;

/// SplitMix64 finalizer: a trace id from a stream seed and a request id.
/// Deterministic, uniform, and wall-clock-free; never returns 0 (0 is
/// the "no parent" sentinel).
pub fn derive_trace_id(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z | 1
}

/// The identity a producer threads through a request's call chain: which
/// trace this work belongs to and which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request's trace id (shared by every span of the request).
    pub trace_id: u64,
    /// The span new children attach to.
    pub span_id: u64,
}

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the sink).
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_id: u64,
    /// Stage label (static: `"request"`, `"queue"`, `"exec"`, ...).
    pub name: &'static str,
    /// Request class (`model/tier`), set on roots; empty on children.
    pub class: String,
    /// Start timestamp, producer time base.
    pub start: u64,
    /// End timestamp (≥ start).
    pub end: u64,
}

impl SpanRecord {
    /// Span duration in the producer's time base.
    pub fn dur(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A bounded collector of closed spans. Past [`SpanSink::max_spans`],
/// further records are counted in [`SpanSink::dropped`] instead of
/// stored — never silent, never unbounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSink {
    spans: Vec<SpanRecord>,
    next_span_id: u64,
    /// Hard cap on stored spans.
    pub max_spans: usize,
    /// Spans rejected after the cap was reached.
    pub dropped: u64,
}

impl Default for SpanSink {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanSink {
    /// A sink with the default quarter-million-span cap.
    pub fn new() -> Self {
        Self::with_capacity(250_000)
    }

    /// A sink capped at `max_spans` stored spans.
    pub fn with_capacity(max_spans: usize) -> Self {
        Self { spans: Vec::new(), next_span_id: 1, max_spans, dropped: 0 }
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of stored spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_span_id;
        self.next_span_id += 1;
        id
    }

    fn push(&mut self, s: SpanRecord) {
        if self.spans.len() >= self.max_spans {
            self.dropped += 1;
        } else {
            self.spans.push(s);
        }
    }

    /// Allocates the root context for a new trace. Children recorded
    /// against the returned context link to the root; record the root
    /// itself with [`SpanSink::close_root`] once its end is known.
    pub fn open_root(&mut self, trace_id: u64) -> SpanContext {
        SpanContext { trace_id, span_id: self.alloc_id() }
    }

    /// Records a closed child span under `parent`.
    pub fn child(&mut self, parent: SpanContext, name: &'static str, start: u64, end: u64) {
        let span_id = self.alloc_id();
        self.push(SpanRecord {
            trace_id: parent.trace_id,
            span_id,
            parent_id: parent.span_id,
            name,
            class: String::new(),
            start,
            end: end.max(start),
        });
    }

    /// Records the root span for a context opened with
    /// [`SpanSink::open_root`].
    pub fn close_root(
        &mut self,
        ctx: SpanContext,
        name: &'static str,
        class: &str,
        start: u64,
        end: u64,
    ) {
        self.push(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: 0,
            name,
            class: class.to_string(),
            start,
            end: end.max(start),
        });
    }

    /// Appends every span of `other` (both sinks must share a time
    /// base), remapping nothing — span ids are made disjoint by offset
    /// so merged forests stay valid.
    pub fn merge(&mut self, other: SpanSink) {
        self.dropped += other.dropped;
        let offset = self.next_span_id;
        let mut top = self.next_span_id;
        for mut s in other.spans {
            s.span_id += offset;
            if s.parent_id != 0 {
                s.parent_id += offset;
            }
            top = top.max(s.span_id);
            self.push(s);
        }
        self.next_span_id = top + 1;
    }

    /// Renders every span as a Chrome-trace complete event into `sink`,
    /// under process `pid`: one thread track per trace (requests render
    /// side by side, stages nest within their request). Root spans carry
    /// their class in the event name so the viewer labels them usefully.
    pub fn to_trace(&self, sink: &mut TraceSink, pid: u32, cat: &'static str, process: &str) {
        spans_to_trace(&self.spans, sink, pid, cat, process);
    }
}

/// The slice form of [`SpanSink::to_trace`], for consumers holding
/// detached records (e.g. a sweep result's span vector).
pub fn spans_to_trace(
    spans: &[SpanRecord],
    sink: &mut TraceSink,
    pid: u32,
    cat: &'static str,
    process: &str,
) {
    if spans.is_empty() {
        return;
    }
    sink.track(pid, 0, process, "spans");
    for s in spans {
        let tid = (s.trace_id ^ (s.trace_id >> 32)) as u32;
        if s.parent_id == 0 && !s.class.is_empty() {
            let name = format!("{} {}", s.name, s.class);
            sink.complete(pid, tid, cat, &name, s.start, s.dur());
        } else {
            sink.complete(pid, tid, cat, s.name, s.start, s.dur());
        }
    }
}

/// Checks that `spans` form a well-nested forest: every parent exists in
/// the same trace, every child's range is contained in its parent's, and
/// siblings do not overlap.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_forest(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_id: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
    for s in spans {
        if s.end < s.start {
            return Err(format!("span {} ends before it starts", s.span_id));
        }
        if by_id.insert(s.span_id, s).is_some() {
            return Err(format!("duplicate span id {}", s.span_id));
        }
    }
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if s.parent_id == 0 {
            continue;
        }
        let Some(parent) = by_id.get(&s.parent_id) else {
            return Err(format!("span {} links to missing parent {}", s.span_id, s.parent_id));
        };
        if parent.trace_id != s.trace_id {
            return Err(format!(
                "span {} and its parent {} are in different traces",
                s.span_id, s.parent_id
            ));
        }
        if s.start < parent.start || s.end > parent.end {
            return Err(format!(
                "span {} [{}, {}] escapes parent {} [{}, {}]",
                s.span_id, s.start, s.end, parent.span_id, parent.start, parent.end
            ));
        }
        children.entry(s.parent_id).or_default().push(s);
    }
    for (parent, mut kids) in children {
        kids.sort_by_key(|s| (s.start, s.end, s.span_id));
        for pair in kids.windows(2) {
            if pair[1].start < pair[0].end {
                return Err(format!(
                    "children {} and {} of span {parent} overlap",
                    pair[0].span_id, pair[1].span_id
                ));
            }
        }
    }
    Ok(())
}

/// Per-class critical-path attribution over a span forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassCriticalPath {
    /// Request class (root span class; `""` groups unclassed roots).
    pub class: String,
    /// Root spans (requests) in the class.
    pub requests: u64,
    /// Sum of root durations — total latency of the class.
    pub total: u64,
    /// Per-stage duration sums over direct children, name-sorted.
    pub stages: Vec<(&'static str, u64)>,
    /// Root time not covered by any child span.
    pub unattributed: u64,
}

impl ClassCriticalPath {
    /// Stage + child-attributed total (excludes [`Self::unattributed`]).
    pub fn attributed(&self) -> u64 {
        self.stages.iter().map(|(_, d)| d).sum()
    }

    /// The stage with the largest share, if any child time was recorded.
    pub fn dominant(&self) -> Option<(&'static str, u64)> {
        self.stages.iter().copied().max_by_key(|&(name, d)| (d, std::cmp::Reverse(name)))
    }
}

/// Folds a span forest into per-class stage attribution: direct children
/// of each root are charged to their stage name; whatever the children
/// do not cover shows up as `unattributed` (and must stay within 1% of
/// total for the E23 contract to hold).
pub fn critical_path(spans: &[SpanRecord]) -> Vec<ClassCriticalPath> {
    use std::collections::BTreeMap;
    // Root span id -> class index.
    let mut class_of_root: BTreeMap<u64, usize> = BTreeMap::new();
    let mut classes: BTreeMap<String, usize> = BTreeMap::new();
    let mut out: Vec<ClassCriticalPath> = Vec::new();
    for s in spans {
        if s.parent_id != 0 {
            continue;
        }
        let idx = *classes.entry(s.class.clone()).or_insert_with(|| {
            out.push(ClassCriticalPath {
                class: s.class.clone(),
                requests: 0,
                total: 0,
                stages: Vec::new(),
                unattributed: 0,
            });
            out.len() - 1
        });
        class_of_root.insert(s.span_id, idx);
        out[idx].requests += 1;
        out[idx].total += s.dur();
        out[idx].unattributed += s.dur(); // children subtract below
    }
    for s in spans {
        if s.parent_id == 0 {
            continue;
        }
        let Some(&idx) = class_of_root.get(&s.parent_id) else { continue };
        let cp = &mut out[idx];
        cp.unattributed = cp.unattributed.saturating_sub(s.dur());
        match cp.stages.iter_mut().find(|(name, _)| *name == s.name) {
            Some((_, d)) => *d += s.dur(),
            None => cp.stages.push((s.name, s.dur())),
        }
    }
    for cp in &mut out {
        cp.stages.sort_by_key(|&(name, _)| name);
    }
    out.sort_by(|a, b| a.class.cmp(&b.class));
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn request(sink: &mut SpanSink, trace_seed: u64, id: u64, class: &str) {
        let ctx = sink.open_root(derive_trace_id(trace_seed, id));
        let t0 = id * 100;
        sink.child(ctx, "queue", t0, t0 + 30);
        sink.child(ctx, "exec", t0 + 30, t0 + 90);
        sink.close_root(ctx, "request", class, t0, t0 + 90);
    }

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        assert_eq!(derive_trace_id(7, 1), derive_trace_id(7, 1));
        assert_ne!(derive_trace_id(7, 1), derive_trace_id(7, 2));
        assert_ne!(derive_trace_id(7, 1), derive_trace_id(8, 1));
        assert_ne!(derive_trace_id(0, 0), 0);
    }

    #[test]
    fn forest_validates_and_attributes_exactly() {
        let mut sink = SpanSink::new();
        request(&mut sink, 1, 0, "m/fp16");
        request(&mut sink, 1, 1, "m/fp16");
        request(&mut sink, 1, 2, "m/int4");
        validate_forest(sink.spans()).unwrap();
        let cp = critical_path(sink.spans());
        assert_eq!(cp.len(), 2);
        let fp16 = &cp[0];
        assert_eq!(fp16.class, "m/fp16");
        assert_eq!(fp16.requests, 2);
        assert_eq!(fp16.total, 180);
        assert_eq!(fp16.attributed(), 180);
        assert_eq!(fp16.unattributed, 0);
        assert_eq!(fp16.dominant(), Some(("exec", 120)));
    }

    #[test]
    fn violations_are_reported() {
        let mut sink = SpanSink::new();
        let ctx = sink.open_root(derive_trace_id(1, 0));
        sink.child(ctx, "queue", 0, 50);
        sink.close_root(ctx, "request", "m", 10, 40); // child escapes root
        assert!(validate_forest(sink.spans()).is_err());

        let orphan = [SpanRecord {
            trace_id: 1,
            span_id: 5,
            parent_id: 99,
            name: "x",
            class: String::new(),
            start: 0,
            end: 1,
        }];
        assert!(validate_forest(&orphan).unwrap_err().contains("missing parent"));
    }

    #[test]
    fn merge_keeps_ids_disjoint_and_forests_valid() {
        let mut a = SpanSink::new();
        request(&mut a, 1, 0, "m/fp16");
        let mut b = SpanSink::new();
        request(&mut b, 2, 1, "m/hfp8");
        a.merge(b);
        validate_forest(a.spans()).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(critical_path(a.spans()).len(), 2);
    }

    #[test]
    fn cap_counts_drops() {
        let mut sink = SpanSink::with_capacity(2);
        request(&mut sink, 1, 0, "m");
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped, 1);
    }

    #[test]
    fn to_trace_renders_complete_events() {
        let mut sink = SpanSink::new();
        request(&mut sink, 1, 0, "m/fp16");
        let mut trace = TraceSink::new();
        sink.to_trace(&mut trace, 1000, "serve", "serve");
        // 2 metadata + 3 spans
        assert_eq!(trace.len(), 5);
        let root = trace.events().iter().find(|e| e.name.starts_with("request")).unwrap();
        assert_eq!(root.name, "request m/fp16");
        assert_eq!(root.dur, 90);
        assert_eq!(root.pid, 1000);
    }
}
