//! OpenMetrics text exposition: render a [`MetricsRegistry`] snapshot as
//! scrape-able text, and validate/parse such text back.
//!
//! The renderer emits one *metric family* per registry entry, in the
//! registry's deterministic (name-sorted) order:
//!
//! ```text
//! # TYPE serve_completed counter
//! serve_completed_total{job="rapid"} 42
//! # TYPE serve_latency_us histogram
//! serve_latency_us_bucket{job="rapid",le="1"} 2
//! serve_latency_us_bucket{job="rapid",le="+Inf"} 10
//! serve_latency_us_sum{job="rapid"} 12345
//! serve_latency_us_count{job="rapid"} 10
//! # EOF
//! ```
//!
//! Dotted registry names sanitize to underscores (`serve.completed` →
//! `serve_completed`); the power-of-two histogram buckets become
//! cumulative `le` buckets with upper bounds `2^(i+1) - 1`, always ending
//! in `+Inf`. Label values are escaped per the spec. Non-finite gauges
//! are skipped (nothing in this repo emits them; the bench layer already
//! filters non-finite metrics).
//!
//! [`validate`] is a strict line parser used by tests, `obs_sweep` and
//! `check.sh --obs`: it enforces `TYPE`-before-samples, the per-kind
//! sample-name suffix rules, cumulative non-decreasing buckets,
//! `_count` == `+Inf` bucket, and a single terminal `# EOF` — and
//! returns the parsed document so round-trip tests can compare values.

use crate::registry::{Metric, MetricsRegistry};

/// Environment variable naming the OpenMetrics snapshot output path.
/// Benches that support it write their merged registry there on exit.
pub const METRICS_ENV: &str = "RAPID_METRICS";

/// The snapshot path requested through [`METRICS_ENV`], if any (empty
/// value reads as unset).
pub fn metrics_path_from_env() -> Option<std::path::PathBuf> {
    match std::env::var(METRICS_ENV) {
        Ok(p) if !p.trim().is_empty() => Some(std::path::PathBuf::from(p)),
        _ => None,
    }
}

/// Maps a registry name onto the OpenMetrics charset: `[a-zA-Z0-9_:]`,
/// first char non-digit. Dots and dashes become underscores.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders `reg` as an OpenMetrics text snapshot with no shared labels.
pub fn render(reg: &MetricsRegistry) -> String {
    render_labeled(reg, &[])
}

/// Renders `reg` as an OpenMetrics text snapshot, attaching `labels` to
/// every sample. Families appear in registry (name-sorted) order, so the
/// output is deterministic.
pub fn render_labeled(reg: &MetricsRegistry, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let plain = label_block(labels, None);
    for (name, metric) in reg.iter() {
        let fam = sanitize_name(name);
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {fam} counter\n"));
                out.push_str(&format!("{fam}_total{plain} {v}\n"));
            }
            Metric::Gauge(v) => {
                if !v.is_finite() {
                    continue;
                }
                out.push_str(&format!("# TYPE {fam} gauge\n"));
                out.push_str(&format!("{fam}{plain} {}\n", fmt_f64(*v)));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {fam} histogram\n"));
                let last = h
                    .buckets
                    .iter()
                    .rposition(|&c| c != 0)
                    .map_or(0, |i| i + 1);
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate().take(last) {
                    cum += c;
                    let le = format!("{}", (1u128 << (i + 1)) - 1);
                    let lb = label_block(labels, Some(("le", &le)));
                    out.push_str(&format!("{fam}_bucket{lb} {cum}\n"));
                }
                let lb = label_block(labels, Some(("le", "+Inf")));
                out.push_str(&format!("{fam}_bucket{lb} {}\n", h.count));
                out.push_str(&format!("{fam}_sum{plain} {}\n", h.sum));
                out.push_str(&format!("{fam}_count{plain} {}\n", h.count));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Metric family kinds this exposition emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmKind {
    /// Monotonic counter (`_total` samples).
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct OmSample {
    /// Full sample name (family + suffix).
    pub name: String,
    /// Labels in emission order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

impl OmSample {
    /// The sample's `le` label, when present.
    pub fn le(&self) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct OmFamily {
    /// Family name (without per-kind suffixes).
    pub name: String,
    /// Declared kind.
    pub kind: OmKind,
    /// Samples, in file order.
    pub samples: Vec<OmSample>,
}

/// A parsed, validated OpenMetrics document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OmDoc {
    /// Families in file order.
    pub families: Vec<OmFamily>,
}

impl OmDoc {
    /// The named family, when present.
    pub fn family(&self, name: &str) -> Option<&OmFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The single value of a counter family (`<name>_total`).
    pub fn counter(&self, name: &str) -> Option<f64> {
        let f = self.family(name)?;
        (f.kind == OmKind::Counter).then(|| f.samples.first().map(|s| s.value))?
    }

    /// The single value of a gauge family.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let f = self.family(name)?;
        (f.kind == OmKind::Gauge).then(|| f.samples.first().map(|s| s.value))?
    }

    /// A histogram family's `(count, sum)`.
    pub fn histogram(&self, name: &str) -> Option<(f64, f64)> {
        let f = self.family(name)?;
        if f.kind != OmKind::Histogram {
            return None;
        }
        let pick = |suffix: &str| {
            f.samples
                .iter()
                .find(|s| s.name == format!("{}{suffix}", f.name))
                .map(|s| s.value)
        };
        Some((pick("_count")?, pick("_sum")?))
    }

    /// A histogram family's cumulative bucket value at `le`.
    pub fn bucket(&self, name: &str, le: &str) -> Option<f64> {
        let f = self.family(name)?;
        f.samples
            .iter()
            .find(|s| s.name == format!("{}_bucket", f.name) && s.le() == Some(le))
            .map(|s| s.value)
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !valid_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        if out.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate label {key:?}"));
        }
        if chars.next() != Some('"') {
            return Err("label value must be quoted".to_string());
        }
        let mut val = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                _ => val.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value".to_string());
        }
        out.push((key, val));
        match chars.next() {
            None => return Ok(out),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
}

fn parse_sample(line: &str) -> Result<OmSample, String> {
    let (head, value_str) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            if close < open {
                return Err("malformed label block".to_string());
            }
            (
                (line[..open].to_string(), parse_labels(&line[open + 1..close])?),
                line[close + 1..].trim_start(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or_default().to_string();
            ((name, Vec::new()), it.next().unwrap_or_default())
        }
    };
    let (name, labels) = head;
    if !valid_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let value_str = value_str.trim();
    if value_str.is_empty() || value_str.contains(' ') {
        // A second field would be a timestamp; this exposition never
        // emits one, so reject rather than mis-read it.
        return Err(format!("expected exactly one value on {line:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        _ => value_str
            .parse::<f64>()
            .map_err(|_| format!("bad value {value_str:?}"))?,
    };
    Ok(OmSample { name, labels, value })
}

fn close_family(fam: &OmFamily) -> Result<(), String> {
    let n = &fam.name;
    match fam.kind {
        OmKind::Counter | OmKind::Gauge => {
            if fam.samples.is_empty() {
                return Err(format!("family {n} has no samples"));
            }
            if fam.kind == OmKind::Counter {
                for s in &fam.samples {
                    if !(s.value.is_finite() && s.value >= 0.0) {
                        return Err(format!("counter {n} has non-finite/negative value"));
                    }
                }
            }
        }
        OmKind::Histogram => {
            let buckets: Vec<&OmSample> =
                fam.samples.iter().filter(|s| s.name == format!("{n}_bucket")).collect();
            if buckets.is_empty() {
                return Err(format!("histogram {n} has no buckets"));
            }
            let mut prev = -1.0f64;
            for b in &buckets {
                if b.le().is_none() {
                    return Err(format!("histogram {n} bucket missing le label"));
                }
                if b.value < prev {
                    return Err(format!("histogram {n} buckets are not cumulative"));
                }
                prev = b.value;
            }
            let last = buckets.last().ok_or("empty buckets")?;
            if last.le() != Some("+Inf") {
                return Err(format!("histogram {n} must end with an +Inf bucket"));
            }
            let count = fam
                .samples
                .iter()
                .find(|s| s.name == format!("{n}_count"))
                .ok_or_else(|| format!("histogram {n} is missing _count"))?;
            fam.samples
                .iter()
                .find(|s| s.name == format!("{n}_sum"))
                .ok_or_else(|| format!("histogram {n} is missing _sum"))?;
            if count.value != last.value {
                return Err(format!("histogram {n}: _count != +Inf bucket"));
            }
        }
    }
    Ok(())
}

/// Parses and validates an OpenMetrics text snapshot.
///
/// Enforced: `TYPE` declared before a family's samples, per-kind sample
/// suffix rules, valid names and label syntax, cumulative non-decreasing
/// histogram buckets ending in `+Inf` with `_count` matching, finite
/// non-negative counters, no duplicate family declarations, and exactly
/// one `# EOF` as the final line.
///
/// # Errors
///
/// A description of the first violation, prefixed with its line number.
pub fn validate(text: &str) -> Result<OmDoc, String> {
    let mut doc = OmDoc::default();
    let mut current: Option<OmFamily> = None;
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut eof = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let ctx = |msg: String| format!("line {lineno}: {msg}");
        if eof {
            return Err(ctx("content after # EOF".to_string()));
        }
        if line.is_empty() {
            return Err(ctx("empty line".to_string()));
        }
        if line == "# EOF" {
            eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let kind = match it.next() {
                Some("counter") => OmKind::Counter,
                Some("gauge") => OmKind::Gauge,
                Some("histogram") => OmKind::Histogram,
                other => return Err(ctx(format!("unsupported family kind {other:?}"))),
            };
            if !valid_name(name) {
                return Err(ctx(format!("bad family name {name:?}")));
            }
            if !seen.insert(name.to_string()) {
                return Err(ctx(format!("duplicate family {name}")));
            }
            if let Some(fam) = current.take() {
                close_family(&fam).map_err(ctx)?;
                doc.families.push(fam);
            }
            current = Some(OmFamily { name: name.to_string(), kind, samples: Vec::new() });
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        if line.starts_with('#') {
            return Err(ctx(format!("unknown comment form {line:?}")));
        }
        let sample = parse_sample(line).map_err(&ctx)?;
        let Some(fam) = current.as_mut() else {
            return Err(ctx(format!("sample {} before any # TYPE", sample.name)));
        };
        let ok = match fam.kind {
            OmKind::Counter => sample.name == format!("{}_total", fam.name),
            OmKind::Gauge => sample.name == fam.name,
            OmKind::Histogram => {
                sample.name == format!("{}_bucket", fam.name)
                    || sample.name == format!("{}_sum", fam.name)
                    || sample.name == format!("{}_count", fam.name)
            }
        };
        if !ok {
            return Err(ctx(format!(
                "sample {} does not belong to family {} ({:?})",
                sample.name, fam.name, fam.kind
            )));
        }
        fam.samples.push(sample);
    }
    if let Some(fam) = current.take() {
        close_family(&fam)?;
        doc.families.push(fam);
    }
    if !eof {
        return Err("missing terminal # EOF".to_string());
    }
    Ok(doc)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add("serve.completed", 42);
        r.set_gauge("serve.goodput-qps", 123.5);
        for v in [0u64, 1, 2, 3, 700, 1024] {
            r.observe("serve.latency_us", v);
        }
        r
    }

    #[test]
    fn render_validates_and_round_trips() {
        let reg = registry();
        let text = render_labeled(&reg, &[("job", "rapid")]);
        let doc = validate(&text).unwrap();
        assert_eq!(doc.counter("serve_completed"), Some(42.0));
        assert_eq!(doc.gauge("serve_goodput_qps"), Some(123.5));
        let (count, sum) = doc.histogram("serve_latency_us").unwrap();
        assert_eq!(count, 6.0);
        assert_eq!(sum, 1730.0);
        // Cumulative buckets: le=1 covers {0, 1}; le=3 adds {2, 3}.
        assert_eq!(doc.bucket("serve_latency_us", "1"), Some(2.0));
        assert_eq!(doc.bucket("serve_latency_us", "3"), Some(4.0));
        assert_eq!(doc.bucket("serve_latency_us", "+Inf"), Some(6.0));
        // Shared label survives with escaping-safe parsing.
        assert_eq!(
            doc.family("serve_completed").unwrap().samples[0].labels,
            vec![("job".to_string(), "rapid".to_string())]
        );
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let mut r = MetricsRegistry::new();
        r.add("c", 1);
        let text = render_labeled(&r, &[("path", "a\"b\\c\nd")]);
        let doc = validate(&text).unwrap();
        assert_eq!(doc.families[0].samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn rejects_malformed_documents() {
        // Missing EOF.
        assert!(validate("# TYPE a counter\na_total 1\n").is_err());
        // Sample before TYPE.
        assert!(validate("a_total 1\n# EOF\n").is_err());
        // Wrong suffix for declared kind.
        assert!(validate("# TYPE a counter\na 1\n# EOF\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n";
        assert!(validate(bad).unwrap_err().contains("cumulative"));
        // Count disagrees with +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n# EOF\n";
        assert!(validate(bad).unwrap_err().contains("_count"));
        // Duplicate family.
        let bad = "# TYPE a counter\na_total 1\n# TYPE a counter\na_total 2\n# EOF\n";
        assert!(validate(bad).unwrap_err().contains("duplicate"));
        // Content after EOF.
        assert!(validate("# EOF\n# TYPE a counter\na_total 1\n").is_err());
        // Negative counter.
        assert!(validate("# TYPE a counter\na_total -1\n# EOF\n").is_err());
    }

    #[test]
    fn sanitize_maps_onto_charset() {
        assert_eq!(sanitize_name("serve.latency-us"), "serve_latency_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn empty_registry_is_a_valid_snapshot() {
        let text = render(&MetricsRegistry::new());
        assert_eq!(text, "# EOF\n");
        assert!(validate(&text).unwrap().families.is_empty());
    }
}
