//! Cycle-level event tracing in the Chrome `trace_event` JSON format.
//!
//! A [`TraceSink`] collects events during a simulation; [`TraceSink::to_json`]
//! renders the `{"traceEvents": [...]}` document that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly. Simulator cycles map
//! one-to-one onto trace microseconds (`ts` is the cycle number), so a span
//! of `dur: 37` reads as 37 cycles.
//!
//! Tracks follow the viewer's process/thread model: a *process* (`pid`) is
//! a physical unit (a core, the ring, the SFU pool) and a *thread* (`tid`)
//! is one engine inside it (a sequencer, a corelet array). Name tracks up
//! front with [`TraceSink::track`] so the viewer shows real labels.
//!
//! The sink is bounded: past [`TraceSink::max_events`] further events are
//! counted in [`TraceSink::dropped`] instead of stored, so a runaway sim
//! cannot exhaust memory — and the drop count is visible, never silent.

use crate::json::Json;

/// Environment variable naming the Chrome-trace output path. Binaries that
/// support tracing check it via [`trace_path_from_env`].
pub const TRACE_ENV: &str = "RAPID_TRACE";

/// The trace path requested through [`TRACE_ENV`], if any (empty value
/// reads as unset).
pub fn trace_path_from_env() -> Option<std::path::PathBuf> {
    match std::env::var(TRACE_ENV) {
        Ok(p) if !p.trim().is_empty() => Some(std::path::PathBuf::from(p)),
        _ => None,
    }
}

/// Event phase, per the trace_event spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `"X"` — a complete span with a duration.
    Complete,
    /// `"i"` — an instant event.
    Instant,
    /// `"C"` — a counter sample.
    Counter,
    /// `"M"` — metadata (process/thread names).
    Metadata,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
            Phase::Metadata => "M",
        }
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label, counter name, or metadata kind).
    pub name: String,
    /// Category tag (`sim`, `ring`, `sfu`, ...).
    pub cat: &'static str,
    /// Phase.
    pub ph: Phase,
    /// Timestamp in cycles (rendered as trace microseconds).
    pub ts: u64,
    /// Duration in cycles (complete spans only).
    pub dur: u64,
    /// Process id — the physical unit's track group.
    pub pid: u32,
    /// Thread id — the engine's track within the group.
    pub tid: u32,
    /// Counter value / metadata payload.
    pub arg: Option<(String, Json)>,
}

/// A bounded in-memory collector of trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    /// Hard cap on stored events.
    pub max_events: usize,
    /// Events rejected after the cap was reached.
    pub dropped: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink with the default one-million-event cap.
    pub fn new() -> Self {
        Self::with_capacity(1_000_000)
    }

    /// A sink capped at `max_events` stored events.
    pub fn with_capacity(max_events: usize) -> Self {
        Self { events: Vec::new(), max_events, dropped: 0 }
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, e: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.events.push(e);
        }
    }

    /// Names a track: emits `process_name` and `thread_name` metadata so
    /// the viewer labels `pid`/`tid` with real unit names.
    pub fn track(&mut self, pid: u32, tid: u32, process: &str, thread: &str) {
        self.push(TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata",
            ph: Phase::Metadata,
            ts: 0,
            dur: 0,
            pid,
            tid,
            arg: Some(("name".to_string(), Json::str(process))),
        });
        self.push(TraceEvent {
            name: "thread_name".to_string(),
            cat: "__metadata",
            ph: Phase::Metadata,
            ts: 0,
            dur: 0,
            pid,
            tid,
            arg: Some(("name".to_string(), Json::str(thread))),
        });
    }

    /// Records a complete span of `dur` cycles starting at `ts`.
    pub fn complete(&mut self, pid: u32, tid: u32, cat: &'static str, name: &str, ts: u64, dur: u64) {
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: Phase::Complete,
            ts,
            dur,
            pid,
            tid,
            arg: None,
        });
    }

    /// Records an instant event at `ts`.
    pub fn instant(&mut self, pid: u32, tid: u32, cat: &'static str, name: &str, ts: u64) {
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: Phase::Instant,
            ts,
            dur: 0,
            pid,
            tid,
            arg: None,
        });
    }

    /// Records a counter sample at `ts`.
    pub fn counter(&mut self, pid: u32, tid: u32, cat: &'static str, name: &str, ts: u64, value: f64) {
        self.push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: Phase::Counter,
            ts,
            dur: 0,
            pid,
            tid,
            arg: Some(("value".to_string(), Json::Num(value))),
        });
    }

    /// Appends every event of `other` (shifting nothing — both sinks must
    /// share a time base), accumulating its drop count.
    pub fn merge(&mut self, other: TraceSink) {
        self.dropped += other.dropped;
        for e in other.events {
            self.push(e);
        }
    }

    /// Renders the `{"traceEvents": [...]}` document.
    pub fn to_json(&self) -> Json {
        let events: Vec<Json> = self.events.iter().map(event_json).collect();
        let mut fields = vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::str("ns")),
        ];
        if self.dropped > 0 {
            fields.push(("rapidDroppedEvents".to_string(), Json::u64(self.dropped)));
        }
        Json::Obj(fields)
    }

    /// Writes the trace document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }
}

fn event_json(e: &TraceEvent) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::str(&e.name)),
        ("cat".to_string(), Json::str(e.cat)),
        ("ph".to_string(), Json::str(e.ph.as_str())),
        ("ts".to_string(), Json::u64(e.ts)),
        ("pid".to_string(), Json::u64(u64::from(e.pid))),
        ("tid".to_string(), Json::u64(u64::from(e.tid))),
    ];
    if e.ph == Phase::Complete {
        fields.push(("dur".to_string(), Json::u64(e.dur)));
    }
    if e.ph == Phase::Instant {
        // Instant scope: thread-scoped keeps the marker on its track.
        fields.push(("s".to_string(), Json::str("t")));
    }
    if let Some((k, v)) = &e.arg {
        fields.push(("args".to_string(), Json::Obj(vec![(k.clone(), v.clone())])));
    }
    Json::Obj(fields)
}

/// A span builder that coalesces per-cycle activity labels into complete
/// spans: feed it one label per cycle (or `None` for an idle cycle) and it
/// emits a span each time the label changes. Used by the simulators to turn
/// phase-by-cycle state into well-nested track spans without storing an
/// event per cycle.
#[derive(Debug)]
pub struct SpanCoalescer {
    pid: u32,
    tid: u32,
    cat: &'static str,
    open: Option<(&'static str, u64)>,
}

impl SpanCoalescer {
    /// A coalescer writing to the given track.
    pub fn new(pid: u32, tid: u32, cat: &'static str) -> Self {
        Self { pid, tid, cat, open: None }
    }

    /// Observes the label active during `cycle` (`None` = idle).
    pub fn observe(&mut self, sink: &mut TraceSink, cycle: u64, label: Option<&'static str>) {
        match (self.open, label) {
            (Some((cur, _)), Some(new)) if cur == new => {}
            (Some((cur, start)), _) => {
                sink.complete(self.pid, self.tid, self.cat, cur, start, cycle - start);
                self.open = label.map(|l| (l, cycle));
            }
            (None, Some(l)) => self.open = Some((l, cycle)),
            (None, None) => {}
        }
    }

    /// Closes any open span at `cycle` (call when the simulation ends or
    /// deadlocks, so partial activity is flushed into the trace).
    pub fn finish(&mut self, sink: &mut TraceSink, cycle: u64) {
        if let Some((label, start)) = self.open.take() {
            sink.complete(self.pid, self.tid, self.cat, label, start, cycle.saturating_sub(start));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_metadata_render_as_trace_events() {
        let mut sink = TraceSink::new();
        sink.track(1, 2, "core0", "array");
        sink.complete(1, 2, "sim", "stream", 10, 5);
        sink.instant(1, 2, "sim", "deadlock", 20);
        sink.counter(1, 2, "sim", "occupancy", 21, 0.75);
        let j = sink.to_json();
        let events = j.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 5);
        let span = &events[2];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(5.0));
        let text = j.render();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn cap_counts_drops_instead_of_growing() {
        let mut sink = TraceSink::with_capacity(2);
        for i in 0..5 {
            sink.instant(0, 0, "x", "e", i);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped, 3);
        assert!(sink.to_json().get("rapidDroppedEvents").is_some());
    }

    #[test]
    fn coalescer_merges_repeated_labels() {
        let mut sink = TraceSink::new();
        let mut sc = SpanCoalescer::new(0, 0, "sim");
        for (cycle, label) in
            [(0, Some("load")), (1, Some("load")), (2, Some("stream")), (3, None), (4, Some("stream"))]
        {
            sc.observe(&mut sink, cycle, label);
        }
        sc.finish(&mut sink, 6);
        let spans: Vec<(String, u64, u64)> = sink
            .events()
            .iter()
            .map(|e| (e.name.clone(), e.ts, e.dur))
            .collect();
        assert_eq!(
            spans,
            vec![
                ("load".to_string(), 0, 2),
                ("stream".to_string(), 2, 1),
                ("stream".to_string(), 4, 2),
            ]
        );
    }

    #[test]
    fn merge_appends_and_sums_drops() {
        let mut a = TraceSink::with_capacity(10);
        a.instant(0, 0, "x", "a", 0);
        let mut b = TraceSink::with_capacity(1);
        b.instant(0, 0, "x", "b", 1);
        b.instant(0, 0, "x", "c", 2); // dropped in b
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped, 1);
    }
}
