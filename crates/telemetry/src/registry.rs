//! The metrics registry: named monotonic counters, gauges and power-of-two
//! histograms behind plain integer arithmetic — no global state, no
//! locking, deterministic snapshots.
//!
//! Producers hold an `Option<&mut Telemetry>` (the same shape as the fault
//! layer's `Option<&mut FaultPlan>` hooks), so a disabled run never touches
//! the registry and stays bit-identical to pre-telemetry behaviour.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of power-of-two buckets a [`Histogram`] keeps (values ≥ 2^62 land
/// in the last bucket).
pub const HISTOGRAM_BUCKETS: usize = 63;

/// A power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` counts samples with `floor(log2(v)) == i` (`v == 0`
    /// lands in bucket 0).
    pub buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: Box::new([0; HISTOGRAM_BUCKETS]) }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = if v == 0 { 0 } else { (63 - v.leading_zeros()) as usize };
        self.buckets[bucket.min(HISTOGRAM_BUCKETS - 1)] += 1;
    }

    /// Streaming quantile estimate with sub-bucket linear interpolation:
    /// the sample at rank `q * (count - 1)` is located in its power-of-two
    /// bucket, positioned within the bucket by midpoint-rank interpolation,
    /// and clamped to the observed `[min, max]` so estimates never escape
    /// the data. Exact for single-sample histograms; within one bucket
    /// width (≤ 2×) otherwise. `q` is clamped to `[0, 1]`; returns 0.0
    /// when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let first_rank = seen as f64;
            seen += c;
            if rank < seen as f64 || seen == self.count {
                let lo = if i == 0 { 0.0 } else { (1u128 << i) as f64 };
                let hi = ((1u128 << (i + 1)) as f64) - 1.0;
                let frac = ((rank - first_rank + 0.5) / c as f64).clamp(0.0, 1.0);
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins floating-point gauge.
    Gauge(f64),
    /// A bucketed distribution.
    Histogram(Histogram),
}

/// A registry of named metrics. Names are dotted paths
/// (`sim.core0.corelet1.macs`); the map is a `BTreeMap`, so iteration —
/// and therefore every snapshot and JSON export — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    /// A name previously used as a gauge/histogram is replaced (last
    /// writer wins; producers own disjoint prefixes by convention).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            _ => {
                self.metrics.insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raises the counter `name` to at least `v` (used for high-water
    /// marks like the largest backoff a retransmit waited).
    pub fn counter_max(&mut self, name: &str, v: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(cur)) => *cur = (*cur).max(v),
            _ => {
                self.metrics.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Records a sample into the histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(v),
            _ => {
                let mut h = Histogram::default();
                h.observe(v);
                self.metrics.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// The counter's value (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge's value, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The raw metric, when present.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order (the deterministic snapshot order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match metric {
                Metric::Counter(v) => self.add(name, *v),
                Metric::Gauge(v) => self.set_gauge(name, *v),
                Metric::Histogram(h) => match self.metrics.get_mut(name) {
                    Some(Metric::Histogram(mine)) => mine.merge(h),
                    _ => {
                        self.metrics.insert(name.clone(), Metric::Histogram(h.clone()));
                    }
                },
            }
        }
    }

    /// A flat name → number JSON object: counters and gauges verbatim,
    /// histograms expanded to `.count`/`.sum`/`.min`/`.max`/`.mean`
    /// sub-keys. Key order is the registry's (sorted), so the export is
    /// deterministic.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::with_capacity(self.metrics.len());
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(v) => fields.push((name.clone(), Json::u64(*v))),
                Metric::Gauge(v) => fields.push((name.clone(), Json::Num(*v))),
                Metric::Histogram(h) => {
                    fields.push((format!("{name}.count"), Json::u64(h.count)));
                    fields.push((format!("{name}.sum"), Json::u64(h.sum)));
                    fields.push((format!("{name}.min"), Json::u64(if h.count == 0 { 0 } else { h.min })));
                    fields.push((format!("{name}.max"), Json::u64(h.max)));
                    fields.push((format!("{name}.mean"), Json::Num(h.mean())));
                }
            }
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let mut r = MetricsRegistry::new();
        r.add("b.macs", 10);
        r.incr("a.flits");
        r.add("b.macs", 5);
        r.counter_max("b.peak", 7);
        r.counter_max("b.peak", 3);
        assert_eq!(r.counter("b.macs"), 15);
        assert_eq!(r.counter("b.peak"), 7);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.flits", "b.macs", "b.peak"]);
    }

    #[test]
    fn histograms_bucket_by_log2() {
        let mut r = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 1024] {
            r.observe("stall", v);
        }
        let h = r.histogram("stall").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[10], 1); // 1024
        assert_eq!(h.mean(), 206.0);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0); // empty
        h.observe(100);
        assert_eq!(h.quantile(0.0), 100.0); // single sample is exact
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);

        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // Estimates stay within one power-of-two bucket of the truth and
        // inside [min, max].
        let p50 = h.quantile(0.5);
        assert!((250.0..=1000.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((500.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(1.0) <= 1000.0);
        // Monotone in q.
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            assert!(v >= prev, "quantiles not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    fn merge_folds_registries() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.set_gauge("g", 0.5);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(0.5));
        assert_eq!(a.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn json_export_is_flat_and_deterministic() {
        let mut r = MetricsRegistry::new();
        r.add("z", 1);
        r.set_gauge("a", 1.5);
        r.observe("m", 2);
        let j = r.to_json();
        let text = j.render();
        assert_eq!(
            text,
            r#"{"a":1.5,"m.count":1,"m.sum":2,"m.min":2,"m.max":2,"m.mean":2,"z":1}"#
        );
    }
}
