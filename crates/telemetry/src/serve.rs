//! Canonical serving-runtime counters and their snapshot view.
//!
//! The serving layer (`rapid-serve`) accounts every request with exactly
//! one terminal outcome; these are the registry names it counts under, so
//! benches, gates and dashboards all read the same keys. The conservation
//! law the chaos tests enforce is a first-class method here:
//! [`ServeCounters::lost`] must be zero on every well-behaved run.

use crate::registry::MetricsRegistry;

/// Requests submitted to the runtime (every request counts here once).
pub const SUBMITTED: &str = "serve.submitted";
/// Requests completed within their deadline (the only success outcome).
pub const COMPLETED: &str = "serve.completed";
/// Requests rejected — sum of the `serve.rejected.*` reasons.
pub const REJECTED: &str = "serve.rejected";
/// Rejected: bounded queue was full (backpressure).
pub const REJECTED_QUEUE_FULL: &str = "serve.rejected.queue_full";
/// Rejected: admission estimate said the deadline was infeasible.
pub const REJECTED_INFEASIBLE: &str = "serve.rejected.deadline_infeasible";
/// Rejected: the model's circuit breaker was open.
pub const REJECTED_BREAKER: &str = "serve.rejected.breaker_open";
/// Rejected: execution failed after all retries.
pub const REJECTED_EXEC_FAILED: &str = "serve.rejected.exec_failed";
/// Rejected: the runtime was draining for shutdown.
pub const REJECTED_SHUTDOWN: &str = "serve.rejected.shutdown";
/// Requests shed by the overload controller at its last escalation level.
pub const SHED: &str = "serve.shed";
/// Requests that ran out of deadline — sum of `serve.timed_out.*` stages.
pub const TIMED_OUT: &str = "serve.timed_out";
/// Timed out while queued (dropped at the batch-formation boundary).
pub const TIMED_OUT_QUEUE: &str = "serve.timed_out.queue";
/// Timed out between execution start and completion.
pub const TIMED_OUT_EXEC: &str = "serve.timed_out.exec";
/// Timed out waiting for a retry slot.
pub const TIMED_OUT_RETRY: &str = "serve.timed_out.retry";
/// Timed out during shutdown drain.
pub const TIMED_OUT_DRAIN: &str = "serve.timed_out.drain";
/// Requests served at a lower tier than requested (downgrades).
pub const DOWNGRADED: &str = "serve.downgraded";
/// Batch execution attempts that were retried.
pub const RETRIES: &str = "serve.retries";
/// Circuit-breaker open transitions.
pub const BREAKER_OPENS: &str = "serve.breaker.opens";
/// Circuit-breaker half-open probe admissions.
pub const BREAKER_PROBES: &str = "serve.breaker.probes";
/// Circuit-breaker close transitions (successful probes).
pub const BREAKER_CLOSES: &str = "serve.breaker.closes";
/// Completions delivered past their deadline. The runtime converts such
/// results to timeouts before they reach the client, so this must stay 0.
pub const DEADLINE_VIOLATIONS: &str = "serve.deadline_violations";
/// Batches formed by the continuous batcher.
pub const BATCHES: &str = "serve.batches";

/// Snapshot of the serving counters — a thin view over a
/// [`MetricsRegistry`], mirroring `GemmStats::from_registry`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed within deadline.
    pub completed: u64,
    /// Requests rejected (all reasons).
    pub rejected: u64,
    /// Requests shed under overload.
    pub shed: u64,
    /// Requests timed out (all stages).
    pub timed_out: u64,
    /// Requests served at a downgraded tier.
    pub downgraded: u64,
    /// Retried batch attempts.
    pub retries: u64,
    /// Breaker open transitions.
    pub breaker_opens: u64,
    /// Completions past deadline that escaped conversion (must be 0).
    pub deadline_violations: u64,
    /// Batches formed.
    pub batches: u64,
}

impl ServeCounters {
    /// Reads the snapshot back from a registry.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        Self {
            submitted: reg.counter(SUBMITTED),
            completed: reg.counter(COMPLETED),
            rejected: reg.counter(REJECTED),
            shed: reg.counter(SHED),
            timed_out: reg.counter(TIMED_OUT),
            downgraded: reg.counter(DOWNGRADED),
            retries: reg.counter(RETRIES),
            breaker_opens: reg.counter(BREAKER_OPENS),
            deadline_violations: reg.counter(DEADLINE_VIOLATIONS),
            batches: reg.counter(BATCHES),
        }
    }

    /// Requests with a recorded terminal outcome.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.shed + self.timed_out
    }

    /// Submitted requests with **no** terminal outcome — the conservation
    /// law: this must be zero whenever the runtime has drained.
    pub fn lost(&self) -> i64 {
        self.submitted as i64 - self.accounted() as i64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_and_conservation_balances() {
        let mut reg = MetricsRegistry::new();
        reg.add(SUBMITTED, 10);
        reg.add(COMPLETED, 6);
        reg.add(REJECTED, 2);
        reg.add(SHED, 1);
        reg.add(TIMED_OUT, 1);
        reg.add(DOWNGRADED, 3);
        reg.add(BATCHES, 4);
        let c = ServeCounters::from_registry(&reg);
        assert_eq!(c.submitted, 10);
        assert_eq!(c.accounted(), 10);
        assert_eq!(c.lost(), 0);
        assert_eq!(c.downgraded, 3);
        assert_eq!(c.deadline_violations, 0);
    }

    #[test]
    fn lost_requests_are_visible_in_both_directions() {
        let mut reg = MetricsRegistry::new();
        reg.add(SUBMITTED, 5);
        reg.add(COMPLETED, 3);
        assert_eq!(ServeCounters::from_registry(&reg).lost(), 2);
        reg.add(COMPLETED, 4); // double-counted outcomes go negative
        assert_eq!(ServeCounters::from_registry(&reg).lost(), -2);
    }
}
