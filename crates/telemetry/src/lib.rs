//! Unified telemetry for the RaPiD reproduction: a metrics registry,
//! a cycle-level Chrome-trace event sink, and the machine-readable bench
//! record schema — all with zero dependencies and zero cost when disabled.
//!
//! # Design
//!
//! Instrumentation follows the fault layer's hook shape: producers take
//! `Option<&mut Telemetry>` and do plain integer arithmetic only when the
//! option is `Some`. There is no global state, no thread-locals, no
//! locking; a run with telemetry disabled executes the exact same
//! arithmetic as one compiled before this crate existed, so numeric
//! outputs stay bit-identical.
//!
//! - [`MetricsRegistry`] — named monotonic counters, gauges and
//!   power-of-two histograms over a `BTreeMap`, so every snapshot and
//!   JSON export is deterministic.
//! - [`TraceSink`] — bounded collector of Chrome `trace_event` records
//!   (Perfetto-viewable), with [`SpanCoalescer`] to turn per-cycle phase
//!   labels into spans. Gated at the binary level by `RAPID_TRACE=<path>`
//!   ([`TRACE_ENV`]).
//! - [`span`] — request-scoped distributed tracing: deterministic span
//!   contexts, a bounded [`SpanSink`], a per-class critical-path
//!   extractor, and Chrome-trace export so request spans and cycle
//!   tracks land in one Perfetto timeline.
//! - [`slo`] — streaming SLO monitoring with multi-window burn-rate
//!   rules over a virtual clock; [`Histogram::quantile`] supplies the
//!   sub-bucket-interpolated percentiles.
//! - [`openmetrics`] — OpenMetrics text exposition of registry
//!   snapshots plus a strict validating parser, gated at the binary
//!   level by `RAPID_METRICS=<path>` ([`METRICS_ENV`]).
//! - [`schema`] — the `rapid-bench-v1` record and aggregate validators
//!   used by `--json` bench output and `scripts/check.sh --telemetry`.
//! - [`Json`] — a minimal hand-rolled JSON value/renderer/parser (the
//!   workspace's serde is an offline no-op stub, so serialization is done
//!   here).

// unwrap/expect denial comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]

pub mod health;
pub mod json;
pub mod openmetrics;
pub mod registry;
pub mod schema;
pub mod serve;
pub mod slo;
pub mod span;
pub mod trace;

pub use health::HealthCounters;
pub use json::{Json, JsonError};
pub use openmetrics::{metrics_path_from_env, validate as validate_openmetrics, METRICS_ENV};
pub use registry::{Histogram, Metric, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use schema::{validate_aggregate, validate_bench_record, AGGREGATE_SCHEMA, BENCH_SCHEMA};
pub use serve::ServeCounters;
pub use slo::{BurnAlert, SloConfig, SloMonitor, SloReport, SloRuleReport};
pub use span::{
    critical_path, derive_trace_id, spans_to_trace, validate_forest, SpanContext, SpanRecord,
    SpanSink,
};
pub use trace::{trace_path_from_env, Phase, SpanCoalescer, TraceEvent, TraceSink, TRACE_ENV};

/// The telemetry bundle a producer writes into: always a registry, plus a
/// trace sink when cycle-level tracing was requested and a span sink when
/// request-scoped tracing is on.
///
/// Pass as `Option<&mut Telemetry>`; `None` disables all instrumentation
/// at zero cost.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Named counters / gauges / histograms.
    pub registry: MetricsRegistry,
    /// Cycle-level event sink, when tracing is on.
    pub trace: Option<TraceSink>,
    /// Request/exchange span sink, when span recording is on.
    pub spans: Option<SpanSink>,
}

impl Telemetry {
    /// Counters only — no trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters plus a default-capacity trace sink.
    pub fn with_trace() -> Self {
        Self { registry: MetricsRegistry::new(), trace: Some(TraceSink::new()), spans: None }
    }

    /// Counters plus a default-capacity span sink.
    pub fn with_spans() -> Self {
        Self { registry: MetricsRegistry::new(), trace: None, spans: Some(SpanSink::new()) }
    }

    /// Builds from the environment: tracing is enabled iff `RAPID_TRACE`
    /// names a path (the caller writes the trace there afterwards).
    pub fn from_env() -> Self {
        if trace_path_from_env().is_some() {
            Self::with_trace()
        } else {
            Self::new()
        }
    }

    /// Whether a trace sink is attached.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Folds `other` into this bundle: registries merge, trace events
    /// append, spans append with disjoint ids (all must share a time
    /// base).
    pub fn merge(&mut self, other: Telemetry) {
        self.registry.merge(&other.registry);
        if let Some(t) = other.trace {
            match &mut self.trace {
                Some(mine) => mine.merge(t),
                None => self.trace = Some(t),
            }
        }
        if let Some(s) = other.spans {
            match &mut self.spans {
                Some(mine) => mine.merge(s),
                None => self.spans = Some(s),
            }
        }
    }
}

/// Reborrows an `Option<&mut Telemetry>` for passing down a call chain
/// without consuming it (mirrors the fault layer's reborrow idiom).
pub fn reborrow<'a>(tele: &'a mut Option<&mut Telemetry>) -> Option<&'a mut Telemetry> {
    tele.as_deref_mut()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_noop_when_none() {
        fn produce(mut tele: Option<&mut Telemetry>) -> u64 {
            let mut acc = 0u64;
            for i in 0..10 {
                acc += i;
                if let Some(t) = reborrow(&mut tele) {
                    t.registry.incr("iters");
                }
            }
            acc
        }
        let silent = produce(None);
        let mut tele = Telemetry::new();
        let counted = produce(Some(&mut tele));
        assert_eq!(silent, counted);
        assert_eq!(tele.registry.counter("iters"), 10);
    }

    #[test]
    fn merge_combines_registry_and_trace() {
        let mut a = Telemetry::with_trace();
        a.registry.add("x", 1);
        let mut b = Telemetry::with_trace();
        b.registry.add("x", 2);
        if let Some(t) = &mut b.trace {
            t.instant(0, 0, "sim", "e", 5);
        }
        a.merge(b);
        assert_eq!(a.registry.counter("x"), 3);
        assert_eq!(a.trace.unwrap().len(), 1);
    }
}
