//! # rapid-fault
//!
//! Deterministic, seeded fault injection for the RaPiD reproduction.
//!
//! The paper's robustness story rests on two claims: the bidirectional
//! ring's bubble flow control is deadlock-free under arbitrary transfer
//! sets (§IV-C, Fig 8), and ultra-low-precision arithmetic degrades
//! gracefully instead of diverging (§II, §V-E). Validating either requires
//! *injecting* imperfections — the approach hardware-emulation stacks such
//! as ApproxTrain and IBM's AIHWKit take — and doing so reproducibly.
//!
//! A [`FaultPlan`] is built from a [`FaultConfig`] and a seed. Every
//! decision comes from a private xorshift generator (no wall clock, no
//! global RNG), so the same seed replays the identical fault trace. Each
//! consumer layer polls its own hook:
//!
//! * `rapid-numerics` — [`FaultPlan::mac_operand`] /
//!   [`FaultPlan::mac_accumulator`] / [`FaultPlan::int_code`] /
//!   [`FaultPlan::int_chunk`] flip mantissa/exponent bits in emulated MAC
//!   operands and accumulators;
//! * `rapid-ring` — [`FaultPlan::ring_delivery`] and
//!   [`FaultPlan::ring_hold`] drop, duplicate or delay ring slots and MNI
//!   load returns;
//! * `rapid-sim` — [`FaultPlan::seq_stall`] withholds sequencer token
//!   grants for a bounded number of cycles.
//!
//! Each domain draws from its own sub-generator (derived from the master
//! seed), so e.g. ring faults do not depend on how many MAC faults were
//! drawn first. All hooks are behind `Option<&mut FaultPlan>` at the call
//! sites: a disabled run takes the unmodified fast paths and stays
//! bit-exact.
//!
//! # Example
//!
//! ```
//! use rapid_fault::{FaultConfig, FaultPlan};
//!
//! let cfg = FaultConfig { seed: 7, mac_operand_rate: 0.5, ..FaultConfig::default() };
//! let mut plan = FaultPlan::new(cfg);
//! let mut flips = 0;
//! for _ in 0..1000 {
//!     if plan.mac_operand(1.0) != 1.0 {
//!         flips += 1;
//!     }
//! }
//! assert!(flips > 300, "roughly half the operands should be corrupted");
//! assert_eq!(plan.counts().mac_operand_flips, flips);
//! ```

use std::fmt;

/// Environment variable overriding the fault seed (read only when a
/// configuration is built via [`FaultConfig::seed_from_env`]).
pub const FAULT_SEED_ENV: &str = "RAPID_FAULT_SEED";

/// Derives a child seed from a master seed and an experiment label.
///
/// Every experiment (a sweep cell, a benchmark binary, a test case) should
/// draw its fault plan from `derive_seed(master, "its-name")` instead of
/// the master seed directly: the child stream depends only on the master
/// seed and the label, so adding, removing, or reordering experiments
/// never shifts another experiment's RNG stream — the same-seed
/// reproducibility guarantee survives harness growth.
///
/// The label is folded in with FNV-1a (64-bit) and the result is mixed
/// through a splitmix64 finalizer so labels differing in one character
/// land far apart.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer over master ⊕ label-hash.
    let mut z = master ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one named RNG *stream* within a session from the
/// session's master seed and a stream tag (an ASCII-constant discriminator
/// such as `0x4D4143` for "MAC").
///
/// This is the one-multiply-one-xor decoupling every per-domain generator
/// in this workspace uses: the golden-ratio multiply spreads nearby master
/// seeds across the space, the tag xor separates streams sharing a master.
/// Where [`derive_seed`] isolates *experiments* from each other (label
/// strings, splitmix finalizer), this isolates *domains inside one plan*
/// — cheap, stable, and shared so call sites never re-spell the constant.
pub fn derive_stream_seed(seed: u64, tag: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag
}

/// A small xorshift64* generator: deterministic, seedable, no global
/// state. Quality is ample for Bernoulli fault draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// non-zero constant; xorshift has an absorbing state at 0).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        (self.next_u64() % u64::from(n)) as u32
    }
}

/// Which fault domains fire and how often. All rates are per-opportunity
/// probabilities (per MAC operand, per delivered data flit, per occupied
/// ring slot per cycle, per simulated core cycle). The default is fully
/// disabled: a plan built from `FaultConfig::default()` never fires and
/// never perturbs results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; each domain derives its own stream from it.
    pub seed: u64,
    /// Probability a MAC operand has one bit flipped.
    pub mac_operand_rate: f64,
    /// Probability (per MAC) that the chunk accumulator has one bit
    /// flipped after the accumulate.
    pub mac_acc_rate: f64,
    /// Share of bit flips landing in the exponent field (the rest hit the
    /// mantissa). Exponent upsets are the ones that produce non-finite
    /// values; mantissa upsets are silent precision loss.
    pub exponent_share: f64,
    /// Probability (per MAC site) that a *mercurial-core* fault burst
    /// begins — the Gilbert–Elliott good→bad transition. While a burst is
    /// active, MAC operands/codes flip at [`FaultConfig::mac_burst_flip_rate`]
    /// instead of the uniform background rate, so an intermittently bad
    /// core is distinguishable from uniform noise. The burst chain draws
    /// from its own stream; enabling it never shifts the other domains.
    pub mac_burst_rate: f64,
    /// Mean burst length in MAC sites (the bad→good transition fires with
    /// probability `1 / mac_burst_len` per site). Clamped to ≥ 1.
    pub mac_burst_len: u32,
    /// Per-site flip probability while a burst is active.
    pub mac_burst_flip_rate: f64,
    /// Probability a delivered data flit is dropped (the source
    /// retransmits it — the link-level retry the ring protocol assumes).
    pub ring_drop_rate: f64,
    /// Probability a delivered data flit is duplicated at the consumer.
    pub ring_dup_rate: f64,
    /// Probability (per occupied slot per cycle) that a flit is held in
    /// place — transient backpressure / a slow repeater.
    pub ring_delay_rate: f64,
    /// How many cycles a delayed flit is held.
    pub ring_delay_cycles: u32,
    /// Probability (per occupied slot per cycle) that a delivered chunk's
    /// payload has one bit flipped in transit. With CRC protection the
    /// receiver detects the damage and forces a retransmit; without it the
    /// corrupted payload is *silently delivered*.
    pub ring_corrupt_rate: f64,
    /// Probability (per core cycle) that the sequencers' token grants
    /// stall.
    pub seq_stall_rate: f64,
    /// How many cycles a sequencer stall lasts.
    pub seq_stall_cycles: u32,
    /// Probability (per core cycle) that one stored scratchpad word has a
    /// single bit upset — the classic SRAM soft-error model SECDED ECC is
    /// built to absorb. The flip hits a uniformly chosen word and a
    /// uniformly chosen bit of its 39-bit SECDED codeword.
    pub spad_flip_rate: f64,
    /// Probability (per served inference batch) that execution suffers a
    /// transient, retryable failure — a chip-level hiccup (watchdog
    /// recovery, sequencer restart) that the serving layer is expected to
    /// absorb with bounded retry-with-backoff rather than surface to the
    /// client.
    pub serve_transient_rate: f64,
    /// Probability (per node per collective exchange) that a training
    /// node *crashes*: its process dies, its links drop, and it stops
    /// contributing until it rejoins from a checkpoint. Crashes are
    /// detected fast — the dead links give a link-down signal.
    pub node_crash_rate: f64,
    /// Probability (per node per collective exchange) that a node
    /// *hangs*: the process stays up (links alive, no link-down signal)
    /// but makes no progress, so only heartbeat silence reveals it. A
    /// hung node is spliced out exactly like a crashed one, just later.
    pub node_hang_rate: f64,
    /// Probability (per node per collective exchange) that a node runs
    /// *slow* this exchange — a straggler (thermal throttling, a noisy
    /// neighbor), not a failure. Its link service time is multiplied by
    /// [`FaultConfig::node_slow_factor`].
    pub node_slow_rate: f64,
    /// Service-time multiplier for a straggling node (≥ 1).
    pub node_slow_factor: f64,
    /// Cap on *membership-affecting* node faults (crashes + hangs) one
    /// plan injects; draws past the budget never fire. `1` is the E22
    /// "exactly one crash per run" cell; the default is unlimited.
    pub node_fault_budget: u64,
    /// Bitmask of permanently failed cores (bit `i` set ⇒ core `i` is
    /// dead). A failed core takes no work: the chip-level simulators remap
    /// its partition across the survivors and the analytical model charges
    /// the resulting slowdown. Unlike the transient injectors this is a
    /// *static* fault — it does not draw from any RNG stream.
    pub core_failed_mask: u64,
    /// Cap on recorded trace events (counters keep counting past it).
    pub max_trace_events: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            mac_operand_rate: 0.0,
            mac_acc_rate: 0.0,
            exponent_share: 0.3,
            mac_burst_rate: 0.0,
            mac_burst_len: 64,
            mac_burst_flip_rate: 0.5,
            ring_drop_rate: 0.0,
            ring_dup_rate: 0.0,
            ring_delay_rate: 0.0,
            ring_delay_cycles: 8,
            ring_corrupt_rate: 0.0,
            seq_stall_rate: 0.0,
            seq_stall_cycles: 32,
            spad_flip_rate: 0.0,
            serve_transient_rate: 0.0,
            node_crash_rate: 0.0,
            node_hang_rate: 0.0,
            node_slow_rate: 0.0,
            node_slow_factor: 4.0,
            node_fault_budget: u64::MAX,
            core_failed_mask: 0,
            max_trace_events: 4096,
        }
    }
}

impl FaultConfig {
    /// Returns `default_seed`, or the value of the `RAPID_FAULT_SEED`
    /// environment variable when set to a valid `u64`. The environment is
    /// read once, here — plans themselves never consult it.
    pub fn seed_from_env(default_seed: u64) -> u64 {
        std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default_seed)
    }

    /// Whether any injector can fire at all.
    pub fn enabled(&self) -> bool {
        self.mac_operand_rate > 0.0
            || self.mac_acc_rate > 0.0
            || self.mac_burst_rate > 0.0
            || self.ring_drop_rate > 0.0
            || self.ring_dup_rate > 0.0
            || self.ring_delay_rate > 0.0
            || self.ring_corrupt_rate > 0.0
            || self.seq_stall_rate > 0.0
            || self.spad_flip_rate > 0.0
            || self.serve_transient_rate > 0.0
            || self.node_crash_rate > 0.0
            || self.node_hang_rate > 0.0
            || self.node_slow_rate > 0.0
            || self.core_failed_mask != 0
    }

    /// Whether core `i` is marked permanently failed.
    pub fn core_failed(&self, core: usize) -> bool {
        core < 64 && self.core_failed_mask & (1 << core) != 0
    }

    /// The failed cores among the first `n`, in ascending order.
    pub fn failed_cores(&self, n: usize) -> Vec<usize> {
        (0..n.min(64)).filter(|&i| self.core_failed(i)).collect()
    }
}

/// What happens to a data flit at its delivery point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// The flit is lost; the source must retransmit it.
    Drop,
    /// The flit is delivered twice.
    Duplicate,
}

/// How a training node misbehaves during one collective exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The node's process dies at phase step `at_step` of the exchange;
    /// its links drop with it (fast, link-down detection).
    Crash {
        /// Phase step (of the exchange the hook was polled for) at which
        /// the node goes down.
        at_step: u32,
    },
    /// The node stops making progress at `at_step` but its links stay up,
    /// so only heartbeat silence reveals it (slow, timeout detection).
    Hang {
        /// Phase step at which progress stops.
        at_step: u32,
    },
    /// The node straggles for the whole exchange: every transfer it
    /// services takes `factor`× as long.
    Slow {
        /// Service-time multiplier (≥ 1).
        factor: f64,
    },
}

/// One recorded injection, in the order it was drawn within its domain.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A float MAC operand bit flip: `(site index, bit, before, after)`.
    MacOperandFlip(u64, u32, u32, u32),
    /// A Gilbert–Elliott fault burst began at MAC site `site`.
    MacBurstStart(u64),
    /// A burst-mode MAC flip: `(site index, bit, before bits, after bits)`.
    /// For integer codes the before/after are the zero-extended code bytes.
    MacBurstFlip(u64, u32, u32, u32),
    /// A float accumulator bit flip: `(site index, bit, before, after)`.
    MacAccFlip(u64, u32, u32, u32),
    /// An integer code bit flip: `(site index, bit, before, after)`.
    IntCodeFlip(u64, u32, i8, i8),
    /// An INT16 chunk-register bit flip: `(site index, bit, before, after)`.
    IntChunkFlip(u64, u32, i16, i16),
    /// A ring delivery fault at draw index `site`.
    RingDelivery(u64, DeliveryFault),
    /// A ring slot held for `cycles` at draw index `site`.
    RingHold(u64, u32),
    /// A ring payload corruption: `(site index, element, bit)`.
    RingCorrupt(u64, u32, u32),
    /// A sequencer token-grant stall of `cycles` at draw index `site`.
    SeqStall(u64, u32),
    /// A scratchpad soft error: `(site index, word address, codeword bit)`.
    SpadFlip(u64, u64, u32),
    /// A transient serving-batch execution failure at draw index `site`.
    ServeTransient(u64),
    /// A node-level fault: `(site index, node id, fault)`.
    Node(u64, u32, NodeFault),
}

/// Totals per injector, cheap to compare and report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Float operand bit flips injected.
    pub mac_operand_flips: u64,
    /// Float accumulator bit flips injected.
    pub mac_acc_flips: u64,
    /// Gilbert–Elliott fault bursts entered.
    pub mac_bursts: u64,
    /// Burst-mode operand/code bit flips injected.
    pub mac_burst_flips: u64,
    /// Integer code bit flips injected.
    pub int_code_flips: u64,
    /// INT16 chunk-register bit flips injected.
    pub int_chunk_flips: u64,
    /// Data flits dropped (and retransmitted).
    pub ring_drops: u64,
    /// Data flits duplicated.
    pub ring_dups: u64,
    /// Ring slots held.
    pub ring_holds: u64,
    /// Ring payloads corrupted in transit.
    pub ring_corruptions: u64,
    /// Sequencer stalls injected.
    pub seq_stalls: u64,
    /// Scratchpad word bit upsets injected.
    pub spad_flips: u64,
    /// Transient serving-batch execution failures injected.
    pub serve_transients: u64,
    /// Node crashes injected.
    pub node_crashes: u64,
    /// Node hangs injected.
    pub node_hangs: u64,
    /// Straggling (slow) node exchanges injected.
    pub node_slows: u64,
}

impl FaultCounts {
    /// Accumulates these injection totals into a metrics registry under
    /// `<prefix>.*` — the unified-telemetry form of this struct.
    pub fn record_into(&self, reg: &mut rapid_telemetry::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.mac_operand_flips"), self.mac_operand_flips);
        reg.add(&format!("{prefix}.mac_acc_flips"), self.mac_acc_flips);
        reg.add(&format!("{prefix}.mac_bursts"), self.mac_bursts);
        reg.add(&format!("{prefix}.mac_burst_flips"), self.mac_burst_flips);
        reg.add(&format!("{prefix}.int_code_flips"), self.int_code_flips);
        reg.add(&format!("{prefix}.int_chunk_flips"), self.int_chunk_flips);
        reg.add(&format!("{prefix}.ring_drops"), self.ring_drops);
        reg.add(&format!("{prefix}.ring_dups"), self.ring_dups);
        reg.add(&format!("{prefix}.ring_holds"), self.ring_holds);
        reg.add(&format!("{prefix}.ring_corruptions"), self.ring_corruptions);
        reg.add(&format!("{prefix}.seq_stalls"), self.seq_stalls);
        reg.add(&format!("{prefix}.spad_flips"), self.spad_flips);
        reg.add(&format!("{prefix}.serve_transients"), self.serve_transients);
        reg.add(&format!("{prefix}.node_crashes"), self.node_crashes);
        reg.add(&format!("{prefix}.node_hangs"), self.node_hangs);
        reg.add(&format!("{prefix}.node_slows"), self.node_slows);
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flips: {} operand / {} acc / {} code / {} chunk; bursts: {} entered, {} flips; ring: {} dropped, {} duplicated, {} held, {} corrupted; {} seq stalls; {} spad flips; {} serve transients; nodes: {} crashed, {} hung, {} slowed",
            self.mac_operand_flips,
            self.mac_acc_flips,
            self.mac_bursts,
            self.mac_burst_flips,
            self.int_code_flips,
            self.int_chunk_flips,
            self.ring_drops,
            self.ring_dups,
            self.ring_holds,
            self.ring_corruptions,
            self.seq_stalls,
            self.spad_flips,
            self.serve_transients,
            self.node_crashes,
            self.node_hangs,
            self.node_slows,
        )
    }
}

/// A live fault-injection session: configuration plus per-domain RNG
/// streams, the event trace, and totals.
///
/// Cloning a plan clones its RNG state: two clones fed identical hook-call
/// sequences produce identical decisions — the property the determinism
/// tests rely on.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    mac_rng: XorShift64,
    burst_rng: XorShift64,
    in_burst: bool,
    ring_rng: XorShift64,
    seq_rng: XorShift64,
    mem_rng: XorShift64,
    serve_rng: XorShift64,
    node_rng: XorShift64,
    mac_sites: u64,
    ring_sites: u64,
    seq_sites: u64,
    mem_sites: u64,
    serve_sites: u64,
    node_sites: u64,
    node_faults_used: u64,
    trace: Vec<FaultEvent>,
    counts: FaultCounts,
}

impl FaultPlan {
    /// Builds a plan. Domain streams are derived from the master seed via
    /// [`derive_stream_seed`] with fixed ASCII tags ("MAC", "BRST", "RING",
    /// "SEQ", "MEM", "SRVE", "NODE") so the domains are decoupled.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            mac_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x004D_4143)),
            burst_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x4252_5354)),
            in_burst: false,
            ring_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x5249_4E47)),
            seq_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x0053_4551)),
            mem_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x004D_454D)),
            serve_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x5352_5645)),
            node_rng: XorShift64::new(derive_stream_seed(cfg.seed, 0x4E4F_4445)),
            mac_sites: 0,
            ring_sites: 0,
            seq_sites: 0,
            mem_sites: 0,
            serve_sites: 0,
            node_sites: 0,
            node_faults_used: 0,
            trace: Vec::new(),
            counts: FaultCounts::default(),
        }
    }

    /// A plan that never fires (identical to `FaultPlan::new(FaultConfig::default())`).
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any injector can fire.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Whether the MAC (numerics) injectors can fire.
    pub fn mac_enabled(&self) -> bool {
        self.cfg.mac_operand_rate > 0.0
            || self.cfg.mac_acc_rate > 0.0
            || self.cfg.mac_burst_rate > 0.0
    }

    /// Whether the Gilbert–Elliott burst injector can fire.
    pub fn burst_enabled(&self) -> bool {
        self.cfg.mac_burst_rate > 0.0
    }

    /// Whether a burst is active right now (probe/diagnosis visibility).
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Whether the ring injectors can fire.
    pub fn ring_enabled(&self) -> bool {
        self.cfg.ring_drop_rate > 0.0
            || self.cfg.ring_dup_rate > 0.0
            || self.cfg.ring_delay_rate > 0.0
    }

    /// Whether the sequencer-stall injector can fire.
    pub fn seq_enabled(&self) -> bool {
        self.cfg.seq_stall_rate > 0.0
    }

    /// Whether the scratchpad soft-error injector can fire.
    pub fn spad_enabled(&self) -> bool {
        self.cfg.spad_flip_rate > 0.0
    }

    /// Whether the ring payload-corruption injector can fire.
    pub fn ring_corrupt_enabled(&self) -> bool {
        self.cfg.ring_corrupt_rate > 0.0
    }

    /// Whether the serving transient-failure injector can fire.
    pub fn serve_enabled(&self) -> bool {
        self.cfg.serve_transient_rate > 0.0
    }

    /// Whether any node-level injector can fire.
    pub fn node_enabled(&self) -> bool {
        self.cfg.node_crash_rate > 0.0
            || self.cfg.node_hang_rate > 0.0
            || self.cfg.node_slow_rate > 0.0
    }

    /// Whether core `i` is marked permanently failed by this plan.
    pub fn core_failed(&self, core: usize) -> bool {
        self.cfg.core_failed(core)
    }

    /// The failed cores among the first `n`, in ascending order.
    pub fn failed_cores(&self, n: usize) -> Vec<usize> {
        self.cfg.failed_cores(n)
    }

    /// Recorded events, in draw order (capped at
    /// [`FaultConfig::max_trace_events`]).
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Injection totals.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn record(&mut self, ev: FaultEvent) {
        if self.trace.len() < self.cfg.max_trace_events {
            self.trace.push(ev);
        }
    }

    /// Picks a bit position: exponent (bits `frac..frac+exp`) with
    /// probability `exponent_share`, mantissa (bits `0..frac`) otherwise.
    fn pick_bit(rng: &mut XorShift64, share: f64, frac: u32, exp: u32) -> u32 {
        if rng.chance(share) {
            frac + rng.below(exp)
        } else {
            rng.below(frac)
        }
    }

    /// Steps the Gilbert–Elliott two-state chain for one MAC site and
    /// draws whether a burst-mode flip fires. Every draw comes from the
    /// dedicated burst stream, so enabling bursts never shifts the
    /// uniform-background MAC stream — and a plan with `mac_burst_rate`
    /// zero takes no draws at all (bit-invisible when disabled).
    fn burst_flip(&mut self) -> bool {
        if self.cfg.mac_burst_rate <= 0.0 {
            return false;
        }
        if self.in_burst {
            let exit = 1.0 / f64::from(self.cfg.mac_burst_len.max(1));
            if self.burst_rng.chance(exit) {
                self.in_burst = false;
            }
        } else if self.burst_rng.chance(self.cfg.mac_burst_rate) {
            self.in_burst = true;
            self.counts.mac_bursts += 1;
            self.record(FaultEvent::MacBurstStart(self.mac_sites - 1));
        }
        self.in_burst && self.burst_rng.chance(self.cfg.mac_burst_flip_rate)
    }

    /// Maybe flips one bit of a float MAC operand, from the uniform
    /// background injector or (when a burst is active) the mercurial-core
    /// burst injector.
    pub fn mac_operand(&mut self, v: f32) -> f32 {
        self.mac_sites += 1;
        let burst = self.burst_flip();
        if self.mac_rng.chance(self.cfg.mac_operand_rate) {
            let bit = Self::pick_bit(&mut self.mac_rng, self.cfg.exponent_share, 23, 8);
            let before = v.to_bits();
            let after = before ^ (1 << bit);
            self.counts.mac_operand_flips += 1;
            self.record(FaultEvent::MacOperandFlip(self.mac_sites - 1, bit, before, after));
            return f32::from_bits(after);
        }
        if burst {
            let bit = Self::pick_bit(&mut self.burst_rng, self.cfg.exponent_share, 23, 8);
            let before = v.to_bits();
            let after = before ^ (1 << bit);
            self.counts.mac_burst_flips += 1;
            self.record(FaultEvent::MacBurstFlip(self.mac_sites - 1, bit, before, after));
            return f32::from_bits(after);
        }
        v
    }

    /// Maybe flips one bit of a float chunk accumulator.
    pub fn mac_accumulator(&mut self, v: f32) -> f32 {
        self.mac_sites += 1;
        if !self.mac_rng.chance(self.cfg.mac_acc_rate) {
            return v;
        }
        let bit = Self::pick_bit(&mut self.mac_rng, self.cfg.exponent_share, 23, 8);
        let before = v.to_bits();
        let after = before ^ (1 << bit);
        self.counts.mac_acc_flips += 1;
        self.record(FaultEvent::MacAccFlip(self.mac_sites - 1, bit, before, after));
        f32::from_bits(after)
    }

    /// Maybe flips one bit (within the low `bits` of the code) of an
    /// integer MAC operand.
    pub fn int_code(&mut self, c: i8, bits: u32) -> i8 {
        self.mac_sites += 1;
        let burst = self.burst_flip();
        if self.mac_rng.chance(self.cfg.mac_operand_rate) {
            let bit = self.mac_rng.below(bits.max(1));
            let after = c ^ (1i8 << bit);
            self.counts.int_code_flips += 1;
            self.record(FaultEvent::IntCodeFlip(self.mac_sites - 1, bit, c, after));
            return after;
        }
        if burst {
            let bit = self.burst_rng.below(bits.max(1));
            let after = c ^ (1i8 << bit);
            self.counts.mac_burst_flips += 1;
            self.record(FaultEvent::MacBurstFlip(
                self.mac_sites - 1,
                bit,
                u32::from(c as u8),
                u32::from(after as u8),
            ));
            return after;
        }
        c
    }

    /// Maybe flips one bit of an INT16 chunk register.
    pub fn int_chunk(&mut self, v: i16) -> i16 {
        self.mac_sites += 1;
        if !self.mac_rng.chance(self.cfg.mac_acc_rate) {
            return v;
        }
        let bit = self.mac_rng.below(16);
        let after = v ^ (1i16 << bit);
        self.counts.int_chunk_flips += 1;
        self.record(FaultEvent::IntChunkFlip(self.mac_sites - 1, bit, v, after));
        after
    }

    /// Draws the fate of one delivered data flit.
    pub fn ring_delivery(&mut self) -> Option<DeliveryFault> {
        self.ring_sites += 1;
        if self.ring_rng.chance(self.cfg.ring_drop_rate) {
            self.counts.ring_drops += 1;
            self.record(FaultEvent::RingDelivery(self.ring_sites - 1, DeliveryFault::Drop));
            return Some(DeliveryFault::Drop);
        }
        if self.ring_rng.chance(self.cfg.ring_dup_rate) {
            self.counts.ring_dups += 1;
            self.record(FaultEvent::RingDelivery(self.ring_sites - 1, DeliveryFault::Duplicate));
            return Some(DeliveryFault::Duplicate);
        }
        None
    }

    /// Draws whether an occupied ring slot is held this cycle, and for how
    /// long.
    pub fn ring_hold(&mut self) -> Option<u32> {
        self.ring_sites += 1;
        if self.ring_rng.chance(self.cfg.ring_delay_rate) {
            let cycles = self.cfg.ring_delay_cycles.max(1);
            self.counts.ring_holds += 1;
            self.record(FaultEvent::RingHold(self.ring_sites - 1, cycles));
            Some(cycles)
        } else {
            None
        }
    }

    /// Draws whether one delivered chunk payload is corrupted in transit:
    /// `Some((element, bit))` flips bit `bit` of payload element `element`
    /// (of `elems` f32 elements). The transport layer decides what that
    /// means — a CRC-protected link detects it and retransmits; an
    /// unprotected link delivers the damage silently.
    pub fn ring_corrupt(&mut self, elems: u32) -> Option<(u32, u32)> {
        self.ring_sites += 1;
        if elems == 0 || !self.ring_rng.chance(self.cfg.ring_corrupt_rate) {
            return None;
        }
        let elem = self.ring_rng.below(elems);
        let bit = self.ring_rng.below(32);
        self.counts.ring_corruptions += 1;
        self.record(FaultEvent::RingCorrupt(self.ring_sites - 1, elem, bit));
        Some((elem, bit))
    }

    /// Draws whether one scratchpad word suffers a soft error this cycle:
    /// `Some((addr, bit))` flips bit `bit` (of the 39-bit SECDED codeword:
    /// 0..32 data, 32..38 check, 38 overall parity) of word `addr` (below
    /// `words`). The memory decides the outcome — with ECC the next read
    /// corrects it; without, the damaged value is returned as stored.
    pub fn spad_flip(&mut self, words: u64) -> Option<(u64, u32)> {
        self.mem_sites += 1;
        if words == 0 || !self.mem_rng.chance(self.cfg.spad_flip_rate) {
            return None;
        }
        let addr = self.mem_rng.next_u64() % words;
        let bit = self.mem_rng.below(39);
        self.counts.spad_flips += 1;
        self.record(FaultEvent::SpadFlip(self.mem_sites - 1, addr, bit));
        Some((addr, bit))
    }

    /// Draws whether one served inference batch suffers a transient,
    /// retryable execution failure. The serving worker pool polls this
    /// once per batch attempt; a `true` means the attempt is lost and the
    /// batch should go through the retry-with-backoff path.
    pub fn serve_transient(&mut self) -> bool {
        self.serve_sites += 1;
        if !self.serve_rng.chance(self.cfg.serve_transient_rate) {
            return false;
        }
        self.counts.serve_transients += 1;
        self.record(FaultEvent::ServeTransient(self.serve_sites - 1));
        true
    }

    /// Draws the fate of one node for one collective exchange of `steps`
    /// phase steps: at most one of crash / hang / slow, in that priority
    /// order. The elastic allreduce polls this once per (exchange, member).
    ///
    /// Crashes and hangs (the membership-affecting faults) are capped by
    /// [`FaultConfig::node_fault_budget`]; once the budget is spent their
    /// draws still consume RNG state (so the stream stays aligned across
    /// budget settings) but never fire. Slow draws are not budgeted — a
    /// straggler costs time, not membership.
    pub fn node_fault(&mut self, node: u32, steps: u32) -> Option<NodeFault> {
        self.node_sites += 1;
        let site = self.node_sites - 1;
        let steps = steps.max(1);
        if self.node_rng.chance(self.cfg.node_crash_rate) {
            let at_step = self.node_rng.below(steps);
            if self.node_faults_used < self.cfg.node_fault_budget {
                self.node_faults_used += 1;
                self.counts.node_crashes += 1;
                let fault = NodeFault::Crash { at_step };
                self.record(FaultEvent::Node(site, node, fault));
                return Some(fault);
            }
            return None;
        }
        if self.node_rng.chance(self.cfg.node_hang_rate) {
            let at_step = self.node_rng.below(steps);
            if self.node_faults_used < self.cfg.node_fault_budget {
                self.node_faults_used += 1;
                self.counts.node_hangs += 1;
                let fault = NodeFault::Hang { at_step };
                self.record(FaultEvent::Node(site, node, fault));
                return Some(fault);
            }
            return None;
        }
        if self.node_rng.chance(self.cfg.node_slow_rate) {
            let factor = self.cfg.node_slow_factor.max(1.0);
            self.counts.node_slows += 1;
            let fault = NodeFault::Slow { factor };
            self.record(FaultEvent::Node(site, node, fault));
            return Some(fault);
        }
        None
    }

    /// Draws whether the sequencers stall this cycle, and for how long.
    pub fn seq_stall(&mut self) -> Option<u32> {
        self.seq_sites += 1;
        if self.seq_rng.chance(self.cfg.seq_stall_rate) {
            let cycles = self.cfg.seq_stall_cycles.max(1);
            self.counts.seq_stalls += 1;
            self.record(FaultEvent::SeqStall(self.seq_sites - 1, cycles));
            Some(cycles)
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let mut plan = FaultPlan::disabled();
        assert!(!plan.enabled());
        for i in 0..1000 {
            let v = i as f32 * 0.5 - 10.0;
            assert_eq!(plan.mac_operand(v).to_bits(), v.to_bits());
            assert_eq!(plan.mac_accumulator(v).to_bits(), v.to_bits());
            assert_eq!(plan.int_code(i as i8, 4), i as i8);
            assert_eq!(plan.int_chunk(i as i16), i as i16);
            assert_eq!(plan.ring_delivery(), None);
            assert_eq!(plan.ring_hold(), None);
            assert_eq!(plan.ring_corrupt(1024), None);
            assert_eq!(plan.seq_stall(), None);
            assert_eq!(plan.spad_flip(4096), None);
            assert!(!plan.serve_transient());
            assert_eq!(plan.node_fault(i as u32 % 4, 8), None);
        }
        assert_eq!(plan.counts(), FaultCounts::default());
        assert!(plan.trace().is_empty());
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = FaultConfig {
            seed: 42,
            mac_operand_rate: 0.1,
            mac_acc_rate: 0.05,
            ring_drop_rate: 0.2,
            ring_delay_rate: 0.1,
            seq_stall_rate: 0.03,
            ..FaultConfig::default()
        };
        let run = |cfg| {
            let mut plan = FaultPlan::new(cfg);
            for i in 0..500 {
                plan.mac_operand(i as f32);
                plan.mac_accumulator(i as f32 * 0.25);
                plan.ring_delivery();
                plan.ring_hold();
                plan.seq_stall();
            }
            (plan.trace().to_vec(), plan.counts())
        };
        let (t1, c1) = run(cfg);
        let (t2, c2) = run(cfg);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert!(!t1.is_empty());
        let (t3, _) = run(FaultConfig { seed: 43, ..cfg });
        assert_ne!(t1, t3, "different seeds must diverge");
    }

    #[test]
    fn domains_are_decoupled() {
        let cfg = FaultConfig {
            seed: 9,
            mac_operand_rate: 0.5,
            ring_drop_rate: 0.25,
            ..FaultConfig::default()
        };
        // Ring decisions must not depend on how many MAC draws happened.
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for i in 0..100 {
            a.mac_operand(i as f32);
        }
        let da: Vec<_> = (0..64).map(|_| a.ring_delivery()).collect();
        let db: Vec<_> = (0..64).map(|_| b.ring_delivery()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let cfg =
            FaultConfig { seed: 5, ring_drop_rate: 0.1, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(cfg);
        let n = 10_000;
        let mut drops = 0;
        for _ in 0..n {
            if plan.ring_delivery() == Some(DeliveryFault::Drop) {
                drops += 1;
            }
        }
        let rate = f64::from(drops) / f64::from(n);
        assert!((rate - 0.1).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn bit_flips_change_exactly_one_bit() {
        let cfg = FaultConfig { seed: 3, mac_operand_rate: 1.0, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(cfg);
        for i in 1..200 {
            let v = i as f32 * 0.37;
            let w = plan.mac_operand(v);
            assert_eq!((v.to_bits() ^ w.to_bits()).count_ones(), 1);
        }
        assert_eq!(plan.counts().mac_operand_flips, 199);
    }

    #[test]
    fn trace_is_capped_but_counts_continue() {
        let cfg = FaultConfig {
            seed: 8,
            mac_operand_rate: 1.0,
            max_trace_events: 16,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..100 {
            plan.mac_operand(1.0);
        }
        assert_eq!(plan.trace().len(), 16);
        assert_eq!(plan.counts().mac_operand_flips, 100);
    }

    #[test]
    fn derived_seeds_are_stable_and_label_sensitive() {
        // Same (master, label) → same child; any change → a far-apart child.
        assert_eq!(derive_seed(7, "fault_sweep"), derive_seed(7, "fault_sweep"));
        assert_ne!(derive_seed(7, "fault_sweep"), derive_seed(7, "fault_sweeq"));
        assert_ne!(derive_seed(7, "fault_sweep"), derive_seed(8, "fault_sweep"));
        // Child streams must be decoupled: two labels' first draws differ.
        let a = XorShift64::new(derive_seed(1, "a")).next_u64();
        let b = XorShift64::new(derive_seed(1, "b")).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn failed_core_mask_is_static_and_reported() {
        let cfg = FaultConfig { core_failed_mask: 0b0101, ..FaultConfig::default() };
        assert!(cfg.enabled(), "a dead core counts as a fault");
        let plan = FaultPlan::new(cfg);
        assert!(plan.core_failed(0));
        assert!(!plan.core_failed(1));
        assert_eq!(plan.failed_cores(4), vec![0, 2]);
        assert_eq!(plan.failed_cores(2), vec![0]);
        assert!(!FaultPlan::disabled().core_failed(0));
    }

    #[test]
    fn spad_and_corrupt_injectors_are_deterministic_and_in_range() {
        let cfg = FaultConfig {
            seed: 21,
            spad_flip_rate: 0.3,
            ring_corrupt_rate: 0.2,
            ..FaultConfig::default()
        };
        let run = |cfg| {
            let mut plan = FaultPlan::new(cfg);
            let flips: Vec<_> = (0..400).map(|_| plan.spad_flip(128)).collect();
            let corr: Vec<_> = (0..400).map(|_| plan.ring_corrupt(64)).collect();
            (flips, corr, plan.counts())
        };
        let (f1, c1, n1) = run(cfg);
        let (f2, c2, n2) = run(cfg);
        assert_eq!(f1, f2);
        assert_eq!(c1, c2);
        assert_eq!(n1, n2);
        assert!(n1.spad_flips > 50, "{n1}");
        assert!(n1.ring_corruptions > 30, "{n1}");
        for (addr, bit) in f1.into_iter().flatten() {
            assert!(addr < 128 && bit < 39);
        }
        for (elem, bit) in c1.into_iter().flatten() {
            assert!(elem < 64 && bit < 32);
        }
        // The memory stream must be decoupled from the MAC stream.
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for i in 0..100 {
            a.mac_operand(i as f32);
        }
        let fa: Vec<_> = (0..64).map(|_| a.spad_flip(128)).collect();
        let fb: Vec<_> = (0..64).map(|_| b.spad_flip(128)).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn serve_transients_are_deterministic_decoupled_and_counted() {
        let cfg = FaultConfig {
            seed: 13,
            serve_transient_rate: 0.25,
            mac_operand_rate: 0.5,
            ..FaultConfig::default()
        };
        assert!(cfg.enabled());
        let run = |burn_macs: usize| {
            let mut plan = FaultPlan::new(cfg);
            for i in 0..burn_macs {
                plan.mac_operand(i as f32);
            }
            let draws: Vec<bool> = (0..400).map(|_| plan.serve_transient()).collect();
            (draws, plan.counts().serve_transients)
        };
        // Same seed → same draws; the serve stream must not depend on how
        // many MAC draws happened first.
        let (d1, c1) = run(0);
        let (d2, _) = run(100);
        assert_eq!(d1, d2);
        let hits = d1.iter().filter(|&&b| b).count() as u64;
        assert_eq!(c1, hits);
        assert!((50..150).contains(&hits), "rate 0.25 over 400 draws: {hits}");
        assert!(FaultPlan::new(cfg).serve_enabled());
        assert!(!FaultPlan::disabled().serve_enabled());
    }

    #[test]
    fn node_faults_are_deterministic_decoupled_and_in_range() {
        let cfg = FaultConfig {
            seed: 31,
            node_crash_rate: 0.05,
            node_hang_rate: 0.05,
            node_slow_rate: 0.2,
            node_slow_factor: 3.0,
            mac_operand_rate: 0.5,
            ..FaultConfig::default()
        };
        assert!(cfg.enabled());
        let run = |burn_macs: usize| {
            let mut plan = FaultPlan::new(cfg);
            for i in 0..burn_macs {
                plan.mac_operand(i as f32);
            }
            let draws: Vec<_> = (0..400).map(|i| plan.node_fault(i % 4, 16)).collect();
            (draws, plan.counts())
        };
        // Same seed → same fates; the node stream must not depend on how
        // many MAC draws happened first.
        let (d1, c1) = run(0);
        let (d2, _) = run(100);
        assert_eq!(d1, d2);
        assert!(c1.node_crashes > 0 && c1.node_hangs > 0 && c1.node_slows > 20, "{c1}");
        for fault in d1.into_iter().flatten() {
            match fault {
                NodeFault::Crash { at_step } | NodeFault::Hang { at_step } => {
                    assert!(at_step < 16);
                }
                NodeFault::Slow { factor } => assert!((factor - 3.0).abs() < f64::EPSILON),
            }
        }
    }

    #[test]
    fn node_fault_budget_caps_crashes_and_hangs_but_not_slows() {
        let cfg = FaultConfig {
            seed: 77,
            node_crash_rate: 1.0,
            node_fault_budget: 1,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let fired: Vec<_> = (0..50).filter_map(|i| plan.node_fault(i, 8)).collect();
        assert_eq!(fired.len(), 1, "budget 1 allows exactly one crash");
        assert!(matches!(fired[0], NodeFault::Crash { .. }));
        assert_eq!(plan.counts().node_crashes, 1);
        // Slows are unbudgeted: even with a zero membership budget every
        // slow draw still fires.
        let cfg = FaultConfig {
            seed: 77,
            node_slow_rate: 1.0,
            node_fault_budget: 0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        for i in 0..50 {
            assert!(matches!(plan.node_fault(i, 8), Some(NodeFault::Slow { .. })));
        }
        assert_eq!(plan.counts().node_slows, 50);
    }

    #[test]
    fn stream_seed_matches_the_legacy_inline_pattern() {
        // The hoisted helper must be bit-identical to the expression it
        // replaced, or every seeded trace in the workspace shifts.
        for (seed, tag) in [(0u64, 0u64), (7, 0x4E4F_4445), (u64::MAX, 0x5352_5645)] {
            assert_eq!(
                derive_stream_seed(seed, tag),
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag
            );
        }
    }

    #[test]
    fn burst_mode_is_deterministic_and_clusters_flips() {
        let cfg = FaultConfig {
            seed: 19,
            mac_burst_rate: 0.002,
            mac_burst_len: 32,
            mac_burst_flip_rate: 0.8,
            ..FaultConfig::default()
        };
        assert!(cfg.enabled(), "burst mode alone must count as enabled");
        assert!(FaultPlan::new(cfg).burst_enabled());
        assert!(FaultPlan::new(cfg).mac_enabled());
        let run = |cfg| {
            let mut plan = FaultPlan::new(cfg);
            let flips: Vec<bool> =
                (0..20_000).map(|i| plan.mac_operand(i as f32 + 1.0) != i as f32 + 1.0).collect();
            (flips, plan.counts())
        };
        let (f1, c1) = run(cfg);
        let (f2, c2) = run(cfg);
        assert_eq!(f1, f2);
        assert_eq!(c1, c2);
        assert!(c1.mac_bursts > 0, "{c1}");
        assert!(c1.mac_burst_flips > c1.mac_bursts, "{c1}");
        assert_eq!(c1.mac_operand_flips, 0, "no background injector configured");
        // Burstiness: flips must cluster. Compare the flip count inside
        // the densest 64-site window against a uniform spread — a GE
        // process concentrates flips far beyond the uniform expectation.
        let total: usize = f1.iter().filter(|&&b| b).count();
        let max_window: usize = f1
            .windows(64)
            .map(|w| w.iter().filter(|&&b| b).count())
            .max()
            .unwrap_or(0);
        let uniform_per_window = total as f64 * 64.0 / f1.len() as f64;
        assert!(
            max_window as f64 > 4.0 * uniform_per_window.max(1.0),
            "flips do not cluster: {max_window} in densest window vs uniform {uniform_per_window:.1}"
        );
    }

    #[test]
    fn burst_stream_leaves_background_mac_stream_bit_aligned() {
        // Enabling bursts must not move a single background flip: the
        // burst chain draws only from its own stream.
        let base = FaultConfig { seed: 23, mac_operand_rate: 0.05, ..FaultConfig::default() };
        let bursty = FaultConfig {
            mac_burst_rate: 0.01,
            mac_burst_len: 16,
            mac_burst_flip_rate: 1.0,
            ..base
        };
        let background_sites = |cfg| {
            let mut plan = FaultPlan::new(cfg);
            for i in 0..5_000 {
                plan.mac_operand(i as f32);
            }
            plan.trace()
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::MacOperandFlip(site, bit, before, after) => {
                        Some((*site, *bit, *before, *after))
                    }
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(background_sites(base), background_sites(bursty));
    }

    #[test]
    fn burst_mode_hits_int_codes_too() {
        let cfg = FaultConfig {
            seed: 29,
            mac_burst_rate: 0.01,
            mac_burst_len: 32,
            mac_burst_flip_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg);
        let mut flipped = 0;
        for i in 0..5_000 {
            let c = (i % 8) as i8;
            if plan.int_code(c, 4) != c {
                flipped += 1;
            }
        }
        assert!(flipped > 0);
        assert_eq!(plan.counts().mac_burst_flips, flipped);
        assert_eq!(plan.counts().int_code_flips, 0);
    }

    #[test]
    fn seed_from_env_falls_back_to_default() {
        // The variable is not set in the test environment; the default
        // must come back. (Setting it here would race other tests.)
        if std::env::var(FAULT_SEED_ENV).is_err() {
            assert_eq!(FaultConfig::seed_from_env(17), 17);
        }
    }
}
