//! PACT: PArameterized Clipping acTivation (Choi et al. \[42\]).
//!
//! PACT replaces ReLU with `y = clip(x, 0, α)` where the clipping level α
//! is *learned per layer* during training: bounding the activation range
//! lets an ultra-low-bit uniform quantizer cover it with small steps. The
//! gradient w.r.t. α flows through the clipped region
//! (`∂y/∂α = 1` where `x ≥ α`), and the straight-through estimator passes
//! gradients to `x` inside the clip window.

use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::Tensor;

/// A PACT activation with a learnable clipping level.
#[derive(Debug, Clone, PartialEq)]
pub struct Pact {
    alpha: f32,
    format: IntFormat,
}

impl Pact {
    /// Creates a PACT activation with initial clipping level `alpha`
    /// quantizing to `format` (unsigned levels).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f32, format: IntFormat) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Self { alpha, format }
    }

    /// Current clipping level.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Replaces the clipping level (used by checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn set_alpha(&mut self, alpha: f32) {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
    }

    /// Quantization parameters implied by the current clipping level.
    pub fn quant_params(&self) -> QuantParams {
        QuantParams::from_abs_max(self.format, Signedness::Unsigned, self.alpha)
    }

    /// Forward: clip to `[0, α]` and fake-quantize to the unsigned grid.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let q = self.quant_params();
        x.map(|v| q.fake_quantize(v.clamp(0.0, self.alpha)))
    }

    /// Forward without quantization (the pure clipped activation used at
    /// full precision during early training).
    pub fn forward_clip_only(&self, x: &Tensor) -> Tensor {
        x.map(|v| v.clamp(0.0, self.alpha))
    }

    /// Backward: returns `(dx, dalpha)` given the upstream gradient and the
    /// forward input. STE inside the window; the clipped region's gradient
    /// accumulates into α.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, f32) {
        assert_eq!(x.shape(), grad_out.shape(), "shape mismatch in PACT backward");
        let mut dalpha = 0.0f64;
        let mut dx = Tensor::zeros(x.shape().to_vec());
        for i in 0..x.len() {
            let xi = x.as_slice()[i];
            let g = grad_out.as_slice()[i];
            if xi >= self.alpha {
                dalpha += f64::from(g);
            } else if xi > 0.0 {
                dx.as_mut_slice()[i] = g;
            }
        }
        (dx, dalpha as f32)
    }

    /// Applies one SGD step to α with learning rate `lr` and weight decay
    /// `decay` (PACT regularizes α toward smaller ranges).
    pub fn update_alpha(&mut self, dalpha: f32, lr: f32, decay: f32) {
        self.alpha -= lr * (dalpha + decay * self.alpha);
        self.alpha = self.alpha.max(1e-3); // keep the range valid
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn forward_clips_and_quantizes() {
        let p = Pact::new(6.0, IntFormat::Int4);
        let x = Tensor::from_vec(vec![5], vec![-1.0, 0.0, 3.0, 6.0, 9.0]);
        let y = p.forward(&x);
        assert_eq!(y.as_slice()[0], 0.0); // negative clipped
        assert_eq!(y.as_slice()[3], 6.0); // at alpha
        assert_eq!(y.as_slice()[4], 6.0); // above alpha clipped
        // 3.0 lands on the 15-level grid: scale 0.4 -> nearest 2.8 or 3.2.
        let q = p.quant_params();
        assert_eq!(y.as_slice()[2], q.fake_quantize(3.0));
    }

    #[test]
    fn backward_routes_gradients() {
        let p = Pact::new(1.0, IntFormat::Int4);
        let x = Tensor::from_vec(vec![4], vec![-0.5, 0.5, 1.5, 2.0]);
        let g = Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]);
        let (dx, dalpha) = p.backward(&x, &g);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(dalpha, 2.0); // two clipped elements
    }

    #[test]
    fn alpha_learns_to_cover_distribution() {
        // Train α on data in [0, 2): with only upstream gradients pushing
        // α up when activations clip, α should grow from a too-small init.
        let mut p = Pact::new(0.25, IntFormat::Int4);
        let x = Tensor::random_uniform(vec![256], 0.0, 2.0, 3);
        for _ in 0..200 {
            // Pretend the loss wants un-clipped activations: gradient +1
            // on clipped elements (they would have contributed more).
            let g = Tensor::from_fn(vec![256], |_| -0.01);
            let (_, dalpha) = p.backward(&x, &g);
            p.update_alpha(dalpha, 0.1, 0.0);
        }
        assert!(p.alpha() > 1.0, "alpha {} did not grow", p.alpha());
    }

    #[test]
    fn quantization_error_shrinks_with_learned_alpha() {
        // A well-chosen α gives lower MSE than clipping at the max value
        // for a long-tailed distribution.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::from_fn(vec![4096], |_| {
            let u: f32 = rng.gen_range(0.0f32..1.0);
            -(1.0 - u).ln() // Exp(1): long tail
        });
        let max = x.max_abs();
        let mse = |alpha: f32| {
            let p = Pact::new(alpha, IntFormat::Int2);
            let y = p.forward(&x);
            x.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(&a, &b)| f64::from((a - b) * (a - b)))
                .sum::<f64>()
                / x.len() as f64
        };
        // At 2 bits (4 levels) a learned clip near 2.0 beats clipping at
        // the max observed value, which wastes the coarse grid on the tail.
        assert!(mse(2.0) < mse(max), "mse(2)={} mse(max)={}", mse(2.0), mse(max));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_panics() {
        let _ = Pact::new(0.0, IntFormat::Int4);
    }
}
