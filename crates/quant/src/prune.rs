//! Magnitude pruning, used to produce the sparse models the
//! sparsity-aware throttling study consumes (paper §V-D, refs [55–58]).

use rapid_numerics::Tensor;

/// Zeroes the smallest-magnitude fraction `sparsity` of a weight tensor,
/// returning the pruned tensor and the sparsity actually achieved.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn magnitude_prune(w: &Tensor, sparsity: f64) -> (Tensor, f64) {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
    if w.is_empty() || sparsity == 0.0 {
        return (w.clone(), w.sparsity());
    }
    let mut mags: Vec<f32> = w.as_slice().iter().map(|x| x.abs()).collect();
    mags.sort_by(f32::total_cmp);
    let k = ((w.len() as f64 * sparsity).round() as usize).min(w.len());
    if k == 0 {
        return (w.clone(), w.sparsity());
    }
    let threshold = mags[k - 1];
    let pruned = w.map(|x| if x.abs() <= threshold { 0.0 } else { x });
    let achieved = pruned.sparsity();
    (pruned, achieved)
}

/// Gradual magnitude pruning schedule (Zhu & Gupta \[55\]): the sparsity at
/// step `t` of a ramp from `t0` to `t1` toward final sparsity `sf`:
/// `s(t) = sf · (1 − (1 − (t−t0)/(t1−t0))³)`.
pub fn gradual_sparsity(sf: f64, t: u64, t0: u64, t1: u64) -> f64 {
    if t <= t0 {
        return 0.0;
    }
    if t >= t1 {
        return sf;
    }
    let frac = (t - t0) as f64 / (t1 - t0) as f64;
    sf * (1.0 - (1.0 - frac).powi(3))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn prunes_to_target() {
        let w = Tensor::random_uniform(vec![1000], -1.0, 1.0, 21);
        let (p, achieved) = magnitude_prune(&w, 0.7);
        assert!((achieved - 0.7).abs() < 0.01, "achieved {achieved}");
        // Survivors are the large-magnitude entries.
        let min_kept =
            p.as_slice().iter().filter(|&&x| x != 0.0).fold(f32::MAX, |m, &x| m.min(x.abs()));
        let max_pruned = w
            .as_slice()
            .iter()
            .zip(p.as_slice())
            .filter(|(_, &pv)| pv == 0.0)
            .fold(0.0f32, |m, (&wv, _)| m.max(wv.abs()));
        assert!(min_kept >= max_pruned);
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let w = Tensor::random_uniform(vec![64], -1.0, 1.0, 22);
        let (p, _) = magnitude_prune(&w, 0.0);
        assert_eq!(p, w);
    }

    #[test]
    fn full_sparsity_zeroes_everything() {
        let w = Tensor::random_uniform(vec![64], -1.0, 1.0, 23);
        let (p, achieved) = magnitude_prune(&w, 1.0);
        assert_eq!(achieved, 1.0);
        assert!(p.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradual_schedule_shape() {
        assert_eq!(gradual_sparsity(0.8, 0, 10, 100), 0.0);
        assert_eq!(gradual_sparsity(0.8, 100, 10, 100), 0.8);
        let mid = gradual_sparsity(0.8, 55, 10, 100);
        assert!(mid > 0.4 && mid < 0.8, "mid {mid}");
        // Monotone.
        let mut prev = 0.0;
        for t in 0..120 {
            let s = gradual_sparsity(0.8, t, 10, 100);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn invalid_sparsity_panics() {
        let w = Tensor::zeros(vec![4]);
        let _ = magnitude_prune(&w, 1.5);
    }
}
