//! # rapid-quant
//!
//! The quantization and sparsity algorithms the RaPiD paper builds on
//! (§II-C): **PACT** learned activation clipping \[42\], **SaWB**
//! statistics-aware weight binning \[46\], and magnitude pruning \[55\] for the
//! sparse models used by sparsity-aware throttling (§V-D).
//!
//! These operate on `rapid-numerics` tensors and produce the per-tensor
//! [`rapid_numerics::int::QuantParams`] that the INT4/INT2 GEMM kernels and
//! the reference trainer (`rapid-refnet`) consume.
//!
//! # Example
//!
//! ```
//! use rapid_numerics::{int::IntFormat, Tensor};
//! use rapid_quant::{pact::Pact, sawb::sawb_quantize};
//!
//! let acts = Tensor::from_vec(vec![3], vec![-0.5, 1.2, 9.0]);
//! let pact = Pact::new(2.0, IntFormat::Int4);
//! let clipped = pact.forward(&acts);
//! assert_eq!(clipped.as_slice()[2], 2.0); // clipped at alpha
//!
//! let w = Tensor::random_uniform(vec![128], -0.1, 0.1, 1);
//! let qw = sawb_quantize(&w, IntFormat::Int4);
//! assert_eq!(qw.len(), w.len());
//! ```

pub mod pact;
pub mod prune;
pub mod sawb;

pub use pact::Pact;
pub use prune::{gradual_sparsity, magnitude_prune};
pub use sawb::{mse_optimal_alpha, sawb_alpha, sawb_params, sawb_quantize};
