//! SaWB: Statistics-aware Weight Binning (Choi et al. \[46\]).
//!
//! SaWB picks the weight-quantization scale from the first and second
//! moments of the weight distribution — `α* = c1·√E[w²] − c2·E[|w|]` —
//! with coefficients fit offline so the scale minimizes quantization MSE
//! for the bell-shaped distributions trained weights exhibit, "retaining
//! the shape of the weight distribution" instead of chasing outliers the
//! way max-abs scaling does. This module provides both the closed-form
//! coefficients and an exact golden-section MSE search used to validate
//! them.

use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::Tensor;

/// Closed-form SaWB coefficients `(c1, c2)` for a bit-width, fit for
/// Gaussian-like weights (from the SAWB paper's offline regression).
pub fn coefficients(format: IntFormat) -> (f32, f32) {
    match format {
        // 2-bit (ternary-like 3 levels + sign): strong clipping.
        IntFormat::Int2 => (3.19, 2.14),
        // 4-bit (15 symmetric levels).
        IntFormat::Int4 => (12.04, 12.07),
    }
}

/// Computes the SaWB clipping scale for a weight tensor.
pub fn sawb_alpha(w: &Tensor, format: IntFormat) -> f32 {
    let (c1, c2) = coefficients(format);
    let sum_sq: f64 = w.as_slice().iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    let sum_abs: f64 = w.as_slice().iter().map(|&x| f64::from(x).abs()).sum();
    let n = w.len().max(1) as f64;
    let e2 = (sum_sq / n).sqrt() as f32;
    let e1 = (sum_abs / n) as f32;
    (c1 * e2 - c2 * e1).max(1e-6)
}

/// Quantization parameters for a weight tensor under SaWB.
pub fn sawb_params(w: &Tensor, format: IntFormat) -> QuantParams {
    QuantParams::from_abs_max(format, Signedness::Signed, sawb_alpha(w, format))
}

/// Fake-quantizes a weight tensor with SaWB (values clip at ±α).
pub fn sawb_quantize(w: &Tensor, format: IntFormat) -> Tensor {
    let q = sawb_params(w, format);
    w.map(|x| q.fake_quantize(x))
}

/// Mean-squared quantization error of clipping scale `alpha` on `w`.
pub fn quant_mse(w: &Tensor, format: IntFormat, alpha: f32) -> f64 {
    let q = QuantParams::from_abs_max(format, Signedness::Signed, alpha);
    w.as_slice()
        .iter()
        .map(|&x| {
            let d = f64::from(x - q.fake_quantize(x));
            d * d
        })
        .sum::<f64>()
        / w.len().max(1) as f64
}

/// Golden-section search for the MSE-optimal clipping scale in
/// `(0, max|w|]` — the oracle SaWB approximates in closed form.
pub fn mse_optimal_alpha(w: &Tensor, format: IntFormat) -> f32 {
    let hi0 = w.max_abs().max(1e-6);
    let (mut lo, mut hi) = (hi0 * 0.05, hi0);
    let phi = 0.618_034_f32;
    for _ in 0..60 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if quant_mse(w, format, a) < quant_mse(w, format, b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn gaussian_weights(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        // Box-Muller.
        Tensor::from_fn(vec![n], |_| {
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            0.05 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        })
    }

    #[test]
    fn sawb_close_to_mse_optimal_for_gaussian() {
        let w = gaussian_weights(8192, 5);
        for fmt in [IntFormat::Int4, IntFormat::Int2] {
            let sawb = sawb_alpha(&w, fmt);
            let opt = mse_optimal_alpha(&w, fmt);
            let mse_sawb = quant_mse(&w, fmt, sawb);
            let mse_opt = quant_mse(&w, fmt, opt);
            assert!(
                mse_sawb < mse_opt * 1.3,
                "{fmt}: sawb α={sawb} mse={mse_sawb} vs optimal α={opt} mse={mse_opt}"
            );
        }
    }

    #[test]
    fn sawb_beats_max_abs_scaling() {
        // A few outliers wreck max-abs scaling; SaWB's moments shrug them
        // off ("retaining the shape of the weight distribution").
        let mut w = gaussian_weights(8192, 6);
        w.as_mut_slice()[0] = 1.0;
        w.as_mut_slice()[1] = -1.2;
        for fmt in [IntFormat::Int4, IntFormat::Int2] {
            let mse_sawb = quant_mse(&w, fmt, sawb_alpha(&w, fmt));
            let mse_max = quant_mse(&w, fmt, w.max_abs());
            assert!(
                mse_sawb < mse_max * 0.5,
                "{fmt}: sawb {mse_sawb} vs max-abs {mse_max}"
            );
        }
    }

    #[test]
    fn quantized_weights_land_on_grid() {
        let w = gaussian_weights(512, 7);
        let q = sawb_quantize(&w, IntFormat::Int4);
        let p = sawb_params(&w, IntFormat::Int4);
        for &v in q.as_slice() {
            let code = (v / p.scale()).round();
            assert!((v - code * p.scale()).abs() < 1e-6);
            assert!((-7.0..=7.0).contains(&code), "code {code}");
        }
    }

    #[test]
    fn int2_uses_three_magnitude_levels() {
        let w = gaussian_weights(512, 8);
        let q = sawb_quantize(&w, IntFormat::Int2);
        let mut levels: Vec<i32> = q
            .as_slice()
            .iter()
            .map(|&v| (v / sawb_params(&w, IntFormat::Int2).scale()).round() as i32)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 3, "levels {levels:?}");
    }

    #[test]
    fn empty_tensor_is_safe() {
        let w = Tensor::zeros(vec![0]);
        assert!(sawb_alpha(&w, IntFormat::Int4) > 0.0);
    }
}
