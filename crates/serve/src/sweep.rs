//! Virtual-time open-loop load generation: the chaos harness.
//!
//! Drives a [`ServeEngine`] with seeded Poisson arrivals over an
//! explicit microsecond clock — no threads, no wall time — so a sweep
//! with the same seed, load and fault plan reproduces bit-identically.
//! Workers are modeled as busy-until timestamps; service times come
//! from the same [`LatencyTable`] the admission controller uses, so the
//! overload point is analytically known
//! ([`LatencyTable::capacity_qps`]).
//!
//! This is *open-loop* load: arrivals do not slow down when the system
//! struggles, which is exactly the regime where unhardened serving
//! stacks collapse (queues grow, every request finishes late, goodput
//! goes to zero). EXPERIMENTS.md E21 plots the resulting curves.

use rapid_arch::precision::Precision;
use rapid_fault::{derive_stream_seed, XorShift64};
use rapid_model::{LatencyEntry, LatencyTable};
use rapid_telemetry::slo::SloReport;
use rapid_telemetry::span::SpanRecord;
use rapid_telemetry::{MetricsRegistry, ServeCounters};

use crate::engine::{BatchLogEntry, ServeConfig, ServeEngine};
use crate::request::{Batch, QosClass, Request, Response, Tier};
use crate::session::{InferenceSession, SessionError};

/// Builds a synthetic latency table for sweeps and tests: every model
/// gets the same FP16 law, with HFP8 at 0.55× and INT4 at 0.30× the
/// cost (the paper's emulated-tier speedup ordering).
pub fn synthetic_table(models: &[&str], base_us: f64, per_item_us: f64) -> LatencyTable {
    let tiers =
        [(Precision::Fp16, 1.0), (Precision::Hfp8, 0.55), (Precision::Int4, 0.30)];
    LatencyTable::from_entries(models.iter().flat_map(|m| {
        tiers.iter().map(move |&(p, s)| {
            (
                (m.to_string(), p),
                LatencyEntry { base_us: base_us * s, per_item_us: per_item_us * s },
            )
        })
    }))
}

/// One open-loop offered-load cell.
#[derive(Debug, Clone)]
pub struct OfferedLoad {
    /// Offered arrival rate, requests per second (Poisson process).
    pub qps: f64,
    /// How long arrivals keep coming, microseconds of virtual time.
    pub duration_us: u64,
    /// Arrival-process seed (decoupled from the fault-plan seed).
    pub seed: u64,
    /// Deadline budget granted to every request, microseconds.
    pub deadline_budget_us: u64,
    /// Fraction of requests submitted as [`QosClass::Critical`].
    pub critical_fraction: f64,
    /// Models requests are spread across (uniformly at random).
    pub models: Vec<String>,
    /// Tier every request asks for (the shedder may lower it).
    pub tier: Tier,
}

impl Default for OfferedLoad {
    fn default() -> Self {
        Self {
            qps: 1_000.0,
            duration_us: 1_000_000,
            seed: 1,
            deadline_budget_us: 20_000,
            critical_fraction: 0.1,
            models: vec!["m".to_string()],
            tier: Tier::Fp16,
        }
    }
}

/// What one sweep cell produced.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The offered rate, echoed.
    pub offered_qps: f64,
    /// Canonical serving counters after full drain.
    pub counters: ServeCounters,
    /// Median completed-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completed-request latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per second of offered-load window.
    pub goodput_qps: f64,
    /// Full engine registry (for bench-record merges).
    pub registry: MetricsRegistry,
    /// Every terminal response, in accounting order.
    pub responses: Vec<Response>,
    /// Batch compositions (when [`ServeConfig::record_batches`]).
    pub batch_log: Vec<BatchLogEntry>,
    /// Request spans (when [`ServeConfig::record_spans`]).
    pub spans: Vec<SpanRecord>,
    /// Burn-rate rule outcomes (empty rules when [`ServeConfig::slo`]
    /// is `None`).
    pub slo: SloReport,
}

/// Exponential inter-arrival draw, microseconds, ≥ 1.
fn inter_arrival_us(rng: &mut XorShift64, qps: f64) -> u64 {
    let rate_per_us = (qps / 1e6).max(1e-12);
    let u = rng.next_f64().max(1e-12);
    ((-u.ln() / rate_per_us).round() as u64).max(1)
}

/// A dispatched batch in flight on a virtual worker.
struct InFlight {
    done_us: u64,
    batch: Batch,
    result: Result<(), SessionError>,
}

/// Runs one open-loop cell to full drain and returns its results.
///
/// The session executes at dispatch time (so fault draws happen in
/// deterministic dispatch order) but the engine observes the result at
/// the modeled completion time.
pub fn run_open_loop(
    cfg: &ServeConfig,
    table: &LatencyTable,
    load: &OfferedLoad,
    session: &dyn InferenceSession,
) -> SweepResult {
    let mut engine = ServeEngine::new(cfg.clone(), table.clone());
    // Tag 0 keeps the stream bit-identical to the pre-helper spelling
    // (`x ^ 0 == x`); `| 1` preserves the legacy non-zero guarantee.
    let mut rng = XorShift64::new(derive_stream_seed(load.seed, 0) | 1);
    let workers = cfg.workers.max(1);
    let mut worker_free = vec![0u64; workers];
    let mut inflight: Vec<InFlight> = Vec::new();
    let tick_step = (cfg.batch_window_us / 2).max(1);
    let hard_stop = load.duration_us.saturating_add(cfg.drain_timeout_us);

    let mut now = 0u64;
    let mut next_arrival = inter_arrival_us(&mut rng, load.qps);
    let mut next_tick = 0u64;
    let mut drained = false;

    loop {
        // 1. Apply completions due now.
        loop {
            let due = inflight
                .iter()
                .enumerate()
                .filter(|(_, f)| f.done_us <= now)
                .min_by_key(|(i, f)| (f.done_us, f.batch.id, *i))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let f = inflight.remove(i);
            engine.complete_batch(f.batch, f.result, now);
        }

        // 2. Arrivals due now (possibly several after a clock jump).
        while next_arrival <= now && next_arrival < load.duration_us {
            let model_idx = rng.below(load.models.len().max(1) as u32) as usize;
            let critical = rng.chance(load.critical_fraction);
            let id = engine.allocate_id();
            let req = Request {
                id,
                model: load.models.get(model_idx).cloned().unwrap_or_default(),
                tier: load.tier,
                qos: if critical { QosClass::Critical } else { QosClass::Standard },
                submit_us: now,
                deadline_us: now.saturating_add(load.deadline_budget_us),
            };
            engine.submit(req, now);
            next_arrival += inter_arrival_us(&mut rng, load.qps);
        }

        // 3. Housekeeping tick.
        if now >= next_tick {
            engine.tick(now);
            next_tick = now + tick_step;
        }

        // 4. Start drain once the offered window closes.
        if now >= load.duration_us && !drained {
            engine.drain();
            drained = true;
        }

        // 5. Dispatch to free workers.
        for free_at in worker_free.iter_mut() {
            if *free_at > now {
                continue;
            }
            let Some(batch) = engine.next_batch(now) else { break };
            let service = table
                .estimate_us(&batch.model, batch.tier.precision(), batch.requests.len())
                .unwrap_or(1_000.0)
                .max(1.0) as u64;
            let result = session
                .infer(&batch.model, batch.tier, batch.requests.len())
                .map(|_| ());
            let done_us = now + service;
            *free_at = done_us;
            inflight.push(InFlight { done_us, batch, result });
        }

        // 6. Termination and next event time.
        if drained && inflight.is_empty() && engine.idle() {
            break;
        }
        if now >= hard_stop {
            // Drain window closed with work still stuck (e.g. an open
            // breaker). Complete in-flight batches, then abort the rest.
            for f in std::mem::take(&mut inflight) {
                engine.complete_batch(f.batch, f.result, hard_stop);
            }
            engine.abort_remaining(hard_stop);
            break;
        }
        let mut next = next_tick;
        if now < load.duration_us {
            next = next.min(next_arrival);
        }
        if let Some(done) = inflight.iter().map(|f| f.done_us).min() {
            next = next.min(done);
        }
        now = next.max(now + 1).min(hard_stop);
    }

    let counters = engine.counters();
    // Percentiles come straight off the engine's streaming latency
    // histogram (sub-bucket interpolated) — no sorted-vector second
    // bookkeeping of the same distribution.
    let pct = |q: f64| -> f64 {
        engine
            .registry()
            .histogram("serve.latency_us")
            .map(|h| h.quantile(q) / 1_000.0)
            .unwrap_or(0.0)
    };
    let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));
    let goodput_qps = counters.completed as f64 / (load.duration_us as f64 / 1e6);
    let mut registry = MetricsRegistry::new();
    registry.merge(engine.registry());
    let batch_log = engine.batch_log().to_vec();
    let slo = engine.slo_report();
    let spans = engine.take_spans().map(|s| s.spans().to_vec()).unwrap_or_default();
    SweepResult {
        offered_qps: load.qps,
        counters,
        p50_ms,
        p99_ms,
        goodput_qps,
        registry,
        responses: engine.take_responses(),
        batch_log,
        spans,
        slo,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::session::OkSession;

    fn load(qps: f64) -> OfferedLoad {
        OfferedLoad {
            qps,
            duration_us: 200_000,
            seed: 42,
            deadline_budget_us: 25_000,
            critical_fraction: 0.1,
            models: vec!["m".to_string()],
            tier: Tier::Fp16,
        }
    }

    #[test]
    fn underload_completes_nearly_everything() {
        let table = synthetic_table(&["m"], 100.0, 50.0);
        let cfg = ServeConfig::hardened();
        // Capacity ≈ workers/(per_item + base/batch) = 4e6/62.5 = 64k qps;
        // 2k qps is deep underload.
        let r = run_open_loop(&cfg, &table, &load(2_000.0), &OkSession);
        assert_eq!(r.counters.lost(), 0);
        assert_eq!(r.counters.deadline_violations, 0);
        assert!(r.counters.submitted > 200, "arrivals happened");
        let frac = r.counters.completed as f64 / r.counters.submitted as f64;
        assert!(frac > 0.95, "underload completion fraction {frac}");
        assert!(r.p99_ms < 25.0, "p99 {} under deadline", r.p99_ms);
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let table = synthetic_table(&["a", "b"], 200.0, 80.0);
        let cfg = ServeConfig { record_batches: true, ..ServeConfig::hardened() };
        let l = OfferedLoad { models: vec!["a".into(), "b".into()], ..load(8_000.0) };
        let r1 = run_open_loop(&cfg, &table, &l, &OkSession);
        let r2 = run_open_loop(&cfg, &table, &l, &OkSession);
        assert_eq!(r1.counters, r2.counters);
        assert_eq!(r1.batch_log, r2.batch_log);
        assert_eq!(r1.responses, r2.responses);
    }

    #[test]
    fn clean_underload_cell_has_wellnested_spans_and_no_alerts() {
        use rapid_telemetry::span::{critical_path, validate_forest};
        let table = synthetic_table(&["m"], 100.0, 50.0);
        let cfg = ServeConfig { record_spans: true, ..ServeConfig::hardened() };
        let r = run_open_loop(&cfg, &table, &load(2_000.0), &OkSession);
        assert_eq!(r.slo.total_alerts(), 0, "fault-free underload must not page");
        assert!(!r.spans.is_empty());
        validate_forest(&r.spans).expect("well-nested");
        for cp in critical_path(&r.spans) {
            let gap = cp.total.abs_diff(cp.attributed());
            assert!(
                gap * 100 <= cp.total,
                "class {} attribution off by more than 1%: {} of {}",
                cp.class,
                gap,
                cp.total
            );
        }
    }

    #[test]
    fn hardened_beats_naive_at_heavy_overload() {
        let table = synthetic_table(&["m"], 200.0, 100.0);
        // Capacity ≈ 4e6/125 = 32k qps; offer 3× that.
        let l = load(96_000.0);
        let hardened = run_open_loop(&ServeConfig::hardened(), &table, &l, &OkSession);
        let naive = run_open_loop(&ServeConfig::naive(), &table, &l, &OkSession);
        assert_eq!(hardened.counters.lost(), 0);
        assert_eq!(naive.counters.lost(), 0);
        assert_eq!(hardened.counters.deadline_violations, 0);
        assert_eq!(naive.counters.deadline_violations, 0);
        assert!(
            hardened.goodput_qps > naive.goodput_qps,
            "hardened {} <= naive {}",
            hardened.goodput_qps,
            naive.goodput_qps
        );
    }
}
