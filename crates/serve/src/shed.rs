//! Precision-tiered load-shedding controller with hysteresis.
//!
//! Maps queue occupancy to an escalation **level**: 0 = serve as
//! requested, 1 = downgrade standard requests one tier (FP16 → HFP8),
//! 2 = downgrade to INT4, 3 = drop (shed) standard requests entirely.
//! Critical requests are never touched at any level.
//!
//! Hysteresis prevents flapping: the level rises only after occupancy has
//! stayed above the high watermark for `up_ticks` consecutive
//! observations, and falls only after `down_ticks` below the low
//! watermark. One observation is taken per engine tick.

/// Shedding controller knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedConfig {
    /// Occupancy fraction above which pressure accumulates (0..=1).
    pub hi: f64,
    /// Occupancy fraction below which relief accumulates (0..=1).
    pub lo: f64,
    /// Consecutive high observations before escalating one level.
    pub up_ticks: u32,
    /// Consecutive low observations before de-escalating one level.
    pub down_ticks: u32,
    /// Highest level the controller may reach (3 enables shedding).
    pub max_level: u8,
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self { hi: 0.60, lo: 0.25, up_ticks: 3, down_ticks: 8, max_level: 3 }
    }
}

/// Hysteretic escalation-level tracker.
#[derive(Debug, Clone)]
pub struct ShedController {
    cfg: ShedConfig,
    level: u8,
    hi_streak: u32,
    lo_streak: u32,
}

impl ShedController {
    /// A controller at level 0.
    pub fn new(cfg: ShedConfig) -> Self {
        Self { cfg, level: 0, hi_streak: 0, lo_streak: 0 }
    }

    /// Current escalation level (0..=`max_level`).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Feeds one occupancy observation (queued / capacity, 0..=1) and
    /// returns the possibly-updated level.
    pub fn observe(&mut self, occupancy: f64) -> u8 {
        if occupancy > self.cfg.hi {
            self.lo_streak = 0;
            self.hi_streak += 1;
            if self.hi_streak >= self.cfg.up_ticks && self.level < self.cfg.max_level {
                self.level += 1;
                self.hi_streak = 0;
            }
        } else if occupancy < self.cfg.lo {
            self.hi_streak = 0;
            self.lo_streak += 1;
            if self.lo_streak >= self.cfg.down_ticks && self.level > 0 {
                self.level -= 1;
                self.lo_streak = 0;
            }
        } else {
            // Dead band: decay both streaks so a brief spike or dip
            // inside the band does not carry over.
            self.hi_streak = 0;
            self.lo_streak = 0;
        }
        self.level
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ctl() -> ShedController {
        ShedController::new(ShedConfig {
            hi: 0.6,
            lo: 0.25,
            up_ticks: 2,
            down_ticks: 3,
            max_level: 3,
        })
    }

    #[test]
    fn escalates_only_after_sustained_pressure() {
        let mut c = ctl();
        assert_eq!(c.observe(0.9), 0); // one tick is not enough
        assert_eq!(c.observe(0.9), 1);
        assert_eq!(c.observe(0.9), 1);
        assert_eq!(c.observe(0.9), 2);
        for _ in 0..10 {
            c.observe(0.95);
        }
        assert_eq!(c.level(), 3); // capped at max_level
    }

    #[test]
    fn dead_band_resets_streaks_both_ways() {
        let mut c = ctl();
        c.observe(0.9);
        c.observe(0.4); // in-band: clears the high streak
        assert_eq!(c.observe(0.9), 0);
        assert_eq!(c.observe(0.9), 1);
        // Relief must also be sustained.
        c.observe(0.1);
        c.observe(0.1);
        c.observe(0.4); // in-band: clears the low streak
        assert_eq!(c.level(), 1);
        c.observe(0.1);
        c.observe(0.1);
        assert_eq!(c.observe(0.1), 0);
    }

    #[test]
    fn max_level_below_three_disables_shedding() {
        let mut c = ShedController::new(ShedConfig {
            max_level: 2,
            up_ticks: 1,
            ..ShedConfig::default()
        });
        for _ in 0..20 {
            c.observe(1.0);
        }
        assert_eq!(c.level(), 2);
    }
}
