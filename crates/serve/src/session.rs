//! The inference seam between the serving runtime and the emulated
//! accelerator stack.
//!
//! [`InferenceSession`] is the one trait the engine, the threaded server
//! and the chaos sweeps all execute through. [`EmulatedSession`] is the
//! production implementation: it routes each precision tier to the
//! corresponding guarded emulated kernel (FP16 and INT4 directly, HFP8
//! through the [`GuardedHfp8Backend`] so ABFT/redundancy protection
//! applies), with a shared [`FaultPlan`] injecting both MAC-level upsets
//! and serving-level transients. [`OkSession`] is the zero-work stand-in
//! for virtual-time sweeps and unit tests.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use rapid_fault::{FaultConfig, FaultCounts, FaultPlan};
use rapid_numerics::gemm::{matmul_emulated_guarded, matmul_int_guarded};
use rapid_numerics::guard::GuardPolicy;
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::fma::FmaMode;
use rapid_numerics::tensor::Tensor;
use rapid_numerics::NumericsError;
use rapid_recover::backend::{GuardedHfp8Backend, Protection};
use rapid_refnet::backend::{Backend, OperandRole};

use crate::request::Tier;

/// Why a batch execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Injected or environmental transient — retry is expected to help.
    Transient,
    /// The guarded kernel surfaced a numerics error (corrupted
    /// accumulator, overflow, bad operand). Retries help when the cause
    /// was an injected fault; repeated failures trip the breaker.
    Numerics(NumericsError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Transient => write!(f, "transient execution failure"),
            SessionError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

/// What a successful batch execution reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Multiply-accumulates issued for the batch.
    pub macs: u64,
    /// Accumulators the guard stage clamped (bounded absorbed damage).
    pub guard_clamps: u64,
}

/// One executable model endpoint the runtime dispatches batches to.
///
/// Implementations must be `Sync`: the threaded server calls `infer`
/// from multiple workers (interior mutability goes behind a lock).
pub trait InferenceSession: Sync {
    /// Label for reports and bench records.
    fn name(&self) -> &'static str;

    /// Executes one batch of `batch` requests for `model` at `tier`.
    ///
    /// # Errors
    ///
    /// [`SessionError::Transient`] for retryable environmental failures,
    /// [`SessionError::Numerics`] when the guarded kernel aborts.
    fn infer(&self, model: &str, tier: Tier, batch: usize) -> Result<SessionReport, SessionError>;
}

/// Always succeeds with zero work — the virtual-time sweep baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct OkSession;

impl InferenceSession for OkSession {
    fn name(&self) -> &'static str {
        "ok"
    }

    fn infer(&self, _: &str, _: Tier, _: usize) -> Result<SessionReport, SessionError> {
        Ok(SessionReport::default())
    }
}

/// Interior state of [`EmulatedSession`], behind one lock.
struct EmState {
    /// Serving-transient + FP16/INT4 MAC fault stream.
    plan: FaultPlan,
    /// HFP8 tier goes through the full guarded/protected backend (which
    /// derives its own decoupled fault streams from the same config).
    backend: GuardedHfp8Backend,
    /// Per-model representative operand pair, generated on first use.
    mats: BTreeMap<String, (Tensor, Tensor)>,
}

/// Production session: real emulated GEMMs per tier, chaos-injectable.
///
/// Each model executes one representative small GEMM whose shape is
/// derived deterministically from the model name — enough arithmetic to
/// exercise the real guarded kernels without making chaos sweeps slow.
pub struct EmulatedSession {
    policy: GuardPolicy,
    state: Mutex<EmState>,
}

impl fmt::Debug for EmulatedSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EmulatedSession").field("policy", &self.policy).finish_non_exhaustive()
    }
}

/// FNV-1a over the model name: seeds operand generation and shape pick.
fn model_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl EmulatedSession {
    /// Builds a session with the given fault/guard/protection settings.
    /// `GuardPolicy::Error` is the serving-correct choice: corrupted
    /// results surface as errors (→ retry → breaker) instead of being
    /// silently returned to clients.
    pub fn new(cfg: FaultConfig, policy: GuardPolicy, protection: Protection) -> Self {
        Self {
            policy,
            state: Mutex::new(EmState {
                plan: FaultPlan::new(cfg),
                backend: GuardedHfp8Backend::new(cfg, policy).with_protection(protection),
                mats: BTreeMap::new(),
            }),
        }
    }

    /// A clean session: no fault injection, abort-on-corruption guards,
    /// no redundant protection.
    pub fn clean() -> Self {
        Self::new(FaultConfig::default(), GuardPolicy::Error, Protection::None)
    }

    /// Injected-fault counts observed so far (serving transients come
    /// from the session plan; MAC upsets on the HFP8 tier from the
    /// backend's own plan and are not included here).
    pub fn fault_counts(&self) -> FaultCounts {
        self.lock().plan.counts()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EmState> {
        // Poisoning cannot corrupt EmState invariants (every mutation is
        // a complete RNG draw or map insert), so recover the guard.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Representative operand shapes for a model: small enough to keep
    /// sweeps fast, distinct per model so latencies differ.
    fn shapes(name: &str) -> (usize, usize, usize) {
        let h = model_hash(name);
        let m = 4 + (h % 5) as usize; // 4..=8
        let k = 16 + ((h >> 8) % 17) as usize; // 16..=32
        let n = 8 + ((h >> 16) % 9) as usize; // 8..=16
        (m, k, n)
    }
}

impl InferenceSession for EmulatedSession {
    fn name(&self) -> &'static str {
        "emulated"
    }

    fn infer(&self, model: &str, tier: Tier, batch: usize) -> Result<SessionReport, SessionError> {
        let mut st = self.lock();
        if st.plan.serve_transient() {
            return Err(SessionError::Transient);
        }
        let (a, b) = st
            .mats
            .entry(model.to_string())
            .or_insert_with(|| {
                let (m, k, n) = Self::shapes(model);
                let seed = model_hash(model) | 1;
                (
                    Tensor::random_uniform(vec![m, k], -1.0, 1.0, seed),
                    Tensor::random_uniform(vec![k, n], -1.0, 1.0, seed.rotate_left(17)),
                )
            })
            .clone();
        // One GEMM per member keeps work proportional to batch size, like
        // the real runtime; operands are reused across members.
        let mut report = SessionReport::default();
        for _ in 0..batch.max(1) {
            let stats = match tier {
                Tier::Fp16 => matmul_emulated_guarded(
                    FmaMode::Fp16,
                    &a,
                    &b,
                    64,
                    self.policy,
                    Some(&mut st.plan),
                )
                .map(|(_, s)| s)
                .map_err(SessionError::Numerics)?,
                Tier::Hfp8 => {
                    st.backend
                        .try_matmul(&a, &b, (OperandRole::Data, OperandRole::Data))
                        .map_err(SessionError::Numerics)?;
                    rapid_numerics::gemm::GemmStats::default()
                }
                Tier::Int4 => {
                    let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
                    matmul_int_guarded(&a, &b, q, q, 64, self.policy, Some(&mut st.plan))
                        .map(|(_, s)| s)
                        .map_err(SessionError::Numerics)?
                }
            };
            report.macs += stats.macs;
            report.guard_clamps += stats.guard_clamps;
        }
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn clean_session_serves_every_tier() {
        let s = EmulatedSession::clean();
        for tier in Tier::ALL {
            let rep = s.infer("resnet50", tier, 2).unwrap();
            if tier != Tier::Hfp8 {
                assert!(rep.macs > 0, "{tier:?} reported no work");
            }
        }
    }

    #[test]
    fn serve_transients_surface_as_retryable_errors() {
        let s = EmulatedSession::new(
            FaultConfig { serve_transient_rate: 1.0, seed: 7, ..FaultConfig::default() },
            GuardPolicy::Error,
            Protection::None,
        );
        assert_eq!(s.infer("bert", Tier::Fp16, 1), Err(SessionError::Transient));
        assert_eq!(s.fault_counts().serve_transients, 1);
    }

    #[test]
    fn shapes_are_deterministic_and_distinct_enough() {
        assert_eq!(EmulatedSession::shapes("bert"), EmulatedSession::shapes("bert"));
        assert_ne!(EmulatedSession::shapes("bert"), EmulatedSession::shapes("lstm"));
    }

    #[test]
    fn mac_faults_on_direct_tiers_abort_under_error_policy() {
        // Saturating rate: every FP16 chunk draw fires, so the guarded
        // kernel must abort rather than return corrupted data.
        let s = EmulatedSession::new(
            FaultConfig {
                mac_acc_rate: 1.0,
                exponent_share: 1.0,
                seed: 11,
                ..FaultConfig::default()
            },
            GuardPolicy::Error,
            Protection::None,
        );
        match s.infer("vgg16", Tier::Fp16, 1) {
            Err(SessionError::Numerics(_)) => {}
            other => panic!("expected numerics abort, got {other:?}"),
        }
    }
}
