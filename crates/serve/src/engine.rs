//! The deterministic serving engine: bounded queue → admission control →
//! continuous batcher → execution accounting, over an explicit
//! microsecond clock.
//!
//! The engine owns **no threads and no clock**. Every method takes
//! `now_us`; the virtual-time sweep driver advances it event-by-event
//! (bit-reproducible chaos tests), while the threaded [`Server`] feeds it
//! wall-clock micros under a mutex. Both therefore run the *same* state
//! machines — the chaos results transfer.
//!
//! Robustness invariants, enforced by construction:
//!
//! - **Conservation**: every submitted request flows through the single
//!   [`ServeEngine::finish`] path exactly once —
//!   `completed + rejected + shed + timed_out == submitted` after drain.
//! - **No late deliveries**: a completion past its deadline is converted
//!   to `TimedOut(Exec)` before it reaches the client, unconditionally.
//!   `serve.deadline_violations` counts any escape and must stay 0.
//! - **Deadline propagation**: with [`ServeConfig::deadline_propagation`]
//!   on, expired requests are dropped at every stage boundary (queue
//!   scan, batch formation, retry dispatch) instead of being executed.
//!
//! [`Server`]: crate::server::Server

use std::collections::{BTreeMap, VecDeque};

use rapid_model::LatencyTable;
use rapid_telemetry::serve as names;
use rapid_telemetry::slo::{SloConfig, SloMonitor, SloReport};
use rapid_telemetry::span::{derive_trace_id, SpanContext, SpanRecord, SpanSink};
use rapid_telemetry::{MetricsRegistry, ServeCounters};

use crate::breaker::{Admit, BreakerConfig, CircuitBreaker};
use crate::request::{
    Batch, Outcome, QosClass, RejectReason, Request, RequestId, Response, Tier, TimeoutStage,
};
use crate::session::SessionError;
use crate::shed::{ShedConfig, ShedController};

/// Serving-runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded request-queue capacity (total across models and tiers).
    pub queue_cap: usize,
    /// Maximum requests per formed batch.
    pub batch_max: usize,
    /// Microseconds a partial batch waits for more members.
    pub batch_window_us: u64,
    /// Whether the admission controller rejects infeasible deadlines.
    pub admission: bool,
    /// Safety factor on the admission latency estimate (≥ 1.0 rejects
    /// earlier).
    pub admission_slack: f64,
    /// Whether expired requests are dropped at stage boundaries.
    pub deadline_propagation: bool,
    /// Overload shedding controller; `None` disables downgrades and
    /// shedding entirely.
    pub shed: Option<ShedConfig>,
    /// Per-model circuit breaker; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Maximum retry attempts per batch after a failed execution.
    pub retry_max: u32,
    /// Base retry backoff, microseconds (doubles per attempt).
    pub retry_backoff_us: u64,
    /// Parallel executors the admission estimate divides backlog across.
    pub workers: usize,
    /// Microseconds the shutdown drain waits before aborting leftovers.
    pub drain_timeout_us: u64,
    /// Record batch compositions for determinism tests.
    pub record_batches: bool,
    /// Record request-scoped spans (admission → queue → exec → retry
    /// stages with a root per request). Off by default; purely
    /// observational — results are bit-identical either way.
    pub record_spans: bool,
    /// Seed mixed into span trace ids (so concurrent cells in a sweep
    /// get disjoint trace-id streams).
    pub span_seed: u64,
    /// Burn-rate SLO rules evaluated on the engine's virtual clock;
    /// `None` disables monitoring. Observers only — never changes
    /// scheduling decisions.
    pub slo: Option<SloPolicy>,
}

/// The engine's SLO rule pair: deadline violations and shed rate, each a
/// multi-window burn-rate rule (see [`rapid_telemetry::slo`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Deadline-violation rule: bad = timed out or failed execution,
    /// over requests that reached a terminal post-admission state.
    pub deadline: SloConfig,
    /// Shed-rate rule: bad = shed or load-rejected (queue full, breaker,
    /// infeasible deadline), over all non-shutdown traffic.
    pub shed: SloConfig,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self { deadline: SloConfig::deadline_default(), shed: SloConfig::shed_default() }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: 256,
            batch_max: 8,
            batch_window_us: 2_000,
            admission: true,
            admission_slack: 1.2,
            deadline_propagation: true,
            shed: Some(ShedConfig::default()),
            breaker: Some(BreakerConfig::default()),
            retry_max: 2,
            retry_backoff_us: 500,
            workers: 4,
            drain_timeout_us: 200_000,
            record_batches: false,
            record_spans: false,
            span_seed: 0,
            slo: Some(SloPolicy::default()),
        }
    }
}

impl ServeConfig {
    /// The full overload-hardened stack (all defenses on).
    pub fn hardened() -> Self {
        Self::default()
    }

    /// Admission control and deadline propagation, but no precision
    /// shedding — the middle rung of the E21 overload experiment.
    pub fn admission_only() -> Self {
        Self { shed: None, ..Self::default() }
    }

    /// No admission, no deadline propagation, no shedding, no breaker:
    /// workers happily execute stale work. The collapse baseline. (Late
    /// completions are still never *delivered* — they convert to
    /// timeouts — so even this config cannot violate a deadline.)
    pub fn naive() -> Self {
        Self {
            admission: false,
            deadline_propagation: false,
            shed: None,
            breaker: None,
            ..Self::default()
        }
    }
}

/// A queued request plus its cached admission-time work estimate.
#[derive(Debug, Clone)]
struct Queued {
    req: Request,
    est_us: f64,
    enqueued_us: u64,
}

/// A failed batch waiting out its retry backoff.
#[derive(Debug, Clone)]
struct RetryEntry {
    batch: Batch,
    eligible_us: u64,
}

/// Per-request span bookkeeping: the open root context plus the stage
/// currently running. Stages are contiguous by construction (each
/// transition closes the previous stage at the instant the next one
/// starts), so per-request attribution sums to the root duration
/// exactly.
#[derive(Debug, Clone)]
struct SpanState {
    ctx: SpanContext,
    stage: &'static str,
    stage_start: u64,
    root_start: u64,
    class: String,
}

/// One formed batch, as recorded for the determinism proptests.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLogEntry {
    /// Batch identifier.
    pub batch_id: u64,
    /// Model the batch ran.
    pub model: String,
    /// Effective execution tier.
    pub tier: Tier,
    /// Member request ids, in dequeue order.
    pub request_ids: Vec<RequestId>,
    /// Clock at formation.
    pub formed_us: u64,
}

/// The clock-explicit serving state machine. See the module docs.
#[derive(Debug)]
pub struct ServeEngine {
    cfg: ServeConfig,
    table: LatencyTable,
    queues: BTreeMap<(String, Tier), VecDeque<Queued>>,
    queued_total: usize,
    queued_work_us: f64,
    shed: Option<ShedController>,
    breakers: BTreeMap<String, CircuitBreaker>,
    retries: VecDeque<RetryEntry>,
    responses: Vec<Response>,
    reg: MetricsRegistry,
    draining: bool,
    next_request_id: RequestId,
    next_batch_id: u64,
    inflight: usize,
    batch_log: Vec<BatchLogEntry>,
    /// Last (model, tier) queue a batch was formed from; the next scan
    /// resumes after it so no model starves behind a lexicographically
    /// earlier one (deterministic round-robin).
    rr_cursor: Option<(String, Tier)>,
    spans: Option<SpanSink>,
    span_states: BTreeMap<RequestId, SpanState>,
    slo_deadline: Option<SloMonitor>,
    slo_shed: Option<SloMonitor>,
    /// Fraction of nominal chip capacity currently in service (1.0 =
    /// full strength). Lowered by the health layer when cores are
    /// quarantined; scales the admission backlog estimate and the shed
    /// controller's occupancy signal.
    capacity_derate: f64,
}

impl ServeEngine {
    /// A fresh engine over a calibrated (or synthetic) latency table.
    pub fn new(cfg: ServeConfig, table: LatencyTable) -> Self {
        let shed = cfg.shed.map(ShedController::new);
        let spans = cfg.record_spans.then(SpanSink::new);
        let slo_deadline = cfg.slo.map(|p| SloMonitor::new("deadline", p.deadline));
        let slo_shed = cfg.slo.map(|p| SloMonitor::new("shed", p.shed));
        Self {
            cfg,
            table,
            queues: BTreeMap::new(),
            queued_total: 0,
            queued_work_us: 0.0,
            shed,
            breakers: BTreeMap::new(),
            retries: VecDeque::new(),
            responses: Vec::new(),
            reg: MetricsRegistry::new(),
            draining: false,
            next_request_id: 0,
            next_batch_id: 0,
            inflight: 0,
            batch_log: Vec::new(),
            rr_cursor: None,
            spans,
            span_states: BTreeMap::new(),
            slo_deadline,
            slo_shed,
            capacity_derate: 1.0,
        }
    }

    /// Derates effective capacity to `factor` of nominal (clamped to
    /// `(0, 1]`). Call when the health layer quarantines or reinstates
    /// cores: with `factor < 1` the admission ETA divides backlog across
    /// proportionally fewer workers (rejecting deadlines the weakened
    /// chip cannot meet) and the shed controller sees proportionally
    /// higher occupancy (its watermarks shift down), so load sheds
    /// *before* the derated chip saturates rather than after.
    pub fn set_capacity_derate(&mut self, factor: f64) {
        self.capacity_derate = if factor > 0.0 { factor.min(1.0) } else { f64::MIN_POSITIVE };
        self.reg.set_gauge("serve.capacity_derate", self.capacity_derate);
    }

    /// The current capacity derate factor (1.0 = full strength).
    pub fn capacity_derate(&self) -> f64 {
        self.capacity_derate
    }

    /// Opens the root span for a freshly submitted request (span
    /// recording only).
    fn span_open(&mut self, req: &Request, now_us: u64) {
        let Some(sink) = &mut self.spans else { return };
        let ctx = sink.open_root(derive_trace_id(self.cfg.span_seed, req.id));
        self.span_states.insert(
            req.id,
            SpanState {
                ctx,
                stage: "admission",
                stage_start: now_us,
                root_start: now_us,
                class: format!("{}/{}", req.model, req.tier.label()),
            },
        );
    }

    /// Closes the request's current stage span at `now_us` and opens
    /// `stage` in its place.
    fn span_stage(&mut self, id: RequestId, stage: &'static str, now_us: u64) {
        if self.spans.is_none() {
            return;
        }
        if let Some(state) = self.span_states.get_mut(&id) {
            let (ctx, prev, start) = (state.ctx, state.stage, state.stage_start);
            state.stage = stage;
            state.stage_start = now_us;
            if let Some(sink) = &mut self.spans {
                sink.child(ctx, prev, start, now_us);
            }
        }
    }

    /// Allocates the next request id (clients building [`Request`]s).
    pub fn allocate_id(&mut self) -> RequestId {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Amortized per-request work estimate: marginal cost plus the fixed
    /// batch cost spread over a full batch. Uncalibrated models get a
    /// conservative constant so they are still servable.
    fn work_estimate(&self, model: &str, tier: Tier) -> f64 {
        match self.table.entry(model, tier.precision()) {
            Some(e) => e.per_item_us + e.base_us / self.cfg.batch_max.max(1) as f64,
            None => 1_000.0,
        }
    }

    /// Submits a request. Returns `true` when enqueued; `false` means a
    /// terminal rejection was already recorded.
    pub fn submit(&mut self, req: Request, now_us: u64) -> bool {
        self.reg.incr(names::SUBMITTED);
        self.span_open(&req, now_us);
        if self.draining {
            self.finish(req, Outcome::Rejected(RejectReason::Shutdown), now_us);
            return false;
        }
        if self.cfg.breaker.is_some() {
            if let Some(b) = self.breakers.get_mut(&req.model) {
                if b.rejects_submissions(now_us) {
                    self.finish(req, Outcome::Rejected(RejectReason::BreakerOpen), now_us);
                    return false;
                }
            }
        }
        if self.queued_total >= self.cfg.queue_cap {
            self.finish(req, Outcome::Rejected(RejectReason::QueueFull), now_us);
            return false;
        }
        let est = self.work_estimate(&req.model, req.tier);
        if self.cfg.admission {
            let own = self
                .table
                .estimate_us(&req.model, req.tier.precision(), 1)
                .unwrap_or(1_000.0);
            let backlog =
                self.queued_work_us / (self.cfg.workers.max(1) as f64 * self.capacity_derate);
            let eta = now_us as f64
                + self.cfg.admission_slack * (backlog + self.cfg.batch_window_us as f64 + own);
            if eta > req.deadline_us as f64 {
                self.finish(req, Outcome::Rejected(RejectReason::DeadlineInfeasible), now_us);
                return false;
            }
        }
        self.queued_total += 1;
        self.queued_work_us += est;
        self.span_stage(req.id, "queue", now_us);
        self.queues
            .entry((req.model.clone(), req.tier))
            .or_default()
            .push_back(Queued { req, est_us: est, enqueued_us: now_us });
        true
    }

    /// Periodic housekeeping: one shed-controller observation and (with
    /// deadline propagation) a sweep dropping expired queued requests.
    /// Call once per scheduling round.
    pub fn tick(&mut self, now_us: u64) {
        let occupancy =
            self.queued_total as f64 / (self.cfg.queue_cap.max(1) as f64 * self.capacity_derate);
        if let Some(s) = &mut self.shed {
            let level = s.observe(occupancy);
            self.reg.set_gauge("serve.shed_level", f64::from(level));
        }
        if self.cfg.deadline_propagation {
            let mut expired = Vec::new();
            for q in self.queues.values_mut() {
                let mut i = 0;
                while i < q.len() {
                    let past = q.get(i).map(|e| e.req.deadline_us < now_us).unwrap_or(false);
                    if past {
                        if let Some(item) = q.remove(i) {
                            expired.push(item);
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            for item in expired {
                self.remove_queued_accounting(&item);
                self.finish(item.req, Outcome::TimedOut(TimeoutStage::Queue), now_us);
            }
        }
    }

    fn remove_queued_accounting(&mut self, item: &Queued) {
        self.queued_total = self.queued_total.saturating_sub(1);
        self.queued_work_us = (self.queued_work_us - item.est_us).max(0.0);
    }

    /// The tier a request executes at under the current shed level.
    fn effective_tier(req: &Request, shed_level: u8) -> Tier {
        match req.qos {
            QosClass::Critical => req.tier,
            QosClass::Standard => req.tier.downgraded_by(shed_level.min(2)),
        }
    }

    /// Pulls the next executable batch, if any is ready: eligible retries
    /// first, then fresh batches round-robin across the (model, tier)
    /// queues — the scan resumes after the last-served queue so a model
    /// early in key order cannot starve the others. The caller executes
    /// the batch and must hand it back via [`Self::complete_batch`].
    pub fn next_batch(&mut self, now_us: u64) -> Option<Batch> {
        if let Some(batch) = self.next_retry(now_us) {
            self.inflight += 1;
            return Some(batch);
        }
        let shed_level = self.shed.as_ref().map(ShedController::level).unwrap_or(0);
        let keys: Vec<(String, Tier)> = self.queues.keys().cloned().collect();
        let start = self
            .rr_cursor
            .as_ref()
            .and_then(|c| keys.iter().position(|k| k > c))
            .unwrap_or(0);
        let keys: Vec<(String, Tier)> =
            keys[start..].iter().chain(keys[..start].iter()).cloned().collect();
        for key in keys {
            let ready = match self.queues.get(&key) {
                Some(q) if !q.is_empty() => {
                    let oldest = q.front().map(|e| e.enqueued_us).unwrap_or(now_us);
                    q.len() >= self.cfg.batch_max
                        || now_us.saturating_sub(oldest) >= self.cfg.batch_window_us
                        || self.draining
                }
                _ => false,
            };
            if !ready {
                continue;
            }
            let probe = match self.admit_dispatch(&key.0, now_us) {
                Admit::Reject => continue,
                Admit::Probe => true,
                Admit::Allow => false,
            };
            if probe {
                self.reg.incr(names::BREAKER_PROBES);
            }
            if let Some(batch) = self.form_batch(&key, shed_level, probe, now_us) {
                self.inflight += 1;
                self.rr_cursor = Some(key);
                return Some(batch);
            }
        }
        None
    }

    fn admit_dispatch(&mut self, model: &str, now_us: u64) -> Admit {
        match &self.cfg.breaker {
            None => Admit::Allow,
            Some(cfg) => self
                .breakers
                .entry(model.to_string())
                .or_insert_with(|| CircuitBreaker::new(*cfg))
                .admit(now_us),
        }
    }

    fn next_retry(&mut self, now_us: u64) -> Option<Batch> {
        // The deque is kept sorted by eligibility, so the front decides.
        while self.retries.front().map(|r| r.eligible_us <= now_us).unwrap_or(false) {
            let entry = self.retries.pop_front()?;
            let mut batch = entry.batch;
            if self.cfg.deadline_propagation {
                let (live, dead): (Vec<Request>, Vec<Request>) =
                    batch.requests.into_iter().partition(|r| r.deadline_us >= now_us);
                batch.requests = live;
                for req in dead {
                    self.finish(req, Outcome::TimedOut(TimeoutStage::Retry), now_us);
                }
            }
            if !batch.requests.is_empty() {
                for id in batch.requests.iter().map(|r| r.id).collect::<Vec<_>>() {
                    self.span_stage(id, "exec", now_us);
                }
                return Some(batch);
            }
        }
        None
    }

    fn form_batch(
        &mut self,
        key: &(String, Tier),
        shed_level: u8,
        probe: bool,
        now_us: u64,
    ) -> Option<Batch> {
        let limit = if probe { 1 } else { self.cfg.batch_max };
        let mut member_items: Vec<Queued> = Vec::new();
        let mut dropped: Vec<(Queued, Outcome)> = Vec::new();
        let mut batch_tier: Option<Tier> = None;
        {
            let q = self.queues.get_mut(key)?;
            while member_items.len() < limit {
                let Some(front) = q.front() else { break };
                let expired =
                    self.cfg.deadline_propagation && front.req.deadline_us < now_us;
                let shed_now = shed_level >= 3
                    && front.req.qos == QosClass::Standard
                    && !expired;
                let eff = Self::effective_tier(&front.req, shed_level);
                if !expired && !shed_now {
                    if let Some(bt) = batch_tier {
                        if eff != bt {
                            break; // tier boundary: next batch picks it up
                        }
                    }
                }
                let Some(item) = q.pop_front() else { break };
                if expired {
                    dropped.push((item, Outcome::TimedOut(TimeoutStage::Queue)));
                } else if shed_now {
                    dropped.push((item, Outcome::Shed));
                } else {
                    batch_tier = Some(eff);
                    member_items.push(item);
                }
            }
        }
        for (item, outcome) in dropped {
            self.remove_queued_accounting(&item);
            self.finish(item.req, outcome, now_us);
        }
        let tier = batch_tier?;
        if member_items.is_empty() {
            return None;
        }
        let mut members: Vec<Request> = Vec::with_capacity(member_items.len());
        for item in member_items {
            self.remove_queued_accounting(&item);
            self.span_stage(item.req.id, "exec", now_us);
            members.push(item.req);
        }
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        self.reg.incr(names::BATCHES);
        if self.cfg.record_batches {
            self.batch_log.push(BatchLogEntry {
                batch_id: id,
                model: key.0.clone(),
                tier,
                request_ids: members.iter().map(|r| r.id).collect(),
                formed_us: now_us,
            });
        }
        Some(Batch { id, model: key.0.clone(), tier, requests: members, attempts: 0, probe })
    }

    /// Hands back an executed batch with its result. Successful members
    /// complete (late ones convert to `TimedOut(Exec)` — never
    /// delivered); failures retry with exponential backoff until
    /// `retry_max`, then reject as `ExecFailed`.
    pub fn complete_batch(
        &mut self,
        mut batch: Batch,
        result: Result<(), SessionError>,
        now_us: u64,
    ) {
        self.inflight = self.inflight.saturating_sub(1);
        match result {
            Ok(()) => {
                if self.cfg.breaker.is_some() {
                    if let Some(b) = self.breakers.get_mut(&batch.model) {
                        if b.on_success() {
                            self.reg.incr(names::BREAKER_CLOSES);
                        }
                    }
                }
                for req in batch.requests {
                    if now_us > req.deadline_us {
                        self.finish(req, Outcome::TimedOut(TimeoutStage::Exec), now_us);
                    } else {
                        let downgraded = batch.tier > req.tier;
                        let latency_us = now_us.saturating_sub(req.submit_us);
                        self.finish(
                            req,
                            Outcome::Completed { tier: batch.tier, latency_us, downgraded },
                            now_us,
                        );
                    }
                }
            }
            Err(_) => {
                if self.cfg.breaker.is_some() {
                    if let Some(b) = self.breakers.get_mut(&batch.model) {
                        if b.on_failure(now_us) {
                            self.reg.incr(names::BREAKER_OPENS);
                        }
                    }
                }
                batch.attempts += 1;
                if batch.attempts <= self.cfg.retry_max {
                    self.reg.incr(names::RETRIES);
                    for id in batch.requests.iter().map(|r| r.id).collect::<Vec<_>>() {
                        self.span_stage(id, "retry_wait", now_us);
                    }
                    let shift = (batch.attempts - 1).min(16);
                    let backoff = self.cfg.retry_backoff_us.saturating_mul(1 << shift);
                    let eligible_us = now_us.saturating_add(backoff);
                    let pos = self
                        .retries
                        .iter()
                        .position(|r| r.eligible_us > eligible_us)
                        .unwrap_or(self.retries.len());
                    self.retries.insert(pos, RetryEntry { batch, eligible_us });
                } else {
                    for req in batch.requests {
                        self.finish(req, Outcome::Rejected(RejectReason::ExecFailed), now_us);
                    }
                }
            }
        }
    }

    /// Begins shutdown: new submissions reject, partial batch windows
    /// flush immediately.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether shutdown drain has begun.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether the engine holds no work (queues, retries, in-flight).
    pub fn idle(&self) -> bool {
        self.queued_total == 0 && self.retries.is_empty() && self.inflight == 0
    }

    /// Time-outs everything still queued or awaiting retry — the drain
    /// window closed at `now_us`. In-flight batches must be completed by
    /// the caller first.
    pub fn abort_remaining(&mut self, now_us: u64) {
        let mut leftovers: Vec<Queued> = Vec::new();
        for (_, mut q) in std::mem::take(&mut self.queues) {
            leftovers.extend(q.drain(..));
        }
        for item in leftovers {
            self.remove_queued_accounting(&item);
            self.finish(item.req, Outcome::TimedOut(TimeoutStage::Drain), now_us);
        }
        for entry in std::mem::take(&mut self.retries) {
            for req in entry.batch.requests {
                self.finish(req, Outcome::TimedOut(TimeoutStage::Drain), now_us);
            }
        }
    }

    /// Feeds the two SLO monitors with the request's terminal outcome.
    /// An alert transition is mirrored into the registry as
    /// `serve.slo.<rule>.alerts` so sweeps and scrapes see it.
    fn slo_observe(&mut self, outcome: &Outcome, now_us: u64) {
        // deadline rule: over post-admission terminal states; shed rule:
        // over all non-shutdown traffic. `None` = outcome not in scope.
        let (deadline_bad, shed_bad): (Option<bool>, Option<bool>) = match outcome {
            Outcome::Completed { .. } => (Some(false), Some(false)),
            Outcome::TimedOut(_) => (Some(true), Some(false)),
            Outcome::Rejected(RejectReason::ExecFailed) => (Some(true), Some(false)),
            Outcome::Shed => (None, Some(true)),
            Outcome::Rejected(
                RejectReason::QueueFull
                | RejectReason::BreakerOpen
                | RejectReason::DeadlineInfeasible,
            ) => (None, Some(true)),
            Outcome::Rejected(RejectReason::Shutdown) => (None, None),
        };
        for (monitor, bad) in [
            (&mut self.slo_deadline, deadline_bad),
            (&mut self.slo_shed, shed_bad),
        ] {
            if let (Some(m), Some(bad)) = (monitor.as_mut(), bad) {
                let before = m.alerts().len();
                m.observe(now_us, bad);
                if m.alerts().len() > before {
                    self.reg.incr(&format!("serve.slo.{}.alerts", m.name()));
                }
            }
        }
    }

    /// The single terminal-outcome accounting path. Every request passes
    /// through here exactly once; the conservation law is a corollary.
    /// `now_us` closes the request's span and timestamps its SLO event —
    /// accounting itself does not read the clock.
    fn finish(&mut self, req: Request, outcome: Outcome, now_us: u64) {
        if self.spans.is_some() {
            if let Some(state) = self.span_states.remove(&req.id) {
                if let Some(sink) = &mut self.spans {
                    sink.child(state.ctx, state.stage, state.stage_start, now_us);
                    sink.close_root(state.ctx, "request", &state.class, state.root_start, now_us);
                }
            }
        }
        self.slo_observe(&outcome, now_us);
        match &outcome {
            Outcome::Completed { latency_us, downgraded, .. } => {
                self.reg.incr(names::COMPLETED);
                if *downgraded {
                    self.reg.incr(names::DOWNGRADED);
                }
                self.reg.observe("serve.latency_us", *latency_us);
                // Self-check: complete_batch converts late completions
                // before calling finish, so this can never fire.
                if req.submit_us.saturating_add(*latency_us) > req.deadline_us {
                    self.reg.incr(names::DEADLINE_VIOLATIONS);
                }
            }
            Outcome::Rejected(reason) => {
                self.reg.incr(names::REJECTED);
                self.reg.incr(match reason {
                    RejectReason::QueueFull => names::REJECTED_QUEUE_FULL,
                    RejectReason::DeadlineInfeasible => names::REJECTED_INFEASIBLE,
                    RejectReason::BreakerOpen => names::REJECTED_BREAKER,
                    RejectReason::ExecFailed => names::REJECTED_EXEC_FAILED,
                    RejectReason::Shutdown => names::REJECTED_SHUTDOWN,
                });
            }
            Outcome::Shed => self.reg.incr(names::SHED),
            Outcome::TimedOut(stage) => {
                self.reg.incr(names::TIMED_OUT);
                self.reg.incr(match stage {
                    TimeoutStage::Queue => names::TIMED_OUT_QUEUE,
                    TimeoutStage::Exec => names::TIMED_OUT_EXEC,
                    TimeoutStage::Retry => names::TIMED_OUT_RETRY,
                    TimeoutStage::Drain => names::TIMED_OUT_DRAIN,
                });
            }
        }
        self.responses.push(Response { id: req.id, model: req.model, outcome });
    }

    /// Snapshot of the canonical serving counters.
    pub fn counters(&self) -> ServeCounters {
        ServeCounters::from_registry(&self.reg)
    }

    /// The full metrics registry (for bench-record merges).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Terminal responses recorded so far (drains the buffer).
    pub fn take_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.responses)
    }

    /// Responses recorded so far, without draining.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Current shed escalation level.
    pub fn shed_level(&self) -> u8 {
        self.shed.as_ref().map(ShedController::level).unwrap_or(0)
    }

    /// Requests currently queued.
    pub fn queued(&self) -> usize {
        self.queued_total
    }

    /// Batches currently dispatched and not yet completed.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// The runtime configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The latency table driving admission estimates.
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// Recorded batch compositions (empty unless
    /// [`ServeConfig::record_batches`]).
    pub fn batch_log(&self) -> &[BatchLogEntry] {
        &self.batch_log
    }

    /// Recorded request spans (empty unless
    /// [`ServeConfig::record_spans`]).
    pub fn spans(&self) -> &[SpanRecord] {
        self.spans.as_ref().map(SpanSink::spans).unwrap_or(&[])
    }

    /// Takes the span sink out of the engine (for merging into a shared
    /// trace), leaving span recording disabled.
    pub fn take_spans(&mut self) -> Option<SpanSink> {
        self.spans.take()
    }

    /// The burn-rate rule outcomes so far (empty when
    /// [`ServeConfig::slo`] is `None`).
    pub fn slo_report(&self) -> SloReport {
        SloReport {
            rules: [&self.slo_deadline, &self.slo_shed]
                .into_iter()
                .flatten()
                .map(SloMonitor::report)
                .collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_arch::precision::Precision;
    use rapid_model::LatencyEntry;

    /// Synthetic table: one model, 100us base + 50us/item at FP16, with
    /// each lower tier 2x faster.
    fn table() -> LatencyTable {
        let mut entries = Vec::new();
        for (i, p) in [Precision::Fp16, Precision::Hfp8, Precision::Int4].iter().enumerate() {
            let scale = 1.0 / (1 << i) as f64;
            entries.push((
                ("m".to_string(), *p),
                LatencyEntry { base_us: 100.0 * scale, per_item_us: 50.0 * scale },
            ));
        }
        LatencyTable::from_entries(entries)
    }

    fn req(engine: &mut ServeEngine, now: u64, deadline: u64) -> Request {
        let id = engine.allocate_id();
        Request {
            id,
            model: "m".to_string(),
            tier: Tier::Fp16,
            qos: QosClass::Standard,
            submit_us: now,
            deadline_us: deadline,
        }
    }

    #[test]
    fn completes_within_deadline_and_conserves() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 10_000);
        assert!(e.submit(r, 0));
        // window not yet expired, nothing ready
        assert!(e.next_batch(100).is_none());
        let batch = e.next_batch(2_100).expect("window expired");
        assert_eq!(batch.requests.len(), 1);
        e.complete_batch(batch, Ok(()), 2_400);
        let c = e.counters();
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
        assert_eq!(c.deadline_violations, 0);
        assert!(matches!(
            e.responses()[0].outcome,
            Outcome::Completed { latency_us: 2_400, downgraded: false, .. }
        ));
    }

    #[test]
    fn late_completion_converts_to_exec_timeout() {
        let mut e = ServeEngine::new(ServeConfig::naive(), table());
        let r = req(&mut e, 0, 1_000);
        assert!(e.submit(r, 0));
        let batch = e.next_batch(2_100).expect("ready");
        e.complete_batch(batch, Ok(()), 5_000); // way past deadline
        let c = e.counters();
        assert_eq!(c.completed, 0);
        assert_eq!(c.timed_out, 1);
        assert_eq!(c.deadline_violations, 0);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn admission_rejects_infeasible_deadlines() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 50); // deadline < batch1 service time (150us)
        assert!(!e.submit(r, 0));
        let c = e.counters();
        assert_eq!(c.rejected, 1);
        assert_eq!(e.registry().counter(names::REJECTED_INFEASIBLE), 1);
    }

    #[test]
    fn capacity_derate_shifts_admission_and_shed_watermarks() {
        // Backlog the engine, then compare a tight-deadline admission at
        // full strength vs derated to half capacity: the same request is
        // feasible at 1.0 and infeasible at 0.5 because the ETA divides
        // the backlog across proportionally fewer workers.
        let feasible_when = |derate: f64| {
            let mut e = ServeEngine::new(ServeConfig::default(), table());
            e.set_capacity_derate(derate);
            for _ in 0..64 {
                let r = req(&mut e, 0, 1_000_000);
                e.submit(r, 0);
            }
            let probe = req(&mut e, 0, 4_000);
            e.submit(probe, 0)
        };
        assert!(feasible_when(1.0), "full-strength chip admits the probe");
        assert!(!feasible_when(0.5), "derated chip must reject it");
        // The shed controller sees occupancy scaled by the derate: the
        // same queue depth that is calm at full strength escalates the
        // shed level once half the capacity is quarantined.
        let shed_level_when = |derate: f64| {
            let cfg = ServeConfig { queue_cap: 16, admission: false, ..ServeConfig::default() };
            let mut e = ServeEngine::new(cfg, table());
            e.set_capacity_derate(derate);
            for _ in 0..8 {
                let r = req(&mut e, 0, 1_000_000);
                e.submit(r, 0);
            }
            for t in 0..20 {
                e.tick(t * 100);
            }
            e.registry().gauge("serve.shed_level").unwrap_or(0.0)
        };
        assert!(
            shed_level_when(0.5) > shed_level_when(1.0),
            "derating must raise the shed level at equal queue depth"
        );
        // Reinstatement restores the factor (and clamps bad inputs).
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        e.set_capacity_derate(0.75);
        assert!((e.capacity_derate() - 0.75).abs() < 1e-12);
        e.set_capacity_derate(1.0);
        assert!((e.capacity_derate() - 1.0).abs() < 1e-12);
        e.set_capacity_derate(7.0);
        assert!((e.capacity_derate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_full_backpressure_rejects() {
        let cfg = ServeConfig { queue_cap: 2, admission: false, ..ServeConfig::default() };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..2 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let r = req(&mut e, 0, 1_000_000);
        assert!(!e.submit(r, 0));
        assert_eq!(e.registry().counter(names::REJECTED_QUEUE_FULL), 1);
    }

    #[test]
    fn deadline_propagation_drops_expired_in_queue() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 3_000); // feasible at submit time
        assert!(e.submit(r, 0));
        e.tick(4_000); // past the deadline
        let c = e.counters();
        assert_eq!(c.timed_out, 1);
        assert_eq!(e.registry().counter(names::TIMED_OUT_QUEUE), 1);
        assert_eq!(e.queued(), 0);
        assert!(e.next_batch(10_000).is_none());
    }

    #[test]
    fn failed_batches_retry_then_reject() {
        let cfg = ServeConfig {
            retry_max: 1,
            retry_backoff_us: 100,
            breaker: None,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 1_000_000);
        assert!(e.submit(r, 0));
        let b = e.next_batch(2_100).expect("ready");
        e.complete_batch(b, Err(SessionError::Transient), 2_200);
        assert!(e.next_batch(2_250).is_none()); // backoff not elapsed
        let b = e.next_batch(2_300).expect("retry eligible");
        assert_eq!(b.attempts, 1);
        e.complete_batch(b, Err(SessionError::Transient), 2_400);
        let c = e.counters();
        assert_eq!(c.retries, 1);
        assert_eq!(e.registry().counter(names::REJECTED_EXEC_FAILED), 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn breaker_opens_then_probes_then_closes() {
        let cfg = ServeConfig {
            retry_max: 0,
            breaker: Some(BreakerConfig { open_after: 2, cooldown_us: 1_000 }),
            batch_window_us: 0,
            admission: false,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for t in 0..2u64 {
            let r = req(&mut e, t * 10, 1_000_000);
            assert!(e.submit(r, t * 10));
            let b = e.next_batch(t * 10 + 1).expect("ready");
            e.complete_batch(b, Err(SessionError::Transient), t * 10 + 2);
        }
        assert_eq!(e.counters().breaker_opens, 1);
        // While open: submissions reject.
        let r = req(&mut e, 100, 1_000_000);
        assert!(!e.submit(r, 100));
        assert_eq!(e.registry().counter(names::REJECTED_BREAKER), 1);
        // After cooldown: probe admitted, success closes.
        let r = req(&mut e, 2_000, 1_000_000);
        assert!(e.submit(r, 2_000));
        let b = e.next_batch(2_001).expect("probe");
        assert!(b.probe);
        e.complete_batch(b, Ok(()), 2_010);
        assert_eq!(e.registry().counter(names::BREAKER_CLOSES), 1);
        assert_eq!(e.counters().lost(), 0);
    }

    #[test]
    fn shed_levels_downgrade_then_drop_standard_only() {
        let cfg = ServeConfig {
            queue_cap: 10,
            admission: false,
            batch_window_us: 0,
            shed: Some(ShedConfig { hi: 0.1, lo: 0.05, up_ticks: 1, down_ticks: 100, max_level: 3 }),
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        // Fill the queue, tick until level 3.
        for i in 0..8u64 {
            let id = e.allocate_id();
            let qos = if i == 0 { QosClass::Critical } else { QosClass::Standard };
            let r = Request {
                id,
                model: "m".to_string(),
                tier: Tier::Fp16,
                qos,
                submit_us: 0,
                deadline_us: 1_000_000,
            };
            assert!(e.submit(r, 0));
        }
        for _ in 0..3 {
            e.tick(1);
        }
        assert_eq!(e.shed_level(), 3);
        // Critical request survives at its tier; standards are shed.
        let b = e.next_batch(2).expect("critical batch");
        assert_eq!(b.tier, Tier::Fp16);
        assert_eq!(b.requests.len(), 1);
        e.complete_batch(b, Ok(()), 3);
        assert!(e.next_batch(4).is_none());
        let c = e.counters();
        assert_eq!(c.shed, 7);
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn shed_level_below_three_downgrades_tier() {
        let cfg = ServeConfig {
            queue_cap: 10,
            admission: false,
            batch_window_us: 0,
            shed: Some(ShedConfig { hi: 0.1, lo: 0.05, up_ticks: 1, down_ticks: 100, max_level: 1 }),
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..4 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        e.tick(1);
        assert_eq!(e.shed_level(), 1);
        let b = e.next_batch(2).expect("batch");
        assert_eq!(b.tier, Tier::Hfp8); // downgraded one step
        e.complete_batch(b, Ok(()), 3);
        let c = e.counters();
        assert_eq!(c.completed, 4);
        assert_eq!(c.downgraded, 4);
    }

    #[test]
    fn drain_rejects_new_flushes_old_and_aborts_leftovers() {
        let cfg = ServeConfig { admission: false, ..ServeConfig::default() };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 1_000_000);
        assert!(e.submit(r, 0));
        e.drain();
        let r = req(&mut e, 1, 1_000_000);
        assert!(!e.submit(r, 1));
        assert_eq!(e.registry().counter(names::REJECTED_SHUTDOWN), 1);
        // Draining flushes the partial window immediately.
        let b = e.next_batch(2).expect("flush");
        e.complete_batch(b, Ok(()), 3);
        // A leftover that never got dispatched is aborted.
        assert!(e.idle());
        let c = e.counters();
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn abort_remaining_accounts_queued_and_retrying() {
        let cfg = ServeConfig {
            admission: false,
            breaker: None,
            retry_max: 5,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..3 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let b = e.next_batch(2_100).expect("batch");
        e.complete_batch(b, Err(SessionError::Transient), 2_200); // → retry queue
        e.abort_remaining(2_300);
        let c = e.counters();
        assert_eq!(c.lost(), 0);
        assert_eq!(e.registry().counter(names::TIMED_OUT_DRAIN), 3);
        assert!(e.idle());
    }

    #[test]
    fn spans_cover_the_request_lifecycle_exactly() {
        use rapid_telemetry::span::{critical_path, validate_forest};
        let cfg = ServeConfig {
            record_spans: true,
            retry_max: 1,
            retry_backoff_us: 100,
            breaker: None,
            admission: false,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 1_000_000);
        assert!(e.submit(r, 0));
        let b = e.next_batch(2_100).expect("ready");
        e.complete_batch(b, Err(SessionError::Transient), 2_200);
        let b = e.next_batch(2_300).expect("retry");
        e.complete_batch(b, Ok(()), 2_500);
        let spans = e.spans();
        validate_forest(spans).expect("well-nested");
        // Stages: admission, queue, exec, retry_wait, exec + 1 root.
        assert_eq!(spans.len(), 6);
        let root = spans.iter().find(|s| s.parent_id == 0).expect("root");
        assert_eq!(root.name, "request");
        assert_eq!(root.class, "m/fp16");
        assert_eq!((root.start, root.end), (0, 2_500));
        let cp = critical_path(spans);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp[0].attributed(), cp[0].total);
        assert_eq!(cp[0].unattributed, 0);
        // Queue wait (0 → 2100) dominates; exec contributed 100 + 200.
        assert_eq!(cp[0].dominant().map(|(n, _)| n), Some("queue"));
        let exec = cp[0].stages.iter().find(|(n, _)| *n == "exec").map(|(_, d)| *d);
        assert_eq!(exec, Some(300));
        let retry = cp[0].stages.iter().find(|(n, _)| *n == "retry_wait").map(|(_, d)| *d);
        assert_eq!(retry, Some(100));
    }

    #[test]
    fn spans_off_means_no_span_storage() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 10_000);
        assert!(e.submit(r, 0));
        let b = e.next_batch(2_100).expect("ready");
        e.complete_batch(b, Ok(()), 2_400);
        assert!(e.spans().is_empty());
        assert!(e.take_spans().is_none());
    }

    #[test]
    fn slo_monitors_fire_on_sustained_exec_failures_only() {
        use rapid_telemetry::slo::SloConfig;
        let slo = SloPolicy {
            deadline: SloConfig { min_events: 8, ..SloConfig::deadline_default() },
            shed: SloConfig::shed_default(),
        };
        let cfg = ServeConfig {
            retry_max: 0,
            breaker: None,
            admission: false,
            batch_window_us: 0,
            slo: Some(slo),
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        // Sustained failures: every batch errors until retries exhaust.
        for i in 0..64u64 {
            let now = i * 200;
            let r = req(&mut e, now, now + 1_000_000);
            assert!(e.submit(r, now));
            let b = e.next_batch(now + 1).expect("ready");
            e.complete_batch(b, Err(SessionError::Transient), now + 2);
        }
        let report = e.slo_report();
        let deadline = report.rule("deadline").expect("deadline rule");
        assert!(!deadline.alerts.is_empty(), "100% failure must burn the budget");
        assert_eq!(deadline.bad, 64);
        assert_eq!(
            e.registry().counter("serve.slo.deadline.alerts"),
            deadline.alerts.len() as u64
        );
        // The shed rule saw only good traffic.
        let shed = report.rule("shed").expect("shed rule");
        assert!(shed.alerts.is_empty());
        assert_eq!(shed.bad, 0);
    }

    #[test]
    fn slo_none_disables_monitoring() {
        let cfg = ServeConfig { slo: None, ..ServeConfig::default() };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 10_000);
        assert!(e.submit(r, 0));
        assert!(e.slo_report().rules.is_empty());
    }

    #[test]
    fn batch_log_records_composition_when_enabled() {
        let cfg = ServeConfig {
            record_batches: true,
            admission: false,
            batch_window_us: 0,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..2 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let b = e.next_batch(1).expect("batch");
        e.complete_batch(b, Ok(()), 2);
        assert_eq!(e.batch_log().len(), 1);
        assert_eq!(e.batch_log()[0].request_ids, vec![0, 1]);
    }
}
