//! The deterministic serving engine: bounded queue → admission control →
//! continuous batcher → execution accounting, over an explicit
//! microsecond clock.
//!
//! The engine owns **no threads and no clock**. Every method takes
//! `now_us`; the virtual-time sweep driver advances it event-by-event
//! (bit-reproducible chaos tests), while the threaded [`Server`] feeds it
//! wall-clock micros under a mutex. Both therefore run the *same* state
//! machines — the chaos results transfer.
//!
//! Robustness invariants, enforced by construction:
//!
//! - **Conservation**: every submitted request flows through the single
//!   [`ServeEngine::finish`] path exactly once —
//!   `completed + rejected + shed + timed_out == submitted` after drain.
//! - **No late deliveries**: a completion past its deadline is converted
//!   to `TimedOut(Exec)` before it reaches the client, unconditionally.
//!   `serve.deadline_violations` counts any escape and must stay 0.
//! - **Deadline propagation**: with [`ServeConfig::deadline_propagation`]
//!   on, expired requests are dropped at every stage boundary (queue
//!   scan, batch formation, retry dispatch) instead of being executed.
//!
//! [`Server`]: crate::server::Server

use std::collections::{BTreeMap, VecDeque};

use rapid_model::LatencyTable;
use rapid_telemetry::serve as names;
use rapid_telemetry::{MetricsRegistry, ServeCounters};

use crate::breaker::{Admit, BreakerConfig, CircuitBreaker};
use crate::request::{
    Batch, Outcome, QosClass, RejectReason, Request, RequestId, Response, Tier, TimeoutStage,
};
use crate::session::SessionError;
use crate::shed::{ShedConfig, ShedController};

/// Serving-runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded request-queue capacity (total across models and tiers).
    pub queue_cap: usize,
    /// Maximum requests per formed batch.
    pub batch_max: usize,
    /// Microseconds a partial batch waits for more members.
    pub batch_window_us: u64,
    /// Whether the admission controller rejects infeasible deadlines.
    pub admission: bool,
    /// Safety factor on the admission latency estimate (≥ 1.0 rejects
    /// earlier).
    pub admission_slack: f64,
    /// Whether expired requests are dropped at stage boundaries.
    pub deadline_propagation: bool,
    /// Overload shedding controller; `None` disables downgrades and
    /// shedding entirely.
    pub shed: Option<ShedConfig>,
    /// Per-model circuit breaker; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Maximum retry attempts per batch after a failed execution.
    pub retry_max: u32,
    /// Base retry backoff, microseconds (doubles per attempt).
    pub retry_backoff_us: u64,
    /// Parallel executors the admission estimate divides backlog across.
    pub workers: usize,
    /// Microseconds the shutdown drain waits before aborting leftovers.
    pub drain_timeout_us: u64,
    /// Record batch compositions for determinism tests.
    pub record_batches: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_cap: 256,
            batch_max: 8,
            batch_window_us: 2_000,
            admission: true,
            admission_slack: 1.2,
            deadline_propagation: true,
            shed: Some(ShedConfig::default()),
            breaker: Some(BreakerConfig::default()),
            retry_max: 2,
            retry_backoff_us: 500,
            workers: 4,
            drain_timeout_us: 200_000,
            record_batches: false,
        }
    }
}

impl ServeConfig {
    /// The full overload-hardened stack (all defenses on).
    pub fn hardened() -> Self {
        Self::default()
    }

    /// Admission control and deadline propagation, but no precision
    /// shedding — the middle rung of the E21 overload experiment.
    pub fn admission_only() -> Self {
        Self { shed: None, ..Self::default() }
    }

    /// No admission, no deadline propagation, no shedding, no breaker:
    /// workers happily execute stale work. The collapse baseline. (Late
    /// completions are still never *delivered* — they convert to
    /// timeouts — so even this config cannot violate a deadline.)
    pub fn naive() -> Self {
        Self {
            admission: false,
            deadline_propagation: false,
            shed: None,
            breaker: None,
            ..Self::default()
        }
    }
}

/// A queued request plus its cached admission-time work estimate.
#[derive(Debug, Clone)]
struct Queued {
    req: Request,
    est_us: f64,
    enqueued_us: u64,
}

/// A failed batch waiting out its retry backoff.
#[derive(Debug, Clone)]
struct RetryEntry {
    batch: Batch,
    eligible_us: u64,
}

/// One formed batch, as recorded for the determinism proptests.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLogEntry {
    /// Batch identifier.
    pub batch_id: u64,
    /// Model the batch ran.
    pub model: String,
    /// Effective execution tier.
    pub tier: Tier,
    /// Member request ids, in dequeue order.
    pub request_ids: Vec<RequestId>,
    /// Clock at formation.
    pub formed_us: u64,
}

/// The clock-explicit serving state machine. See the module docs.
#[derive(Debug)]
pub struct ServeEngine {
    cfg: ServeConfig,
    table: LatencyTable,
    queues: BTreeMap<(String, Tier), VecDeque<Queued>>,
    queued_total: usize,
    queued_work_us: f64,
    shed: Option<ShedController>,
    breakers: BTreeMap<String, CircuitBreaker>,
    retries: VecDeque<RetryEntry>,
    responses: Vec<Response>,
    reg: MetricsRegistry,
    draining: bool,
    next_request_id: RequestId,
    next_batch_id: u64,
    inflight: usize,
    batch_log: Vec<BatchLogEntry>,
    /// Last (model, tier) queue a batch was formed from; the next scan
    /// resumes after it so no model starves behind a lexicographically
    /// earlier one (deterministic round-robin).
    rr_cursor: Option<(String, Tier)>,
}

impl ServeEngine {
    /// A fresh engine over a calibrated (or synthetic) latency table.
    pub fn new(cfg: ServeConfig, table: LatencyTable) -> Self {
        let shed = cfg.shed.map(ShedController::new);
        Self {
            cfg,
            table,
            queues: BTreeMap::new(),
            queued_total: 0,
            queued_work_us: 0.0,
            shed,
            breakers: BTreeMap::new(),
            retries: VecDeque::new(),
            responses: Vec::new(),
            reg: MetricsRegistry::new(),
            draining: false,
            next_request_id: 0,
            next_batch_id: 0,
            inflight: 0,
            batch_log: Vec::new(),
            rr_cursor: None,
        }
    }

    /// Allocates the next request id (clients building [`Request`]s).
    pub fn allocate_id(&mut self) -> RequestId {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Amortized per-request work estimate: marginal cost plus the fixed
    /// batch cost spread over a full batch. Uncalibrated models get a
    /// conservative constant so they are still servable.
    fn work_estimate(&self, model: &str, tier: Tier) -> f64 {
        match self.table.entry(model, tier.precision()) {
            Some(e) => e.per_item_us + e.base_us / self.cfg.batch_max.max(1) as f64,
            None => 1_000.0,
        }
    }

    /// Submits a request. Returns `true` when enqueued; `false` means a
    /// terminal rejection was already recorded.
    pub fn submit(&mut self, req: Request, now_us: u64) -> bool {
        self.reg.incr(names::SUBMITTED);
        if self.draining {
            self.finish(req, Outcome::Rejected(RejectReason::Shutdown));
            return false;
        }
        if self.cfg.breaker.is_some() {
            if let Some(b) = self.breakers.get_mut(&req.model) {
                if b.rejects_submissions(now_us) {
                    self.finish(req, Outcome::Rejected(RejectReason::BreakerOpen));
                    return false;
                }
            }
        }
        if self.queued_total >= self.cfg.queue_cap {
            self.finish(req, Outcome::Rejected(RejectReason::QueueFull));
            return false;
        }
        let est = self.work_estimate(&req.model, req.tier);
        if self.cfg.admission {
            let own = self
                .table
                .estimate_us(&req.model, req.tier.precision(), 1)
                .unwrap_or(1_000.0);
            let backlog = self.queued_work_us / self.cfg.workers.max(1) as f64;
            let eta = now_us as f64
                + self.cfg.admission_slack * (backlog + self.cfg.batch_window_us as f64 + own);
            if eta > req.deadline_us as f64 {
                self.finish(req, Outcome::Rejected(RejectReason::DeadlineInfeasible));
                return false;
            }
        }
        self.queued_total += 1;
        self.queued_work_us += est;
        self.queues
            .entry((req.model.clone(), req.tier))
            .or_default()
            .push_back(Queued { req, est_us: est, enqueued_us: now_us });
        true
    }

    /// Periodic housekeeping: one shed-controller observation and (with
    /// deadline propagation) a sweep dropping expired queued requests.
    /// Call once per scheduling round.
    pub fn tick(&mut self, now_us: u64) {
        let occupancy = self.queued_total as f64 / self.cfg.queue_cap.max(1) as f64;
        if let Some(s) = &mut self.shed {
            let level = s.observe(occupancy);
            self.reg.set_gauge("serve.shed_level", f64::from(level));
        }
        if self.cfg.deadline_propagation {
            let mut expired = Vec::new();
            for q in self.queues.values_mut() {
                let mut i = 0;
                while i < q.len() {
                    let past = q.get(i).map(|e| e.req.deadline_us < now_us).unwrap_or(false);
                    if past {
                        if let Some(item) = q.remove(i) {
                            expired.push(item);
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            for item in expired {
                self.remove_queued_accounting(&item);
                self.finish(item.req, Outcome::TimedOut(TimeoutStage::Queue));
            }
        }
    }

    fn remove_queued_accounting(&mut self, item: &Queued) {
        self.queued_total = self.queued_total.saturating_sub(1);
        self.queued_work_us = (self.queued_work_us - item.est_us).max(0.0);
    }

    /// The tier a request executes at under the current shed level.
    fn effective_tier(req: &Request, shed_level: u8) -> Tier {
        match req.qos {
            QosClass::Critical => req.tier,
            QosClass::Standard => req.tier.downgraded_by(shed_level.min(2)),
        }
    }

    /// Pulls the next executable batch, if any is ready: eligible retries
    /// first, then fresh batches round-robin across the (model, tier)
    /// queues — the scan resumes after the last-served queue so a model
    /// early in key order cannot starve the others. The caller executes
    /// the batch and must hand it back via [`Self::complete_batch`].
    pub fn next_batch(&mut self, now_us: u64) -> Option<Batch> {
        if let Some(batch) = self.next_retry(now_us) {
            self.inflight += 1;
            return Some(batch);
        }
        let shed_level = self.shed.as_ref().map(ShedController::level).unwrap_or(0);
        let keys: Vec<(String, Tier)> = self.queues.keys().cloned().collect();
        let start = self
            .rr_cursor
            .as_ref()
            .and_then(|c| keys.iter().position(|k| k > c))
            .unwrap_or(0);
        let keys: Vec<(String, Tier)> =
            keys[start..].iter().chain(keys[..start].iter()).cloned().collect();
        for key in keys {
            let ready = match self.queues.get(&key) {
                Some(q) if !q.is_empty() => {
                    let oldest = q.front().map(|e| e.enqueued_us).unwrap_or(now_us);
                    q.len() >= self.cfg.batch_max
                        || now_us.saturating_sub(oldest) >= self.cfg.batch_window_us
                        || self.draining
                }
                _ => false,
            };
            if !ready {
                continue;
            }
            let probe = match self.admit_dispatch(&key.0, now_us) {
                Admit::Reject => continue,
                Admit::Probe => true,
                Admit::Allow => false,
            };
            if probe {
                self.reg.incr(names::BREAKER_PROBES);
            }
            if let Some(batch) = self.form_batch(&key, shed_level, probe, now_us) {
                self.inflight += 1;
                self.rr_cursor = Some(key);
                return Some(batch);
            }
        }
        None
    }

    fn admit_dispatch(&mut self, model: &str, now_us: u64) -> Admit {
        match &self.cfg.breaker {
            None => Admit::Allow,
            Some(cfg) => self
                .breakers
                .entry(model.to_string())
                .or_insert_with(|| CircuitBreaker::new(*cfg))
                .admit(now_us),
        }
    }

    fn next_retry(&mut self, now_us: u64) -> Option<Batch> {
        // The deque is kept sorted by eligibility, so the front decides.
        while self.retries.front().map(|r| r.eligible_us <= now_us).unwrap_or(false) {
            let entry = self.retries.pop_front()?;
            let mut batch = entry.batch;
            if self.cfg.deadline_propagation {
                let (live, dead): (Vec<Request>, Vec<Request>) =
                    batch.requests.into_iter().partition(|r| r.deadline_us >= now_us);
                batch.requests = live;
                for req in dead {
                    self.finish(req, Outcome::TimedOut(TimeoutStage::Retry));
                }
            }
            if !batch.requests.is_empty() {
                return Some(batch);
            }
        }
        None
    }

    fn form_batch(
        &mut self,
        key: &(String, Tier),
        shed_level: u8,
        probe: bool,
        now_us: u64,
    ) -> Option<Batch> {
        let limit = if probe { 1 } else { self.cfg.batch_max };
        let mut member_items: Vec<Queued> = Vec::new();
        let mut dropped: Vec<(Queued, Outcome)> = Vec::new();
        let mut batch_tier: Option<Tier> = None;
        {
            let q = self.queues.get_mut(key)?;
            while member_items.len() < limit {
                let Some(front) = q.front() else { break };
                let expired =
                    self.cfg.deadline_propagation && front.req.deadline_us < now_us;
                let shed_now = shed_level >= 3
                    && front.req.qos == QosClass::Standard
                    && !expired;
                let eff = Self::effective_tier(&front.req, shed_level);
                if !expired && !shed_now {
                    if let Some(bt) = batch_tier {
                        if eff != bt {
                            break; // tier boundary: next batch picks it up
                        }
                    }
                }
                let Some(item) = q.pop_front() else { break };
                if expired {
                    dropped.push((item, Outcome::TimedOut(TimeoutStage::Queue)));
                } else if shed_now {
                    dropped.push((item, Outcome::Shed));
                } else {
                    batch_tier = Some(eff);
                    member_items.push(item);
                }
            }
        }
        for (item, outcome) in dropped {
            self.remove_queued_accounting(&item);
            self.finish(item.req, outcome);
        }
        let tier = batch_tier?;
        if member_items.is_empty() {
            return None;
        }
        let mut members: Vec<Request> = Vec::with_capacity(member_items.len());
        for item in member_items {
            self.remove_queued_accounting(&item);
            members.push(item.req);
        }
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        self.reg.incr(names::BATCHES);
        if self.cfg.record_batches {
            self.batch_log.push(BatchLogEntry {
                batch_id: id,
                model: key.0.clone(),
                tier,
                request_ids: members.iter().map(|r| r.id).collect(),
                formed_us: now_us,
            });
        }
        Some(Batch { id, model: key.0.clone(), tier, requests: members, attempts: 0, probe })
    }

    /// Hands back an executed batch with its result. Successful members
    /// complete (late ones convert to `TimedOut(Exec)` — never
    /// delivered); failures retry with exponential backoff until
    /// `retry_max`, then reject as `ExecFailed`.
    pub fn complete_batch(
        &mut self,
        mut batch: Batch,
        result: Result<(), SessionError>,
        now_us: u64,
    ) {
        self.inflight = self.inflight.saturating_sub(1);
        match result {
            Ok(()) => {
                if self.cfg.breaker.is_some() {
                    if let Some(b) = self.breakers.get_mut(&batch.model) {
                        if b.on_success() {
                            self.reg.incr(names::BREAKER_CLOSES);
                        }
                    }
                }
                for req in batch.requests {
                    if now_us > req.deadline_us {
                        self.finish(req, Outcome::TimedOut(TimeoutStage::Exec));
                    } else {
                        let downgraded = batch.tier > req.tier;
                        let latency_us = now_us.saturating_sub(req.submit_us);
                        self.finish(
                            req,
                            Outcome::Completed { tier: batch.tier, latency_us, downgraded },
                        );
                    }
                }
            }
            Err(_) => {
                if self.cfg.breaker.is_some() {
                    if let Some(b) = self.breakers.get_mut(&batch.model) {
                        if b.on_failure(now_us) {
                            self.reg.incr(names::BREAKER_OPENS);
                        }
                    }
                }
                batch.attempts += 1;
                if batch.attempts <= self.cfg.retry_max {
                    self.reg.incr(names::RETRIES);
                    let shift = (batch.attempts - 1).min(16);
                    let backoff = self.cfg.retry_backoff_us.saturating_mul(1 << shift);
                    let eligible_us = now_us.saturating_add(backoff);
                    let pos = self
                        .retries
                        .iter()
                        .position(|r| r.eligible_us > eligible_us)
                        .unwrap_or(self.retries.len());
                    self.retries.insert(pos, RetryEntry { batch, eligible_us });
                } else {
                    for req in batch.requests {
                        self.finish(req, Outcome::Rejected(RejectReason::ExecFailed));
                    }
                }
            }
        }
    }

    /// Begins shutdown: new submissions reject, partial batch windows
    /// flush immediately.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether shutdown drain has begun.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether the engine holds no work (queues, retries, in-flight).
    pub fn idle(&self) -> bool {
        self.queued_total == 0 && self.retries.is_empty() && self.inflight == 0
    }

    /// Time-outs everything still queued or awaiting retry — the drain
    /// window closed. In-flight batches must be completed by the caller
    /// first.
    pub fn abort_remaining(&mut self) {
        let mut leftovers: Vec<Queued> = Vec::new();
        for (_, mut q) in std::mem::take(&mut self.queues) {
            leftovers.extend(q.drain(..));
        }
        for item in leftovers {
            self.remove_queued_accounting(&item);
            self.finish(item.req, Outcome::TimedOut(TimeoutStage::Drain));
        }
        for entry in std::mem::take(&mut self.retries) {
            for req in entry.batch.requests {
                self.finish(req, Outcome::TimedOut(TimeoutStage::Drain));
            }
        }
    }

    /// The single terminal-outcome accounting path. Every request passes
    /// through here exactly once; the conservation law is a corollary.
    fn finish(&mut self, req: Request, outcome: Outcome) {
        match &outcome {
            Outcome::Completed { latency_us, downgraded, .. } => {
                self.reg.incr(names::COMPLETED);
                if *downgraded {
                    self.reg.incr(names::DOWNGRADED);
                }
                self.reg.observe("serve.latency_us", *latency_us);
                // Self-check: complete_batch converts late completions
                // before calling finish, so this can never fire.
                if req.submit_us.saturating_add(*latency_us) > req.deadline_us {
                    self.reg.incr(names::DEADLINE_VIOLATIONS);
                }
            }
            Outcome::Rejected(reason) => {
                self.reg.incr(names::REJECTED);
                self.reg.incr(match reason {
                    RejectReason::QueueFull => names::REJECTED_QUEUE_FULL,
                    RejectReason::DeadlineInfeasible => names::REJECTED_INFEASIBLE,
                    RejectReason::BreakerOpen => names::REJECTED_BREAKER,
                    RejectReason::ExecFailed => names::REJECTED_EXEC_FAILED,
                    RejectReason::Shutdown => names::REJECTED_SHUTDOWN,
                });
            }
            Outcome::Shed => self.reg.incr(names::SHED),
            Outcome::TimedOut(stage) => {
                self.reg.incr(names::TIMED_OUT);
                self.reg.incr(match stage {
                    TimeoutStage::Queue => names::TIMED_OUT_QUEUE,
                    TimeoutStage::Exec => names::TIMED_OUT_EXEC,
                    TimeoutStage::Retry => names::TIMED_OUT_RETRY,
                    TimeoutStage::Drain => names::TIMED_OUT_DRAIN,
                });
            }
        }
        self.responses.push(Response { id: req.id, model: req.model, outcome });
    }

    /// Snapshot of the canonical serving counters.
    pub fn counters(&self) -> ServeCounters {
        ServeCounters::from_registry(&self.reg)
    }

    /// The full metrics registry (for bench-record merges).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Terminal responses recorded so far (drains the buffer).
    pub fn take_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.responses)
    }

    /// Responses recorded so far, without draining.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Current shed escalation level.
    pub fn shed_level(&self) -> u8 {
        self.shed.as_ref().map(ShedController::level).unwrap_or(0)
    }

    /// Requests currently queued.
    pub fn queued(&self) -> usize {
        self.queued_total
    }

    /// Batches currently dispatched and not yet completed.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// The runtime configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The latency table driving admission estimates.
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// Recorded batch compositions (empty unless
    /// [`ServeConfig::record_batches`]).
    pub fn batch_log(&self) -> &[BatchLogEntry] {
        &self.batch_log
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_arch::precision::Precision;
    use rapid_model::LatencyEntry;

    /// Synthetic table: one model, 100us base + 50us/item at FP16, with
    /// each lower tier 2x faster.
    fn table() -> LatencyTable {
        let mut entries = Vec::new();
        for (i, p) in [Precision::Fp16, Precision::Hfp8, Precision::Int4].iter().enumerate() {
            let scale = 1.0 / (1 << i) as f64;
            entries.push((
                ("m".to_string(), *p),
                LatencyEntry { base_us: 100.0 * scale, per_item_us: 50.0 * scale },
            ));
        }
        LatencyTable::from_entries(entries)
    }

    fn req(engine: &mut ServeEngine, now: u64, deadline: u64) -> Request {
        let id = engine.allocate_id();
        Request {
            id,
            model: "m".to_string(),
            tier: Tier::Fp16,
            qos: QosClass::Standard,
            submit_us: now,
            deadline_us: deadline,
        }
    }

    #[test]
    fn completes_within_deadline_and_conserves() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 10_000);
        assert!(e.submit(r, 0));
        // window not yet expired, nothing ready
        assert!(e.next_batch(100).is_none());
        let batch = e.next_batch(2_100).expect("window expired");
        assert_eq!(batch.requests.len(), 1);
        e.complete_batch(batch, Ok(()), 2_400);
        let c = e.counters();
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
        assert_eq!(c.deadline_violations, 0);
        assert!(matches!(
            e.responses()[0].outcome,
            Outcome::Completed { latency_us: 2_400, downgraded: false, .. }
        ));
    }

    #[test]
    fn late_completion_converts_to_exec_timeout() {
        let mut e = ServeEngine::new(ServeConfig::naive(), table());
        let r = req(&mut e, 0, 1_000);
        assert!(e.submit(r, 0));
        let batch = e.next_batch(2_100).expect("ready");
        e.complete_batch(batch, Ok(()), 5_000); // way past deadline
        let c = e.counters();
        assert_eq!(c.completed, 0);
        assert_eq!(c.timed_out, 1);
        assert_eq!(c.deadline_violations, 0);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn admission_rejects_infeasible_deadlines() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 50); // deadline < batch1 service time (150us)
        assert!(!e.submit(r, 0));
        let c = e.counters();
        assert_eq!(c.rejected, 1);
        assert_eq!(e.registry().counter(names::REJECTED_INFEASIBLE), 1);
    }

    #[test]
    fn queue_full_backpressure_rejects() {
        let cfg = ServeConfig { queue_cap: 2, admission: false, ..ServeConfig::default() };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..2 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let r = req(&mut e, 0, 1_000_000);
        assert!(!e.submit(r, 0));
        assert_eq!(e.registry().counter(names::REJECTED_QUEUE_FULL), 1);
    }

    #[test]
    fn deadline_propagation_drops_expired_in_queue() {
        let mut e = ServeEngine::new(ServeConfig::default(), table());
        let r = req(&mut e, 0, 3_000); // feasible at submit time
        assert!(e.submit(r, 0));
        e.tick(4_000); // past the deadline
        let c = e.counters();
        assert_eq!(c.timed_out, 1);
        assert_eq!(e.registry().counter(names::TIMED_OUT_QUEUE), 1);
        assert_eq!(e.queued(), 0);
        assert!(e.next_batch(10_000).is_none());
    }

    #[test]
    fn failed_batches_retry_then_reject() {
        let cfg = ServeConfig {
            retry_max: 1,
            retry_backoff_us: 100,
            breaker: None,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 1_000_000);
        assert!(e.submit(r, 0));
        let b = e.next_batch(2_100).expect("ready");
        e.complete_batch(b, Err(SessionError::Transient), 2_200);
        assert!(e.next_batch(2_250).is_none()); // backoff not elapsed
        let b = e.next_batch(2_300).expect("retry eligible");
        assert_eq!(b.attempts, 1);
        e.complete_batch(b, Err(SessionError::Transient), 2_400);
        let c = e.counters();
        assert_eq!(c.retries, 1);
        assert_eq!(e.registry().counter(names::REJECTED_EXEC_FAILED), 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn breaker_opens_then_probes_then_closes() {
        let cfg = ServeConfig {
            retry_max: 0,
            breaker: Some(BreakerConfig { open_after: 2, cooldown_us: 1_000 }),
            batch_window_us: 0,
            admission: false,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for t in 0..2u64 {
            let r = req(&mut e, t * 10, 1_000_000);
            assert!(e.submit(r, t * 10));
            let b = e.next_batch(t * 10 + 1).expect("ready");
            e.complete_batch(b, Err(SessionError::Transient), t * 10 + 2);
        }
        assert_eq!(e.counters().breaker_opens, 1);
        // While open: submissions reject.
        let r = req(&mut e, 100, 1_000_000);
        assert!(!e.submit(r, 100));
        assert_eq!(e.registry().counter(names::REJECTED_BREAKER), 1);
        // After cooldown: probe admitted, success closes.
        let r = req(&mut e, 2_000, 1_000_000);
        assert!(e.submit(r, 2_000));
        let b = e.next_batch(2_001).expect("probe");
        assert!(b.probe);
        e.complete_batch(b, Ok(()), 2_010);
        assert_eq!(e.registry().counter(names::BREAKER_CLOSES), 1);
        assert_eq!(e.counters().lost(), 0);
    }

    #[test]
    fn shed_levels_downgrade_then_drop_standard_only() {
        let cfg = ServeConfig {
            queue_cap: 10,
            admission: false,
            batch_window_us: 0,
            shed: Some(ShedConfig { hi: 0.1, lo: 0.05, up_ticks: 1, down_ticks: 100, max_level: 3 }),
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        // Fill the queue, tick until level 3.
        for i in 0..8u64 {
            let id = e.allocate_id();
            let qos = if i == 0 { QosClass::Critical } else { QosClass::Standard };
            let r = Request {
                id,
                model: "m".to_string(),
                tier: Tier::Fp16,
                qos,
                submit_us: 0,
                deadline_us: 1_000_000,
            };
            assert!(e.submit(r, 0));
        }
        for _ in 0..3 {
            e.tick(1);
        }
        assert_eq!(e.shed_level(), 3);
        // Critical request survives at its tier; standards are shed.
        let b = e.next_batch(2).expect("critical batch");
        assert_eq!(b.tier, Tier::Fp16);
        assert_eq!(b.requests.len(), 1);
        e.complete_batch(b, Ok(()), 3);
        assert!(e.next_batch(4).is_none());
        let c = e.counters();
        assert_eq!(c.shed, 7);
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn shed_level_below_three_downgrades_tier() {
        let cfg = ServeConfig {
            queue_cap: 10,
            admission: false,
            batch_window_us: 0,
            shed: Some(ShedConfig { hi: 0.1, lo: 0.05, up_ticks: 1, down_ticks: 100, max_level: 1 }),
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..4 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        e.tick(1);
        assert_eq!(e.shed_level(), 1);
        let b = e.next_batch(2).expect("batch");
        assert_eq!(b.tier, Tier::Hfp8); // downgraded one step
        e.complete_batch(b, Ok(()), 3);
        let c = e.counters();
        assert_eq!(c.completed, 4);
        assert_eq!(c.downgraded, 4);
    }

    #[test]
    fn drain_rejects_new_flushes_old_and_aborts_leftovers() {
        let cfg = ServeConfig { admission: false, ..ServeConfig::default() };
        let mut e = ServeEngine::new(cfg, table());
        let r = req(&mut e, 0, 1_000_000);
        assert!(e.submit(r, 0));
        e.drain();
        let r = req(&mut e, 1, 1_000_000);
        assert!(!e.submit(r, 1));
        assert_eq!(e.registry().counter(names::REJECTED_SHUTDOWN), 1);
        // Draining flushes the partial window immediately.
        let b = e.next_batch(2).expect("flush");
        e.complete_batch(b, Ok(()), 3);
        // A leftover that never got dispatched is aborted.
        assert!(e.idle());
        let c = e.counters();
        assert_eq!(c.completed, 1);
        assert_eq!(c.lost(), 0);
    }

    #[test]
    fn abort_remaining_accounts_queued_and_retrying() {
        let cfg = ServeConfig {
            admission: false,
            breaker: None,
            retry_max: 5,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..3 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let b = e.next_batch(2_100).expect("batch");
        e.complete_batch(b, Err(SessionError::Transient), 2_200); // → retry queue
        e.abort_remaining();
        let c = e.counters();
        assert_eq!(c.lost(), 0);
        assert_eq!(e.registry().counter(names::TIMED_OUT_DRAIN), 3);
        assert!(e.idle());
    }

    #[test]
    fn batch_log_records_composition_when_enabled() {
        let cfg = ServeConfig {
            record_batches: true,
            admission: false,
            batch_window_us: 0,
            ..ServeConfig::default()
        };
        let mut e = ServeEngine::new(cfg, table());
        for _ in 0..2 {
            let r = req(&mut e, 0, 1_000_000);
            assert!(e.submit(r, 0));
        }
        let b = e.next_batch(1).expect("batch");
        e.complete_batch(b, Ok(()), 2);
        assert_eq!(e.batch_log().len(), 1);
        assert_eq!(e.batch_log()[0].request_ids, vec![0, 1]);
    }
}
