//! The real threaded serving runtime: crossbeam scoped workers around
//! the same [`ServeEngine`] the virtual-time sweeps exercise.
//!
//! No async runtime — workers are plain threads sharing the engine
//! under a `std::sync::Mutex` + `Condvar`, with inference executed
//! *outside* the lock so GEMMs overlap. Because all scheduling policy
//! lives in the engine, the chaos guarantees proven in virtual time
//! (conservation, no late deliveries) carry over verbatim; the threads
//! only decide *when* the engine's methods run, never *what* they do.
//!
//! Shutdown is a clean drain: new submissions reject with
//! `RejectReason::Shutdown`, partial batch windows flush, and anything
//! still stuck after [`ServeConfig::drain_timeout_us`] is aborted as
//! `TimedOut(Drain)` — never silently lost.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rapid_model::LatencyTable;
use rapid_telemetry::slo::SloReport;
use rapid_telemetry::span::SpanRecord;
use rapid_telemetry::{openmetrics, MetricsRegistry, ServeCounters};

use crate::engine::{ServeConfig, ServeEngine};
use crate::request::{QosClass, Request, RequestId, Response, Tier};
use crate::session::InferenceSession;

/// Engine plus the one flag the threads coordinate on.
struct State {
    engine: ServeEngine,
    hard_stop: bool,
}

fn lock<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    // Engine mutations are transactional (finish() either runs fully or
    // not at all), so a poisoned lock is safe to recover.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Client-side handle valid for the duration of [`Server::run`]'s
/// callback: submit requests, read the clock, snapshot counters.
pub struct ServerHandle<'a> {
    state: &'a Mutex<State>,
    cv: &'a Condvar,
    epoch: Instant,
}

impl ServerHandle<'_> {
    /// Microseconds since the server started.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Submits a request with a relative deadline budget. The terminal
    /// outcome shows up in [`ServerReport::responses`] under the
    /// returned id.
    pub fn submit(
        &self,
        model: &str,
        tier: Tier,
        qos: QosClass,
        deadline_budget_us: u64,
    ) -> RequestId {
        let mut st = lock(self.state);
        let now = self.now_us();
        let id = st.engine.allocate_id();
        let req = Request {
            id,
            model: model.to_string(),
            tier,
            qos,
            submit_us: now,
            deadline_us: now.saturating_add(deadline_budget_us),
        };
        st.engine.submit(req, now);
        drop(st);
        self.cv.notify_all();
        id
    }

    /// Live snapshot of the serving counters.
    pub fn counters(&self) -> ServeCounters {
        lock(self.state).engine.counters()
    }

    /// Requests currently queued.
    pub fn queued(&self) -> usize {
        lock(self.state).engine.queued()
    }
}

/// What a completed [`Server::run`] hands back.
#[derive(Debug)]
pub struct ServerReport<R> {
    /// The callback's return value.
    pub result: R,
    /// Final counters after full drain (conservation holds here).
    pub counters: ServeCounters,
    /// Every terminal response.
    pub responses: Vec<Response>,
    /// The engine's full metrics registry.
    pub registry: MetricsRegistry,
    /// Request spans (when [`ServeConfig::record_spans`]).
    pub spans: Vec<SpanRecord>,
    /// Burn-rate rule outcomes over the wall-clock-µs virtual clock.
    pub slo: SloReport,
}

impl<R> ServerReport<R> {
    /// The final registry as an OpenMetrics text snapshot, with the
    /// given shared labels — scrape-able output for the threaded server.
    pub fn openmetrics(&self, labels: &[(&str, &str)]) -> String {
        openmetrics::render_labeled(&self.registry, labels)
    }
}

/// The threaded serving runtime. Stateless — [`Server::run`] owns the
/// engine for exactly one serve-and-drain lifecycle.
#[derive(Debug, Default, Clone, Copy)]
pub struct Server;

impl Server {
    /// Runs a server over `session` with `cfg.workers` worker threads,
    /// calls `f` with a submission handle, then drains and joins.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (engine invariants would be
    /// unverifiable).
    #[allow(clippy::expect_used)] // worker panics are unrecoverable here
    pub fn run<S, F, R>(cfg: ServeConfig, table: LatencyTable, session: &S, f: F) -> ServerReport<R>
    where
        S: InferenceSession,
        F: FnOnce(&ServerHandle<'_>) -> R,
    {
        let workers = cfg.workers.max(1);
        let wait = Duration::from_micros((cfg.batch_window_us / 2).max(200));
        let drain_timeout = Duration::from_micros(cfg.drain_timeout_us.max(1_000));
        let epoch = Instant::now();
        let state = Mutex::new(State {
            engine: ServeEngine::new(cfg, table),
            hard_stop: false,
        });
        let cv = Condvar::new();

        let result = crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let state = &state;
                let cv = &cv;
                scope.spawn(move |_| worker_loop(state, cv, epoch, wait, session));
            }

            let handle = ServerHandle { state: &state, cv: &cv, epoch };
            let out = f(&handle);

            // Drain: reject new work, flush partial windows, wait.
            lock(&state).engine.drain();
            cv.notify_all();
            let deadline = Instant::now() + drain_timeout;
            let mut hard_stopped = false;
            loop {
                {
                    let mut st = lock(&state);
                    if !hard_stopped && st.engine.idle() {
                        break;
                    }
                    if hard_stopped && st.engine.inflight() == 0 {
                        break;
                    }
                    if !hard_stopped && Instant::now() >= deadline {
                        // Drain window closed: abort queued/retrying work
                        // (workers still complete their in-flight batch).
                        let now = epoch.elapsed().as_micros() as u64;
                        st.engine.abort_remaining(now);
                        st.hard_stop = true;
                        hard_stopped = true;
                    }
                }
                cv.notify_all();
                std::thread::sleep(Duration::from_millis(1));
            }
            lock(&state).hard_stop = true;
            cv.notify_all();
            out
        })
        .expect("serving worker thread panicked");

        let mut st = lock(&state);
        let counters = st.engine.counters();
        let mut registry = MetricsRegistry::new();
        registry.merge(st.engine.registry());
        let responses = st.engine.take_responses();
        let slo = st.engine.slo_report();
        let spans = st.engine.take_spans().map(|s| s.spans().to_vec()).unwrap_or_default();
        ServerReport { result, counters, responses, registry, spans, slo }
    }
}

fn worker_loop(
    state: &Mutex<State>,
    cv: &Condvar,
    epoch: Instant,
    wait: Duration,
    session: &dyn InferenceSession,
) {
    loop {
        let mut st = lock(state);
        if st.hard_stop {
            break;
        }
        let now = epoch.elapsed().as_micros() as u64;
        st.engine.tick(now);
        match st.engine.next_batch(now) {
            Some(batch) => {
                drop(st); // execute outside the lock so workers overlap
                let result =
                    session.infer(&batch.model, batch.tier, batch.requests.len()).map(|_| ());
                let done = epoch.elapsed().as_micros() as u64;
                lock(state).engine.complete_batch(batch, result, done);
                cv.notify_all();
            }
            None => {
                if st.engine.draining() && st.engine.idle() {
                    drop(st);
                    cv.notify_all();
                    break;
                }
                let (g, _timeout) =
                    cv.wait_timeout(st, wait).unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(g);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::session::{EmulatedSession, OkSession};
    use crate::sweep::synthetic_table;

    #[test]
    fn threaded_server_serves_and_conserves() {
        let table = synthetic_table(&["m"], 100.0, 50.0);
        let cfg = ServeConfig {
            workers: 2,
            batch_window_us: 500,
            drain_timeout_us: 2_000_000,
            ..ServeConfig::hardened()
        };
        let report = Server::run(cfg, table, &OkSession, |h| {
            for _ in 0..50 {
                h.submit("m", Tier::Fp16, QosClass::Standard, 1_000_000);
            }
        });
        assert_eq!(report.counters.submitted, 50);
        assert_eq!(report.counters.lost(), 0);
        assert_eq!(report.counters.deadline_violations, 0);
        assert!(report.counters.completed > 0, "some requests completed");
        assert_eq!(report.responses.len(), 50);
    }

    #[test]
    fn threaded_server_emits_spans_and_scrape_snapshot() {
        use rapid_telemetry::span::validate_forest;
        let table = synthetic_table(&["m"], 100.0, 50.0);
        let cfg = ServeConfig {
            workers: 2,
            batch_window_us: 500,
            drain_timeout_us: 2_000_000,
            record_spans: true,
            ..ServeConfig::hardened()
        };
        let report = Server::run(cfg, table, &OkSession, |h| {
            for _ in 0..10 {
                h.submit("m", Tier::Fp16, QosClass::Standard, 1_000_000);
            }
        });
        assert!(!report.spans.is_empty());
        validate_forest(&report.spans).expect("well-nested");
        let text = report.openmetrics(&[("job", "rapid_serve")]);
        let doc = rapid_telemetry::openmetrics::validate(&text).expect("valid snapshot");
        assert_eq!(doc.counter("serve_submitted"), Some(10.0));
    }

    #[test]
    fn threaded_server_over_emulated_kernels() {
        let table = synthetic_table(&["resnet50", "bert"], 150.0, 60.0);
        let cfg = ServeConfig {
            workers: 2,
            batch_window_us: 500,
            drain_timeout_us: 5_000_000,
            ..ServeConfig::hardened()
        };
        let session = EmulatedSession::clean();
        let report = Server::run(cfg, table, &session, |h| {
            for i in 0..20 {
                let model = if i % 2 == 0 { "resnet50" } else { "bert" };
                h.submit(model, Tier::Hfp8, QosClass::Standard, 2_000_000);
            }
        });
        assert_eq!(report.counters.lost(), 0);
        assert_eq!(report.counters.completed, 20, "clean session completes everything");
    }
}
