//! Request, outcome and batch types for the serving runtime.
//!
//! Every request submitted to the runtime reaches **exactly one** of the
//! four terminal outcomes — completed, rejected, shed, or timed out —
//! through the engine's single accounting path. The enums here are the
//! vocabulary of that state machine; DESIGN.md §10 draws the full graph.

use rapid_arch::precision::Precision;

/// Opaque request identifier, unique per engine instance.
pub type RequestId = u64;

/// Precision tier a request is served at.
///
/// Declaration order is quality order (highest first); the shed
/// controller downgrades by walking down this list. Only the three
/// serving precisions are tiers — FP32 is a reference mode and INT2 is
/// below the accuracy floor for serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Full-quality tier (FP16 accumulate-in-FP32 emulated GEMM).
    Fp16,
    /// Standard tier (hybrid-FP8 forward path, the paper's default).
    Hfp8,
    /// Degraded tier (INT4 quantized path) — last stop before shedding.
    Int4,
}

impl Tier {
    /// All tiers, highest quality first.
    pub const ALL: [Tier; 3] = [Tier::Fp16, Tier::Hfp8, Tier::Int4];

    /// The numeric precision this tier executes at.
    pub fn precision(self) -> Precision {
        match self {
            Tier::Fp16 => Precision::Fp16,
            Tier::Hfp8 => Precision::Hfp8,
            Tier::Int4 => Precision::Int4,
        }
    }

    /// This tier lowered by `levels` quality steps, saturating at INT4.
    pub fn downgraded_by(self, levels: u8) -> Tier {
        let idx = match self {
            Tier::Fp16 => 0usize,
            Tier::Hfp8 => 1,
            Tier::Int4 => 2,
        };
        Tier::ALL[(idx + levels as usize).min(Tier::ALL.len() - 1)]
    }

    /// Short lowercase label for metrics keys and logs.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Fp16 => "fp16",
            Tier::Hfp8 => "hfp8",
            Tier::Int4 => "int4",
        }
    }
}

/// Quality-of-service class: critical requests are never downgraded or
/// shed; standard requests absorb the overload response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Must be served at the requested tier or not at all.
    Critical,
    /// May be downgraded or shed under overload.
    Standard,
}

/// An inference request as submitted by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Engine-assigned identifier.
    pub id: RequestId,
    /// Workload name (e.g. `"resnet50"`); must exist in the latency table.
    pub model: String,
    /// Requested precision tier.
    pub tier: Tier,
    /// Whether the overload controller may touch this request.
    pub qos: QosClass,
    /// Submission timestamp, microseconds on the engine clock.
    pub submit_us: u64,
    /// Absolute deadline, microseconds on the engine clock. The runtime
    /// never delivers a completion after this instant.
    pub deadline_us: u64,
}

/// Why a request was rejected (each maps to a `serve.rejected.*` counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue was full (backpressure).
    QueueFull,
    /// The admission estimate said the deadline could not be met.
    DeadlineInfeasible,
    /// The model's circuit breaker was open.
    BreakerOpen,
    /// Execution failed after exhausting all retries.
    ExecFailed,
    /// The runtime was draining for shutdown.
    Shutdown,
}

/// Which stage boundary a request's deadline expired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutStage {
    /// Dropped at batch formation, still queued.
    Queue,
    /// Execution finished past the deadline; result discarded.
    Exec,
    /// Expired while waiting for a retry slot.
    Retry,
    /// Still in flight when the shutdown drain window closed.
    Drain,
}

/// Terminal outcome of a request — exactly one per submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Served within deadline, possibly at a downgraded tier.
    Completed {
        /// The tier actually executed.
        tier: Tier,
        /// End-to-end latency in microseconds.
        latency_us: u64,
        /// True when `tier` is lower quality than the request asked for.
        downgraded: bool,
    },
    /// Refused without execution (or after exhausted retries).
    Rejected(RejectReason),
    /// Dropped by the overload controller at its final escalation level.
    Shed,
    /// Deadline expired at the given stage boundary.
    TimedOut(TimeoutStage),
}

impl Outcome {
    /// Whether this outcome counts toward goodput.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

/// A terminal response delivered back to the submitting client.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request this answers.
    pub id: RequestId,
    /// Workload name, echoed for correlation.
    pub model: String,
    /// The one terminal outcome.
    pub outcome: Outcome,
}

/// A formed batch: same model, same effective tier, executed as one unit.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Engine-assigned batch identifier (also the determinism-log key).
    pub id: u64,
    /// Workload the batch runs.
    pub model: String,
    /// Effective execution tier (after any downgrade).
    pub tier: Tier,
    /// Member requests, in dequeue order.
    pub requests: Vec<Request>,
    /// Execution attempts so far (0 before first dispatch completes).
    pub attempts: u32,
    /// True when this batch is a circuit-breaker half-open probe.
    pub probe: bool,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_is_quality_order_and_downgrade_saturates() {
        assert!(Tier::Fp16 < Tier::Hfp8);
        assert!(Tier::Hfp8 < Tier::Int4);
        assert_eq!(Tier::Fp16.downgraded_by(1), Tier::Hfp8);
        assert_eq!(Tier::Fp16.downgraded_by(2), Tier::Int4);
        assert_eq!(Tier::Fp16.downgraded_by(9), Tier::Int4);
        assert_eq!(Tier::Int4.downgraded_by(1), Tier::Int4);
        assert_eq!(Tier::Hfp8.downgraded_by(0), Tier::Hfp8);
    }

    #[test]
    fn tier_maps_to_serving_precisions() {
        for (t, p) in Tier::ALL.iter().zip(rapid_model::SERVING_PRECISIONS) {
            assert_eq!(t.precision(), p);
        }
    }
}
