//! Per-model circuit breaker.
//!
//! Opens after a run of consecutive execution failures (numerics errors
//! or injected transients), rejects new work while open, then half-opens
//! after a cooldown and lets a single probe batch through. A successful
//! probe closes the breaker; a failed probe re-opens it and restarts the
//! cooldown. The state machine is deterministic in the engine clock.

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub open_after: u32,
    /// Microseconds the breaker stays open before half-opening.
    pub cooldown_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { open_after: 4, cooldown_us: 50_000 }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Rejecting all work until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe may be in flight.
    HalfOpen,
}

/// Dispatch decision from [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed — dispatch normally.
    Allow,
    /// Breaker half-open — dispatch this batch as the single probe.
    Probe,
    /// Breaker open (or probe already in flight) — do not dispatch.
    Reject,
}

/// One breaker instance; the engine keeps one per model.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_us: u64,
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_us: 0,
            probe_in_flight: false,
        }
    }

    /// Current state, advancing Open → HalfOpen if the cooldown elapsed.
    pub fn state(&mut self, now_us: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now_us >= self.opened_at_us.saturating_add(self.cfg.cooldown_us)
        {
            self.state = BreakerState::HalfOpen;
            self.probe_in_flight = false;
        }
        self.state
    }

    /// Whether submissions should be refused outright right now.
    pub fn rejects_submissions(&mut self, now_us: u64) -> bool {
        self.state(now_us) == BreakerState::Open
    }

    /// Dispatch-time gate. `Probe` marks the caller's batch as the single
    /// half-open probe; the caller must report its result via
    /// [`Self::on_success`] / [`Self::on_failure`].
    pub fn admit(&mut self, now_us: u64) -> Admit {
        match self.state(now_us) {
            BreakerState::Closed => Admit::Allow,
            BreakerState::Open => Admit::Reject,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    Admit::Reject
                } else {
                    self.probe_in_flight = true;
                    Admit::Probe
                }
            }
        }
    }

    /// Reports a successful batch. Returns true when this closed a
    /// half-open breaker (the caller counts it as a `breaker.closes`).
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.probe_in_flight = false;
            true
        } else {
            false
        }
    }

    /// Reports a failed batch attempt. Returns true when this transition
    /// opened the breaker (the caller counts it as a `breaker.opens`).
    pub fn on_failure(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // Probe failed: straight back to Open, restart cooldown.
                self.state = BreakerState::Open;
                self.opened_at_us = now_us;
                self.probe_in_flight = false;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.open_after {
                    self.state = BreakerState::Open;
                    self.opened_at_us = now_us;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { open_after: 3, cooldown_us: 1_000 })
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let mut b = breaker();
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(1));
        b.on_success(); // resets the run
        assert!(!b.on_failure(2));
        assert!(!b.on_failure(3));
        assert!(b.on_failure(4)); // third consecutive → opens
        assert_eq!(b.state(5), BreakerState::Open);
        assert_eq!(b.admit(5), Admit::Reject);
        assert!(b.rejects_submissions(5));
    }

    #[test]
    fn half_open_probe_cycle_closes_on_success() {
        let mut b = breaker();
        for t in 0..3 {
            b.on_failure(t);
        }
        assert_eq!(b.admit(500), Admit::Reject); // still cooling down
        assert_eq!(b.admit(1_002), Admit::Probe); // cooldown elapsed
        assert_eq!(b.admit(1_003), Admit::Reject); // one probe at a time
        assert!(b.on_success());
        assert_eq!(b.state(1_004), BreakerState::Closed);
        assert_eq!(b.admit(1_005), Admit::Allow);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let mut b = breaker();
        for t in 0..3 {
            b.on_failure(t);
        }
        assert_eq!(b.admit(1_500), Admit::Probe);
        assert!(b.on_failure(1_500)); // probe failed → re-open counts
        assert_eq!(b.admit(2_000), Admit::Reject); // new cooldown from 1500
        assert_eq!(b.admit(2_600), Admit::Probe);
        assert!(b.on_success());
    }
}
