//! Overload-hardened model-serving runtime over the emulated RaPiD
//! accelerator stack.
//!
//! The paper's ultra-low-precision tiers are not just a training trick:
//! at serving time they form a *quality ladder* the runtime can walk
//! down under overload — FP16 → HFP8 → INT4 — trading accuracy for
//! throughput before it ever has to drop a request. This crate builds
//! the serving pipeline around that idea:
//!
//! ```text
//! submit ─▶ breaker gate ─▶ bounded queue ─▶ admission control
//!                 │                               │
//!                 ▼                               ▼
//!          continuous batcher ◀─ shed controller (tier downgrades)
//!                 │
//!                 ▼
//!          worker pool ─▶ guarded emulated kernels ─▶ retry/breaker
//! ```
//!
//! - [`engine::ServeEngine`] — the clock-explicit deterministic state
//!   machine every front-end shares.
//! - [`server::Server`] — the real threaded runtime (crossbeam scoped
//!   workers, no async runtime).
//! - [`sweep`] — virtual-time open-loop load generator for
//!   bit-reproducible chaos tests and overload curves (EXPERIMENTS.md
//!   E21).
//! - [`session::InferenceSession`] — the seam to the emulated backend;
//!   [`session::EmulatedSession`] routes each tier to the corresponding
//!   guarded kernel with fault injection.
//!
//! Two invariants hold by construction and are chaos-tested: every
//! submitted request gets exactly one terminal outcome (conservation),
//! and no completion is ever delivered past its deadline.
//!
//! Observability rides the same state machine: with
//! [`engine::ServeConfig::record_spans`] the engine records a
//! deterministic span per request stage (admission → queue → exec →
//! retry) feeding the critical-path extractor, and
//! [`engine::ServeConfig::slo`] attaches multi-window burn-rate SLO
//! monitors to the terminal-outcome path. Both are observers only —
//! results stay bit-identical with them on or off (proptested).

// unwrap/expect denial comes from [workspace.lints] in the root manifest.
#![warn(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod request;
pub mod server;
pub mod session;
pub mod shed;
pub mod sweep;

pub use breaker::{Admit, BreakerConfig, BreakerState, CircuitBreaker};
pub use engine::{BatchLogEntry, ServeConfig, ServeEngine, SloPolicy};
pub use request::{
    Batch, Outcome, QosClass, RejectReason, Request, RequestId, Response, Tier, TimeoutStage,
};
pub use server::{Server, ServerHandle, ServerReport};
pub use session::{EmulatedSession, InferenceSession, OkSession, SessionError, SessionReport};
pub use shed::{ShedConfig, ShedController};
pub use sweep::{run_open_loop, synthetic_table, OfferedLoad, SweepResult};
