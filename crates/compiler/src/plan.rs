//! Compilation output: per-layer execution plans.

use rapid_arch::precision::Precision;
use serde::{Deserialize, Serialize};

/// How a quantized layer's activations convert at its boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantCost {
    /// No conversion (layer runs at FP16, the result precision).
    None,
    /// FP16 → FP8 conversion: an exponent re-bias and mantissa re-round
    /// (3 SFU lane-cycles per element).
    Fp8Convert,
    /// FP16 ⇄ INT4/INT2 quantize + scale: FP32 scale multiply, round,
    /// clamp and re-pack (10 SFU lane-cycles per element — the paper's
    /// third cycle category, "non-trivial especially when the size of the
    /// activation is large").
    IntQuantize,
}

impl QuantCost {
    /// SFU lane-cycles per converted element.
    pub fn lane_cycles_per_elem(&self) -> f64 {
        match self {
            QuantCost::None => 0.0,
            QuantCost::Fp8Convert => 3.0,
            QuantCost::IntQuantize => 10.0,
        }
    }
}

/// Execution plan for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Index into the network's layer list.
    pub layer_idx: usize,
    /// Execution precision of the compute op (FP16 for aux/SFU layers).
    pub precision: Precision,
    /// Activation conversion applied at the layer output.
    pub quant: QuantCost,
    /// Whether this layer's activations spill to external memory (don't
    /// fit on-chip between layers).
    pub spill_activations: bool,
    /// Effective clock in GHz after sparsity-aware throttling (equals the
    /// schedule's base frequency when throttling is off).
    pub effective_ghz: f64,
}

/// A compiled network: one plan per layer plus global settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Benchmark name.
    pub network: String,
    /// The quantized target precision of the compilation.
    pub target: Precision,
    /// Per-layer plans (same order as the network's layers).
    pub layers: Vec<LayerPlan>,
}

impl NetworkPlan {
    /// Plans of layers executing at the quantized target precision.
    pub fn quantized_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.precision == self.target).count()
    }

    /// MAC-weighted average effective frequency of the schedule (GHz),
    /// weighted by each layer's plan share — useful in reports.
    pub fn frequencies(&self) -> impl Iterator<Item = f64> + '_ {
        self.layers.iter().map(|l| l.effective_ghz)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quant_cost_cycles() {
        assert_eq!(QuantCost::None.lane_cycles_per_elem(), 0.0);
        assert_eq!(QuantCost::Fp8Convert.lane_cycles_per_elem(), 3.0);
        assert_eq!(QuantCost::IntQuantize.lane_cycles_per_elem(), 10.0);
    }
}
