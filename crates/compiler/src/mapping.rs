//! The weight-stationary dataflow mapping and its cycle cost (Fig 5).
//!
//! Dataflow recap (paper §III-A-4): output channels map spatially along
//! columns × SIMD (64 per corelet), input channels along rows × LRF depth;
//! inputs stream along rows, outputs along columns; weights are stationary
//! in the LRF and reloaded between (kh, kw, ci-block, co-tile) tiles;
//! `H×W` and the batch are the innermost streaming loops.
//!
//! This module is the compiler's *bandwidth-centric analytical model*
//! (paper §IV-B): it returns the cycle breakdown the design-space
//! exploration and the downstream performance model both consume.

use rapid_arch::geometry::CoreletConfig;
use rapid_arch::precision::Precision;
use rapid_workloads::graph::Op;
use serde::{Deserialize, Serialize};

/// How a compute layer's work is split across corelets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Split {
    /// Each corelet owns a share of the output-channel tiles.
    OutputChannels,
    /// Corelets replicate the weights and split the streaming (H×W×N)
    /// dimension — used when there are fewer Co tiles than corelets.
    Spatial,
}

/// Cycle cost of one compute layer mapped onto `n_corelets` corelets.
/// All counts are cycles *of the slowest corelet* (imbalance included).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// The split that was selected.
    pub split: Split,
    /// Lower-bound cycles: exact MACs / peak MAC rate of the corelets.
    pub ideal_cycles: f64,
    /// Streaming compute cycles actually spent (includes spatial residue
    /// padding and imbalance).
    pub compute_cycles: f64,
    /// Cycles stalled block-loading LRF weights between tiles.
    pub blockload_cycles: f64,
    /// Systolic pipeline fill/drain cycles.
    pub fill_cycles: f64,
}

impl MappingCost {
    /// Total cycles on the critical corelet.
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles + self.blockload_cycles + self.fill_cycles
    }

    /// Conv/GEMM *overhead* cycles (Fig 17's second category): everything
    /// above the ideal-MAC lower bound.
    pub fn overhead_cycles(&self) -> f64 {
        (self.total_cycles() - self.ideal_cycles).max(0.0)
    }

    /// MPE array utilization (ideal / total).
    pub fn utilization(&self) -> f64 {
        if self.total_cycles() <= 0.0 {
            return 0.0;
        }
        (self.ideal_cycles / self.total_cycles()).min(1.0)
    }
}

/// Canonical GEMM-like view of a compute op: `stream` positions ×
/// `reduction` (ci) × `outputs` (co) with a `kh×kw` stationary-reuse loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GemmView {
    stream: u64,
    reduction: u64,
    outputs: u64,
    kernel: u64,
}

fn view_of(op: &Op, batch: u64) -> Option<GemmView> {
    match *op {
        Op::Conv { ci, co, h, w, kh, kw, stride, pad_h, pad_w } => {
            let ho = (h + 2 * pad_h).saturating_sub(kh) / stride + 1;
            let wo = (w + 2 * pad_w).saturating_sub(kw) / stride + 1;
            Some(GemmView { stream: batch * ho * wo, reduction: ci, outputs: co, kernel: kh * kw })
        }
        Op::DepthwiseConv { c, h, w, k, stride, pad } => {
            let ho = (h + 2 * pad).saturating_sub(k) / stride + 1;
            let wo = (w + 2 * pad).saturating_sub(k) / stride + 1;
            // No cross-channel reduction: channels map to the output axis
            // and the k×k window is the only reduction available to the
            // rows — the structural reason depthwise layers underuse the
            // array.
            Some(GemmView { stream: batch * ho * wo, reduction: k * k, outputs: c, kernel: 1 })
        }
        Op::Gemm { m, k, n, .. } => {
            Some(GemmView { stream: batch * m, reduction: k, outputs: n, kernel: 1 })
        }
        Op::Aux { .. } => None,
    }
}

/// Streaming cycles per position for a reduction of `ci` channels: the LRF
/// holds up to `ci_lrf` channels per block; each cycle consumes `ci_cyc`
/// of them.
fn cycles_per_position(ci_block: u64, ci_cyc: u64) -> u64 {
    ci_block.div_ceil(ci_cyc)
}

/// Maps one compute op at a precision onto `n_corelets` corelets and
/// returns the cycle cost of the critical corelet, choosing the better of
/// the output-channel and spatial splits.
///
/// `batch` multiplies the streaming dimension (mini-batch mapped to the
/// innermost loops, Fig 5).
///
/// # Panics
///
/// Panics if called with an [`Op::Aux`] (auxiliary ops run on the SFU, not
/// the MPE array) or `n_corelets == 0`.
pub fn map_layer(
    op: &Op,
    precision: Precision,
    batch: u64,
    corelet: &CoreletConfig,
    n_corelets: u32,
) -> MappingCost {
    assert!(n_corelets > 0, "need at least one corelet");
    #[allow(clippy::expect_used)] // caller filters to compute ops (documented)
    let v = view_of(op, batch).expect("auxiliary ops do not map to the MPE array");
    let co_split = map_with_split(&v, op, precision, batch, corelet, n_corelets, Split::OutputChannels);
    let sp_split = map_with_split(&v, op, precision, batch, corelet, n_corelets, Split::Spatial);
    if co_split.total_cycles() <= sp_split.total_cycles() {
        co_split
    } else {
        sp_split
    }
}

fn map_with_split(
    v: &GemmView,
    op: &Op,
    precision: Precision,
    batch: u64,
    corelet: &CoreletConfig,
    n_corelets: u32,
    split: Split,
) -> MappingCost {
    let n_corelets = u64::from(n_corelets);
    let co_tile = u64::from(corelet.co_tile());
    let ci_cyc = u64::from(corelet.ci_tile(precision));
    let ci_lrf = u64::from(corelet.ci_lrf_max(precision));

    let co_tiles = v.outputs.div_ceil(co_tile).max(1);
    // Tile widths: full 64-wide tiles plus one possibly-partial last tile
    // (a narrow tile streams positions at the same rate but loads fewer
    // weight bytes).
    let tile_width = |t: u64| {
        if t + 1 == co_tiles {
            v.outputs - t * co_tile
        } else {
            co_tile
        }
    };

    // Exact per-corelet share accounting: the reported cost is the
    // critical (slowest) corelet's.
    let (tiles_per_corelet, width_per_corelet, stream_per_corelet) = match split {
        Split::OutputChannels => {
            // Round-robin tile assignment; find the heaviest corelet.
            let mut counts = vec![0u64; n_corelets as usize];
            let mut widths = vec![0u64; n_corelets as usize];
            for t in 0..co_tiles {
                let c = (t % n_corelets) as usize;
                counts[c] += 1;
                widths[c] += tile_width(t);
            }
            let worst = (0..n_corelets as usize)
                .max_by_key(|&c| (counts[c], widths[c]))
                .unwrap_or(0);
            (counts[worst], widths[worst], v.stream)
        }
        Split::Spatial => {
            // Replicate weights; each tile's stream is split across the
            // corelets that share it.
            let group = (n_corelets / co_tiles).max(1);
            let tiles = co_tiles.div_ceil(n_corelets / group.max(1)).max(1);
            (tiles, tiles * co_tile.min(v.outputs), v.stream.div_ceil(group))
        }
    };

    // Reduction blocking through the LRF.
    let full_blocks = v.reduction / ci_lrf;
    let rem = v.reduction % ci_lrf;
    let cyc_per_pos = full_blocks * cycles_per_position(ci_lrf, ci_cyc)
        + if rem > 0 { cycles_per_position(rem, ci_cyc) } else { 0 };
    let ci_blocks = full_blocks + u64::from(rem > 0);

    let compute_cycles =
        (tiles_per_corelet * v.kernel * stream_per_corelet * cyc_per_pos) as f64;

    // Block-load cost: the actual weight bytes of this corelet's share
    // pushed through its L1 port: width × reduction × kernel elements.
    let elem_bytes = precision.bytes();
    let blocks = tiles_per_corelet * ci_blocks * v.kernel;
    let bw = f64::from(corelet.l1_bw_bytes_per_cycle);
    let blockload_cycles =
        (width_per_corelet * v.reduction * v.kernel) as f64 * elem_bytes / bw;

    let fill_cycles = blocks as f64 * corelet.pipeline_fill_cycles() as f64;

    let macs = op.macs() as f64 * batch as f64;
    let peak = corelet.macs_per_cycle(precision) as f64 * n_corelets as f64;
    let ideal_cycles = macs / peak;

    MappingCost {
        split,
        ideal_cycles,
        compute_cycles,
        blockload_cycles,
        fill_cycles,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn corelet() -> CoreletConfig {
        CoreletConfig::default()
    }

    fn conv(ci: u64, co: u64, h: u64, k: u64, stride: u64, pad: u64) -> Op {
        Op::Conv { ci, co, h, w: h, kh: k, kw: k, stride, pad_h: pad, pad_w: pad }
    }

    #[test]
    fn perfectly_tiled_conv_has_high_utilization() {
        // Ci=128, Co=512 at FP16: multiples of every tile granularity.
        let op = conv(128, 512, 28, 3, 1, 1);
        let cost = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        assert!(cost.utilization() > 0.85, "util {}", cost.utilization());
    }

    #[test]
    fn int4_needs_wider_channels_for_utilization() {
        // Ci=64 saturates INT4's 64-channel/cycle row granularity exactly;
        // Ci=32 wastes half the rows.
        let wide = map_layer(&conv(64, 512, 28, 3, 1, 1), Precision::Int4, 1, &corelet(), 8);
        let narrow = map_layer(&conv(32, 512, 28, 3, 1, 1), Precision::Int4, 1, &corelet(), 8);
        assert!(wide.utilization() > 1.9 * narrow.utilization());
    }

    #[test]
    fn first_layer_ci3_underuses_the_array() {
        // Paper: the dataflow "yields high utilization for almost all
        // convolution layers other than the first layer whose Ci is small."
        let op = conv(3, 64, 224, 7, 2, 3);
        let cost = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        assert!(cost.utilization() < 0.5, "util {}", cost.utilization());
    }

    #[test]
    fn batch1_gemv_is_blockload_bound() {
        // FC layers "require frequent block-loads for small batch sizes".
        let op = Op::Gemm { m: 1, k: 1500, n: 6000, weighted: true };
        let cost = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        assert!(
            cost.blockload_cycles > 3.0 * cost.compute_cycles,
            "blockload {} vs compute {}",
            cost.blockload_cycles,
            cost.compute_cycles
        );
        assert!(cost.utilization() < 0.2);
    }

    #[test]
    fn batching_amortizes_blockloads() {
        let op = Op::Gemm { m: 1, k: 1500, n: 6000, weighted: true };
        let b1 = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        let b512 = map_layer(&op, Precision::Fp16, 512, &corelet(), 8);
        assert!(b512.utilization() > 4.0 * b1.utilization());
        assert!(b512.utilization() > 0.7, "util {}", b512.utilization());
    }

    #[test]
    fn depthwise_conv_utilization_collapses() {
        let op = Op::DepthwiseConv { c: 512, h: 14, w: 14, k: 3, stride: 1, pad: 1 };
        let int4 = map_layer(&op, Precision::Int4, 1, &corelet(), 8);
        // Only a 9-deep reduction against a 64-channel/cycle row axis.
        assert!(int4.utilization() < 0.2, "util {}", int4.utilization());
    }

    #[test]
    fn spatial_split_wins_when_co_tiles_are_few() {
        // Co=64 is a single tile: the Co split leaves 7 of 8 corelets idle,
        // the spatial split shares the stream.
        let op = conv(256, 64, 56, 3, 1, 1);
        let cost = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        assert_eq!(cost.split, Split::Spatial);
        assert!(cost.utilization() > 0.5, "util {}", cost.utilization());
    }

    #[test]
    fn co_split_wins_for_many_tiles() {
        let op = conv(256, 2048, 7, 1, 1, 0);
        let cost = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
        assert_eq!(cost.split, Split::OutputChannels);
    }

    #[test]
    fn more_corelets_reduce_cycles() {
        let op = conv(256, 512, 28, 3, 1, 1);
        let c8 = map_layer(&op, Precision::Int4, 1, &corelet(), 8);
        let c64 = map_layer(&op, Precision::Int4, 1, &corelet(), 64);
        assert!(c64.total_cycles() < c8.total_cycles());
        // But not perfectly: residue/imbalance grows.
        assert!(c64.total_cycles() > c8.total_cycles() / 10.0);
    }

    #[test]
    fn overhead_plus_ideal_equals_total() {
        let op = conv(96, 208, 17, 3, 1, 1);
        let cost = map_layer(&op, Precision::Int4, 1, &corelet(), 8);
        let sum = cost.ideal_cycles + cost.overhead_cycles();
        assert!((sum - cost.total_cycles()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "auxiliary ops do not map")]
    fn aux_op_panics() {
        let op = Op::Aux {
            kind: rapid_workloads::graph::AuxKind::Relu,
            elems: 10,
            ops_per_elem: 1,
        };
        let _ = map_layer(&op, Precision::Fp16, 1, &corelet(), 8);
    }
}
