//! Mixed-precision design-space exploration (paper §IV-B: "a systematic
//! design space exploration is performed ... guided by a bandwidth-centric
//! analytical power-performance model").
//!
//! The paper's key precision observation (§I feature 1) is that *selected*
//! computations must stay high precision. This pass explores the spectrum
//! between all-FP16 and fully-quantized plans: layers are ranked by how
//! much latency quantizing them saves (benefit-per-MAC), and plans are
//! produced that quantize only the most profitable fraction — the
//! latency/aggressiveness frontier a deployment would tune against its
//! accuracy budget.

use crate::mapping::map_layer;
use crate::passes::{compile, CompileOptions};
use crate::plan::{NetworkPlan, QuantCost};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_workloads::graph::{Network, PrecisionClass};
use serde::{Deserialize, Serialize};

/// One point on the mixed-precision frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Fraction of quantizable MACs actually executed at the target
    /// precision (0.0 = all-FP16 baseline, 1.0 = the full plan).
    pub quantized_mac_fraction: f64,
    /// Number of layers quantized.
    pub quantized_layers: usize,
    /// The plan realizing this point.
    pub plan: NetworkPlan,
}

/// Estimated cycles saved by quantizing one layer, per the mapping model.
fn layer_benefit(
    net: &Network,
    idx: usize,
    target: Precision,
    chip: &ChipConfig,
) -> f64 {
    let layer = &net.layers[idx];
    if !layer.op.is_compute() {
        return 0.0;
    }
    let corelets = chip.cores * chip.core.corelets;
    let fp16 = map_layer(&layer.op, Precision::Fp16, 1, &chip.core.corelet, corelets);
    let quant = map_layer(&layer.op, target, 1, &chip.core.corelet, corelets);
    (fp16.total_cycles() - quant.total_cycles()) * layer.repeat as f64
}

/// Builds plans quantizing the most profitable layers first, one plan per
/// requested MAC-coverage fraction (each in `[0, 1]`).
///
/// Returns one [`FrontierPoint`] per requested fraction, in order.
pub fn mixed_precision_frontier(
    net: &Network,
    chip: &ChipConfig,
    target: Precision,
    fractions: &[f64],
) -> Vec<FrontierPoint> {
    let full = compile(net, chip, &CompileOptions::for_precision(target));

    // Rank quantizable layers by benefit per MAC, best first.
    let mut candidates: Vec<(usize, f64, u64)> = net
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| l.op.is_compute() && l.class == PrecisionClass::Quantizable)
        .map(|(i, l)| {
            let macs = l.macs().max(1);
            (i, layer_benefit(net, i, target, chip) / macs as f64, macs)
        })
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total_q_macs: u64 = candidates.iter().map(|c| c.2).sum();

    fractions
        .iter()
        .map(|&frac| {
            let budget = (frac.clamp(0.0, 1.0) * total_q_macs as f64) as u64;
            let mut plan = full.clone();
            // Start from an all-FP16 assignment of quantizable layers.
            for (i, l) in net.layers.iter().enumerate() {
                if l.op.is_compute() && l.class == PrecisionClass::Quantizable {
                    plan.layers[i].precision = Precision::Fp16;
                    plan.layers[i].quant = QuantCost::None;
                }
            }
            let mut used = 0u64;
            let mut count = 0usize;
            for &(i, _, macs) in &candidates {
                if used + macs > budget {
                    continue;
                }
                used += macs;
                count += 1;
                plan.layers[i].precision = full.layers[i].precision;
                plan.layers[i].quant = full.layers[i].quant;
            }
            FrontierPoint {
                quantized_mac_fraction: if total_q_macs == 0 {
                    0.0
                } else {
                    used as f64 / total_q_macs as f64
                },
                quantized_layers: count,
                plan,
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::suite::benchmark;

    #[test]
    fn frontier_endpoints() {
        let net = benchmark("resnet50").unwrap();
        let chip = ChipConfig::rapid_4core();
        let pts =
            mixed_precision_frontier(&net, &chip, Precision::Int4, &[0.0, 0.5, 1.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].quantized_layers, 0);
        assert!(pts[0].plan.layers.iter().all(|l| l.precision == Precision::Fp16));
        assert!(pts[2].quantized_mac_fraction > 0.99);
        // Monotone coverage.
        assert!(pts[1].quantized_mac_fraction <= pts[2].quantized_mac_fraction);
        assert!(pts[1].quantized_mac_fraction >= pts[0].quantized_mac_fraction);
    }

    #[test]
    fn coverage_never_exceeds_request() {
        let net = benchmark("vgg16").unwrap();
        let chip = ChipConfig::rapid_4core();
        for &f in &[0.2, 0.6, 0.9] {
            let pts = mixed_precision_frontier(&net, &chip, Precision::Int4, &[f]);
            assert!(pts[0].quantized_mac_fraction <= f + 1e-9, "fraction {f}: {pts:?}");
        }
    }

    #[test]
    fn high_precision_layers_never_quantize() {
        let net = benchmark("resnet50").unwrap();
        let chip = ChipConfig::rapid_4core();
        let pts = mixed_precision_frontier(&net, &chip, Precision::Int4, &[1.0]);
        for (l, p) in net.layers.iter().zip(&pts[0].plan.layers) {
            if l.class == PrecisionClass::HighPrecision && l.op.is_compute() {
                assert_eq!(p.precision, Precision::Fp16, "{}", l.name);
            }
        }
    }
}
