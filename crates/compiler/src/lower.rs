//! Lowering: emit the per-unit instruction streams (Fig 4b ISA) that
//! realize one GEMM tile schedule under the weight-stationary dataflow —
//! the MPE row program plus the weight/input data-sequencing programs.
//!
//! The cycle simulator (`rapid-sim`) executes equivalent sequencer
//! programs; the tests here pin the lowering's issue counts to the
//! analytical mapping so all three views of the dataflow stay consistent.

use crate::mapping::{map_layer, MappingCost};
use rapid_arch::geometry::CoreletConfig;
use rapid_arch::isa::{MpeInstr, OperandSrc, SeqInstr};
use rapid_arch::precision::Precision;
use rapid_workloads::graph::Op;
use serde::{Deserialize, Serialize};

/// Token gating LRF reuse between the weight loader and the array.
pub const TOKEN_BLOCK_FREE: u8 = 0;

/// The lowered instruction streams for one corelet's share of a GEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredGemm {
    /// The MPE data-processing program (all rows execute it systolically).
    pub mpe_program: Vec<MpeInstr>,
    /// The weight sequencer's program (L1 → LRF block loads).
    pub weight_program: Vec<SeqInstr>,
    /// The input sequencer's program (L1 → L0 → row streams).
    pub input_program: Vec<SeqInstr>,
    /// Total FMMA *issue slots* across the program (Σ `vecs`), which must
    /// equal the mapping's streaming compute cycles.
    pub fmma_issue_slots: u64,
    /// Weight elements block-loaded in total.
    pub weight_elems: u64,
}

/// Lowers a `C[m,n] = A[m,k] × B[k,n]` GEMM (one corelet, Co-split share
/// starting at column 0) to instruction streams.
///
/// `a_base`/`b_base` are the operands' element addresses in the L1.
///
/// # Panics
///
/// Panics on a degenerate GEMM or an SFU-only precision.
#[allow(clippy::expect_used)] // scratchpad addressing fits u32 by geometry
pub fn lower_gemm(
    m: u64,
    k: u64,
    n: u64,
    precision: Precision,
    corelet: &CoreletConfig,
    a_base: u32,
    b_base: u32,
) -> LoweredGemm {
    assert!(m > 0 && k > 0 && n > 0, "degenerate GEMM");
    let co_tile = u64::from(corelet.co_tile());
    let ci_lrf = u64::from(corelet.ci_lrf_max(precision));
    let ci_cyc = u64::from(corelet.ci_tile(precision));
    let n_tiles = n.div_ceil(co_tile);
    let n_blocks = k.div_ceil(ci_lrf);
    let lrf_words_per_block = u8::try_from(
        (ci_lrf * co_tile * precision.bytes() as u64 / 16).min(255),
    )
    .unwrap_or(255);

    let mut mpe = Vec::new();
    let mut wprog = Vec::new();
    let mut iprog = Vec::new();
    let mut fmma_issue_slots = 0u64;
    let mut weight_elems = 0u64;

    for t in 0..n_tiles {
        let col = t * co_tile;
        let width = co_tile.min(n - col);
        for blk in 0..n_blocks {
            let ci0 = blk * ci_lrf;
            let ci_b = (k - ci0).min(ci_lrf);
            // Weight loader: wait for the LRF, then push the block rows.
            wprog.push(SeqInstr::WaitToken { token: TOKEN_BLOCK_FREE, count: 1 });
            for ci in 0..ci_b {
                wprog.push(SeqInstr::Read {
                    addr: b_base + u32::try_from((ci0 + ci) * n + col).expect("address fits"),
                    len: width as u32,
                    stride: 1,
                });
            }
            weight_elems += ci_b * width;
            // The MPE program loads the block, then issues one FMMA per
            // streaming position with `vecs` LRF vectors each.
            mpe.push(MpeInstr::BlockLoad { lrf_base: 0, words: lrf_words_per_block });
            let vecs = u8::try_from(ci_b.div_ceil(ci_cyc)).expect("vecs fits in u8");
            // Input feeder loops over the rows of A for this block.
            iprog.push(SeqInstr::LoopBegin { count: u32::try_from(m).expect("m fits") });
            iprog.push(SeqInstr::Read {
                addr: a_base + u32::try_from(ci0).expect("address fits"),
                len: ci_b as u32,
                stride: 1,
            });
            iprog.push(SeqInstr::LoopEnd);
            for _ in 0..m {
                mpe.push(MpeInstr::Fmma {
                    precision,
                    src_a: OperandSrc::West,
                    src_b: OperandSrc::Lrf,
                    lrf_base: 0,
                    vecs,
                });
                fmma_issue_slots += u64::from(vecs);
            }
        }
    }
    LoweredGemm { mpe_program: mpe, weight_program: wprog, input_program: iprog, fmma_issue_slots, weight_elems }
}

/// Cross-checks a lowering against the analytical mapping for the
/// single-corelet case; returns the mapping it compared against.
///
/// # Panics
///
/// Panics if the lowered FMMA issue slots disagree with the mapping's
/// streaming compute cycles (they are the same quantity by construction).
pub fn verify_against_mapping(
    lowered: &LoweredGemm,
    m: u64,
    k: u64,
    n: u64,
    precision: Precision,
    corelet: &CoreletConfig,
) -> MappingCost {
    let op = Op::Gemm { m, k, n, weighted: true };
    let cost = map_layer(&op, precision, 1, corelet, 1);
    assert!(
        (lowered.fmma_issue_slots as f64 - cost.compute_cycles).abs() < 1e-6,
        "lowering issues {} slots but the mapping streams {} cycles",
        lowered.fmma_issue_slots,
        cost.compute_cycles
    );
    cost
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn corelet() -> CoreletConfig {
        CoreletConfig::default()
    }

    #[test]
    fn lowering_matches_mapping_compute_cycles() {
        for (m, k, n) in [(16u64, 128u64, 128u64), (7, 300, 65), (1, 1500, 6000)] {
            for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
                let l = lower_gemm(m, k, n, p, &corelet(), 0, 100_000);
                let _ = verify_against_mapping(&l, m, k, n, p, &corelet());
            }
        }
    }

    #[test]
    fn program_structure_counts() {
        let c = corelet();
        // k=300 at FP16: LRF holds 128 channels -> 3 blocks; n=100 -> 2 tiles.
        let l = lower_gemm(4, 300, 100, Precision::Fp16, &c, 0, 5000);
        let tiles = 2;
        let blocks = 3;
        // One BlockLoad + m FMMAs per (tile, block).
        assert_eq!(l.mpe_program.len(), tiles * blocks * (1 + 4));
        // Weight program: one wait + ci_b reads per block.
        let waits = l
            .weight_program
            .iter()
            .filter(|i| matches!(i, SeqInstr::WaitToken { .. }))
            .count();
        assert_eq!(waits, tiles * blocks);
        // Weight elements cover every (k, n) pair exactly once.
        assert_eq!(l.weight_elems, 300 * 100);
        // Input program: one loop triple per (tile, block).
        assert_eq!(l.input_program.len(), tiles * blocks * 3);
    }

    #[test]
    fn fmma_vecs_shrink_with_precision() {
        let c = corelet();
        let vecs_of = |p| {
            let l = lower_gemm(1, 128, 64, p, &c, 0, 1000);
            match l.mpe_program[1] {
                MpeInstr::Fmma { vecs, .. } => vecs,
                ref other => panic!("expected FMMA, got {other:?}"),
            }
        };
        // 128 channels per position: FP16 16 issues, HFP8 8, INT4 2.
        assert_eq!(vecs_of(Precision::Fp16), 16);
        assert_eq!(vecs_of(Precision::Hfp8), 8);
        assert_eq!(vecs_of(Precision::Int4), 2);
    }

    #[test]
    fn whole_program_encodes_and_decodes() {
        let l = lower_gemm(3, 200, 70, Precision::Int4, &corelet(), 0, 4000);
        for i in &l.mpe_program {
            assert_eq!(MpeInstr::decode(i.encode()), Some(*i), "{i:?}");
        }
    }

    #[test]
    #[should_panic(expected = "degenerate GEMM")]
    fn zero_dims_panic() {
        let _ = lower_gemm(0, 8, 8, Precision::Fp16, &corelet(), 0, 0);
    }
}
