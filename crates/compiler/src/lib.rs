//! # rapid-compiler
//!
//! The graph compiler of the RaPiD software stack (paper §IV-B, Fig 12):
//! given a DNN graph and a chip configuration it decides *how* the network
//! executes —
//!
//! * **Precision assignment** ([`passes::compile`]): quantizable layers
//!   take the target precision (INT4/INT2/HFP8); first/last layers and
//!   other accuracy-critical layers stay FP16 (§I feature 1).
//! * **Dataflow mapping** ([`mapping::map_layer`]): the weight-stationary
//!   dataflow of Fig 5, including spatial-residue, block-load and pipeline
//!   costs — the compiler's "bandwidth-centric analytical model" that
//!   guides design-space exploration and that the performance model builds
//!   on.
//! * **Scratchpad management**: spill analysis for inter-layer activations
//!   against the 2 MB/core L1.
//! * **Sparsity-aware throttling schedule** (Fig 6): per-layer effective
//!   clock frequencies derived from the pruned model's weight sparsity and
//!   the silicon characterization.
//!
//! # Example
//!
//! ```
//! use rapid_arch::geometry::ChipConfig;
//! use rapid_arch::precision::Precision;
//! use rapid_compiler::passes::{compile, CompileOptions};
//! use rapid_workloads::suite::benchmark;
//!
//! let net = benchmark("resnet50").unwrap();
//! let chip = ChipConfig::rapid_4core();
//! let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
//! assert_eq!(plan.layers.len(), net.layers.len());
//! ```

pub mod dse;
pub mod lower;
pub mod mapping;
pub mod passes;
pub mod plan;

pub use dse::{mixed_precision_frontier, FrontierPoint};
pub use lower::{lower_gemm, LoweredGemm};
pub use mapping::{map_layer, MappingCost, Split};
pub use passes::{compile, CompileOptions};
pub use plan::{LayerPlan, NetworkPlan, QuantCost};
