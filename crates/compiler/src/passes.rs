//! Compilation passes: precision assignment, scratchpad spill analysis and
//! the sparsity-aware throttling schedule (the Fig 6 flow).

use crate::plan::{LayerPlan, NetworkPlan, QuantCost};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::ThrottleModel;
use rapid_arch::precision::Precision;
use rapid_workloads::graph::{Network, Op, PrecisionClass};

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Quantized target precision for quantizable layers.
    pub target: Precision,
    /// Enable the sparsity-aware throttling schedule (uses each layer's
    /// `pruned_sparsity`; Fig 6). When off, every layer runs at the chip's
    /// nominal frequency.
    pub sparsity_throttling: bool,
    /// Throttle characterization to use when `sparsity_throttling` is set.
    pub throttle: ThrottleModel,
}

impl CompileOptions {
    /// Plain compilation at a target precision, no throttling.
    pub fn for_precision(target: Precision) -> Self {
        Self { target, sparsity_throttling: false, throttle: ThrottleModel::rapid_default() }
    }
}

/// Compiles a network for a chip: assigns per-layer precision (first/last
/// layers stay FP16), conversion costs, spill decisions and the throttling
/// schedule.
pub fn compile(net: &Network, chip: &ChipConfig, opts: &CompileOptions) -> NetworkPlan {
    let mut layers = Vec::with_capacity(net.layers.len());
    for (idx, layer) in net.layers.iter().enumerate() {
        let precision = layer_precision(layer.class, &layer.op, opts.target);
        let quant = quant_cost(precision, opts.target);
        let spill = spills(&layer.op, chip, precision);
        let effective_ghz = if opts.sparsity_throttling {
            // The compiler analyzes each layer's weight sparsity and picks
            // the throttle level that pushes power to the envelope.
            opts.throttle.effective_frequency_ghz(layer.pruned_sparsity)
        } else {
            chip.freq_ghz
        };
        layers.push(LayerPlan { layer_idx: idx, precision, quant, spill_activations: spill, effective_ghz });
    }
    NetworkPlan { network: net.name.clone(), target: opts.target, layers }
}

/// Per-layer precision assignment: auxiliary ops always run on the SFU at
/// FP16; high-precision compute layers stay FP16; everything else takes
/// the target.
fn layer_precision(class: PrecisionClass, op: &Op, target: Precision) -> Precision {
    if !op.is_compute() {
        return Precision::Fp16;
    }
    match class {
        PrecisionClass::HighPrecision => Precision::Fp16,
        PrecisionClass::Quantizable => target,
    }
}

/// Conversion cost of a layer that executes at `precision` inside a
/// network whose quantized target is `target`.
fn quant_cost(precision: Precision, _target: Precision) -> QuantCost {
    match precision {
        Precision::Int4 | Precision::Int2 => QuantCost::IntQuantize,
        Precision::Hfp8 => QuantCost::Fp8Convert,
        _ => QuantCost::None,
    }
}

/// Whether a layer's boundary activations fit on-chip between layers.
/// Half of the L1 capacity is reserved for weight blocks and
/// double-buffering; activations are stored at the execution precision.
fn spills(op: &Op, chip: &ChipConfig, precision: Precision) -> bool {
    if !op.is_compute() {
        return false;
    }
    let act_bytes =
        (op.input_elems() + op.output_elems()) as f64 * storage_bytes(precision);
    let budget = chip.cores as f64 * chip.core.l1_bytes as f64 * 0.5;
    act_bytes > budget
}

/// Storage bytes per activation element at a precision (sub-byte formats
/// pack, paper §III-A).
fn storage_bytes(p: Precision) -> f64 {
    p.bytes()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_workloads::{cnn, suite};

    #[test]
    fn first_and_last_layers_stay_fp16() {
        let net = cnn::resnet50();
        let chip = ChipConfig::rapid_4core();
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        // First compute layer (conv1) is HP.
        let first_compute =
            net.layers.iter().position(|l| l.op.is_compute()).expect("has compute");
        assert_eq!(plan.layers[first_compute].precision, Precision::Fp16);
        // Last compute layer (fc) is HP.
        let last_compute = net.layers.iter().rposition(|l| l.op.is_compute()).unwrap();
        assert_eq!(plan.layers[last_compute].precision, Precision::Fp16);
        // But most layers quantize.
        assert!(plan.quantized_layer_count() > 40);
    }

    #[test]
    fn quant_costs_by_precision() {
        let net = cnn::vgg16();
        let chip = ChipConfig::rapid_4core();
        let int4 = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let fp8 = compile(&net, &chip, &CompileOptions::for_precision(Precision::Hfp8));
        let fp16 = compile(&net, &chip, &CompileOptions::for_precision(Precision::Fp16));
        assert!(int4.layers.iter().any(|l| l.quant == QuantCost::IntQuantize));
        assert!(fp8.layers.iter().any(|l| l.quant == QuantCost::Fp8Convert));
        assert!(fp16.layers.iter().all(|l| l.quant == QuantCost::None));
    }

    #[test]
    fn early_vgg_layers_spill_at_fp16_but_not_int4() {
        // conv1_2 on 224×224×64 moves 6.4 M boundary activations:
        // 12.8 MB at FP16 (past the 4 MB on-chip budget) but 3.2 MB at
        // INT4 — precision scaling keeps intermediate outputs on-chip,
        // exactly the §III-D claim about the 2 MB L1.
        let chip = ChipConfig::rapid_4core();
        let op = Op::Conv { ci: 64, co: 64, h: 224, w: 224, kh: 3, kw: 3, stride: 1, pad_h: 1, pad_w: 1 };
        assert!(spills(&op, &chip, Precision::Fp16));
        assert!(!spills(&op, &chip, Precision::Int4));
    }

    #[test]
    fn throttling_schedule_tracks_layer_sparsity() {
        let mut net = cnn::vgg16();
        suite::apply_pruning_profile(&mut net);
        let chip = ChipConfig::rapid_4core();
        let mut opts = CompileOptions::for_precision(Precision::Fp16);
        opts.sparsity_throttling = true;
        let plan = compile(&net, &chip, &opts);
        // Sparse layers get a higher effective clock than dense ones.
        let mut by_sparsity: Vec<(f64, f64)> = net
            .layers
            .iter()
            .zip(&plan.layers)
            .filter(|(l, _)| l.op.is_compute())
            .map(|(l, p)| (l.pruned_sparsity, p.effective_ghz))
            .collect();
        by_sparsity.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(by_sparsity.last().unwrap().1 > by_sparsity.first().unwrap().1);
        // Dense baseline: all layers at nominal.
        opts.sparsity_throttling = false;
        let base = compile(&net, &chip, &opts);
        assert!(base.layers.iter().all(|l| l.effective_ghz == chip.freq_ghz));
    }
}
