//! A small LSTM trained over the emulated numerics, with the gate
//! non-linearities computed by the SFU's *approximated* sigmoid/tanh
//! (paper §III-B) — demonstrating that the fast approximations suffice
//! for recurrent training, the workload class the suite's LSTM/BiLSTM
//! benchmarks represent.

use crate::backend::{Backend, OperandRole};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rapid_numerics::sfu::{self, SfuAccuracy};
use rapid_numerics::Tensor;

/// Which non-linearity implementation the cell uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMath {
    /// Exact `f32` sigmoid/tanh (reference).
    Exact,
    /// The SFU's fast approximations.
    SfuFast,
    /// The SFU's accurate (refined) approximations.
    SfuAccurate,
}

impl GateMath {
    fn sigmoid(&self, x: f32) -> f32 {
        match self {
            GateMath::Exact => 1.0 / (1.0 + (-x).exp()),
            GateMath::SfuFast => sfu::sigmoid(x, SfuAccuracy::Fast),
            GateMath::SfuAccurate => sfu::sigmoid(x, SfuAccuracy::Accurate),
        }
    }

    fn tanh(&self, x: f32) -> f32 {
        match self {
            GateMath::Exact => x.tanh(),
            GateMath::SfuFast => sfu::tanh(x, SfuAccuracy::Fast),
            GateMath::SfuAccurate => sfu::tanh(x, SfuAccuracy::Accurate),
        }
    }
}

/// A single-layer LSTM classifier over binary sequences: the task is
/// sequence parity (count of ones mod 2) — impossible without state, so a
/// converging model proves the recurrence works.
#[derive(Debug, Clone)]
pub struct LstmNet {
    hidden: usize,
    // Gate weights [input+hidden, 4*hidden] and bias (i, f, g, o order).
    w: Tensor,
    b: Vec<f32>,
    // Classifier head [hidden, 2].
    head: Tensor,
    gates: GateMath,
}

impl LstmNet {
    /// Builds a 1-in, `hidden`-state LSTM with a 2-class head.
    pub fn new(hidden: usize, gates: GateMath, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = 1 + hidden;
        let scale = (1.0 / fan_in as f32).sqrt();
        let w = Tensor::from_fn(vec![fan_in, 4 * hidden], |_| {
            scale * rng.gen_range(-1.0f32..1.0)
        });
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias starts at 1.0, the standard trick.
        for f in b.iter_mut().skip(hidden).take(hidden) {
            *f = 1.0;
        }
        let head = Tensor::from_fn(vec![hidden, 2], |_| 0.5 * rng.gen_range(-1.0f32..1.0));
        Self { hidden, w, b, head, gates }
    }

    /// Runs the LSTM over a batch of sequences `[n][t]` of ±1 inputs and
    /// returns logits `[n, 2]` plus the cached per-step state needed for
    /// BPTT: `(logits, xs, hs, cs, gate_acts)`.
    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        backend: &dyn Backend,
        seqs: &[Vec<f32>],
    ) -> (Tensor, Vec<Tensor>, Vec<Tensor>, Vec<Tensor>, Vec<Tensor>) {
        let n = seqs.len();
        let t_len = seqs[0].len();
        let h = self.hidden;
        let mut hs = vec![Tensor::zeros(vec![n, h])];
        let mut cs = vec![Tensor::zeros(vec![n, h])];
        let mut xs = Vec::new();
        let mut gate_acts = Vec::new();
        for t in 0..t_len {
            // Concatenate [x_t, h_{t-1}] as [n, 1+h].
            let mut xin = Tensor::zeros(vec![n, 1 + h]);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                xin.set(&[i, 0], seqs[i][t]);
                for j in 0..h {
                    xin.set(&[i, 1 + j], hs[t].get(&[i, j]));
                }
            }
            let mut z = backend.matmul(&xin, &self.w, (OperandRole::Data, OperandRole::Data));
            for r in 0..n {
                for c2 in 0..4 * h {
                    let v = z.get(&[r, c2]) + self.b[c2];
                    z.set(&[r, c2], v);
                }
            }
            // Gates.
            let mut ht = Tensor::zeros(vec![n, h]);
            let mut ct = Tensor::zeros(vec![n, h]);
            let mut acts = Tensor::zeros(vec![n, 4 * h]);
            for r in 0..n {
                for j in 0..h {
                    let i_g = self.gates.sigmoid(z.get(&[r, j]));
                    let f_g = self.gates.sigmoid(z.get(&[r, h + j]));
                    let g_g = self.gates.tanh(z.get(&[r, 2 * h + j]));
                    let o_g = self.gates.sigmoid(z.get(&[r, 3 * h + j]));
                    let c_new = f_g * cs[t].get(&[r, j]) + i_g * g_g;
                    ct.set(&[r, j], c_new);
                    ht.set(&[r, j], o_g * self.gates.tanh(c_new));
                    acts.set(&[r, j], i_g);
                    acts.set(&[r, h + j], f_g);
                    acts.set(&[r, 2 * h + j], g_g);
                    acts.set(&[r, 3 * h + j], o_g);
                }
            }
            xs.push(xin);
            gate_acts.push(acts);
            hs.push(ht);
            cs.push(ct);
        }
        let logits = backend.matmul(
            &hs[t_len],
            &self.head,
            (OperandRole::Data, OperandRole::Data),
        );
        (logits, xs, hs, cs, gate_acts)
    }

    /// Classification accuracy on sequences with parity labels.
    pub fn accuracy(&self, backend: &dyn Backend, seqs: &[Vec<f32>], labels: &[usize]) -> f64 {
        let (logits, ..) = self.forward(backend, seqs);
        let mut correct = 0;
        for (i, &l) in labels.iter().enumerate() {
            let pred = usize::from(logits.get(&[i, 1]) > logits.get(&[i, 0]));
            if pred == l {
                correct += 1;
            }
        }
        correct as f64 / labels.len().max(1) as f64
    }

    /// One BPTT + SGD step over a batch. Gate derivatives use the exact
    /// forms evaluated at the (approximated) forward activations — the
    /// standard practice when the forward path runs on approximate
    /// hardware.
    pub fn train_step(
        &mut self,
        backend: &dyn Backend,
        seqs: &[Vec<f32>],
        labels: &[usize],
        lr: f32,
    ) -> f64 {
        let n = seqs.len();
        let t_len = seqs[0].len();
        let h = self.hidden;
        let (logits, xs, hs, cs, gate_acts) = self.forward(backend, seqs);
        let (loss, grad0) = crate::mlp::softmax_cross_entropy(&logits, labels);
        let grad_logits = grad0.map(|v| v / n as f32);

        // Head gradients.
        let dhead = backend.matmul(
            &hs[t_len].transposed(),
            &grad_logits,
            (OperandRole::Data, OperandRole::Error),
        );
        let mut dh = backend.matmul(
            &grad_logits,
            &self.head.transposed(),
            (OperandRole::Error, OperandRole::Data),
        );
        for (wv, g) in self.head.as_mut_slice().iter_mut().zip(dhead.as_slice()) {
            *wv -= lr * g;
        }

        // BPTT.
        let mut dc = Tensor::zeros(vec![n, h]);
        let mut dw = Tensor::zeros(vec![1 + h, 4 * h]);
        let mut db = vec![0.0f32; 4 * h];
        for t in (0..t_len).rev() {
            let acts = &gate_acts[t];
            let mut dz = Tensor::zeros(vec![n, 4 * h]);
            let mut dh_next = Tensor::zeros(vec![n, h]);
            for r in 0..n {
                for j in 0..h {
                    let i_g = acts.get(&[r, j]);
                    let f_g = acts.get(&[r, h + j]);
                    let g_g = acts.get(&[r, 2 * h + j]);
                    let o_g = acts.get(&[r, 3 * h + j]);
                    let c_new = cs[t + 1].get(&[r, j]);
                    let tanh_c = self.gates.tanh(c_new);
                    let dht = dh.get(&[r, j]);
                    let dct = dc.get(&[r, j]) + dht * o_g * (1.0 - tanh_c * tanh_c);
                    // Gate pre-activation gradients.
                    dz.set(&[r, j], dct * g_g * i_g * (1.0 - i_g));
                    dz.set(&[r, h + j], dct * cs[t].get(&[r, j]) * f_g * (1.0 - f_g));
                    dz.set(&[r, 2 * h + j], dct * i_g * (1.0 - g_g * g_g));
                    dz.set(&[r, 3 * h + j], dht * tanh_c * o_g * (1.0 - o_g));
                    dc.set(&[r, j], dct * f_g);
                }
            }
            // Accumulate weight gradients and propagate into h_{t-1}.
            let dwt = backend.matmul(
                &xs[t].transposed(),
                &dz,
                (OperandRole::Data, OperandRole::Error),
            );
            for (acc, g) in dw.as_mut_slice().iter_mut().zip(dwt.as_slice()) {
                *acc += g;
            }
            for r in 0..n {
                #[allow(clippy::needless_range_loop)]
                for c2 in 0..4 * h {
                    db[c2] += dz.get(&[r, c2]);
                }
            }
            let dxin = backend.matmul(
                &dz,
                &self.w.transposed(),
                (OperandRole::Error, OperandRole::Data),
            );
            for r in 0..n {
                for j in 0..h {
                    dh_next.set(&[r, j], dxin.get(&[r, 1 + j]));
                }
            }
            dh = dh_next;
        }
        for (wv, g) in self.w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
            *wv -= lr * g;
        }
        for (bv, g) in self.b.iter_mut().zip(&db) {
            *bv -= lr * g;
        }
        loss
    }
}

/// Generates `n` random ±1 sequences of length `t` with parity labels.
pub fn parity_sequences(n: usize, t: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let bits: Vec<bool> = (0..t).map(|_| rng.gen_bool(0.5)).collect();
        labels.push(bits.iter().filter(|&&b| b).count() % 2);
        seqs.push(bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect());
    }
    (seqs, labels)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::backend::{Fp32Backend, Hfp8Backend};

    fn train(gates: GateMath, backend: &dyn Backend, epochs: usize) -> f64 {
        let (seqs, labels) = parity_sequences(96, 5, 17);
        let mut net = LstmNet::new(12, gates, 4);
        for _ in 0..epochs {
            net.train_step(backend, &seqs, &labels, 1.2);
        }
        net.accuracy(backend, &seqs, &labels)
    }

    #[test]
    fn exact_lstm_learns_parity() {
        let acc = train(GateMath::Exact, &Fp32Backend, 500);
        assert!(acc > 0.95, "exact lstm accuracy {acc}");
    }

    /// §III-B: the SFU's fast approximations of sigmoid/tanh are accurate
    /// enough to train recurrent models.
    #[test]
    fn sfu_fast_gates_match_exact() {
        let exact = train(GateMath::Exact, &Fp32Backend, 500);
        let fast = train(GateMath::SfuFast, &Fp32Backend, 500);
        assert!(fast > exact - 0.05, "sfu-fast {fast} vs exact {exact}");
    }

    /// HFP8 GEMMs + SFU-approximated gates: the full RaPiD recurrent path.
    #[test]
    fn hfp8_lstm_with_sfu_gates_learns() {
        let acc = train(GateMath::SfuAccurate, &Hfp8Backend::default(), 500);
        assert!(acc > 0.9, "hfp8+sfu lstm accuracy {acc}");
    }

    #[test]
    fn parity_task_needs_state() {
        // Sanity: a 0-step "memoryless" readout cannot beat chance — check
        // the label distribution is balanced so accuracy 0.95 is earned.
        let (_, labels) = parity_sequences(512, 6, 21);
        let ones = labels.iter().sum::<usize>() as f64 / labels.len() as f64;
        assert!((ones - 0.5).abs() < 0.1, "parity labels imbalanced: {ones}");
    }
}
