//! Numeric execution backends: which arithmetic the GEMMs run through.
//!
//! The HFP8 training scheme (paper §II-B, Fig 3) assigns formats per
//! *operand role*: data tensors (weights, activations) use FP8 (1,4,3);
//! error tensors use FP8 (1,5,2). The backend maps each GEMM's operand
//! roles onto the right emulated pipeline, with chunk-based FP16
//! accumulation throughout.

use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::{matmul_emulated_checked, matmul_f32_checked};
use rapid_numerics::{NumericsError, Tensor};

/// Role of a GEMM operand in the training dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandRole {
    /// Weights or activations: FP8 (1,4,3) in HFP8 mode.
    Data,
    /// Back-propagated errors: FP8 (1,5,2) in HFP8 mode.
    Error,
}

/// A numeric backend for the reference trainer.
pub trait Backend {
    /// `a [m,k] × b [k,n]` with the given operand roles.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] when the operands are not
    /// conformable matrices.
    fn try_matmul(
        &self,
        a: &Tensor,
        b: &Tensor,
        roles: (OperandRole, OperandRole),
    ) -> Result<Tensor, NumericsError>;

    /// [`Backend::try_matmul`] that panics on incompatible shapes —
    /// convenient inside training loops whose shapes are static.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes are incompatible.
    #[allow(clippy::expect_used)] // documented panic on bad shapes
    fn matmul(&self, a: &Tensor, b: &Tensor, roles: (OperandRole, OperandRole)) -> Tensor {
        self.try_matmul(a, b, roles).expect("incompatible matmul shapes")
    }

    /// Backend label for reports.
    fn name(&self) -> &'static str;
}

/// Exact FP32 reference backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp32Backend;

impl Backend for Fp32Backend {
    fn try_matmul(
        &self,
        a: &Tensor,
        b: &Tensor,
        _roles: (OperandRole, OperandRole),
    ) -> Result<Tensor, NumericsError> {
        matmul_f32_checked(a, b)
    }

    fn name(&self) -> &'static str {
        "fp32"
    }
}

/// DLFloat16 backend with chunked accumulation (the RaPiD FP16 baseline).
#[derive(Debug, Clone, Copy)]
pub struct Fp16Backend {
    /// MPE accumulation chunk length.
    pub chunk_len: usize,
}

impl Default for Fp16Backend {
    fn default() -> Self {
        Self { chunk_len: 64 }
    }
}

impl Backend for Fp16Backend {
    fn try_matmul(
        &self,
        a: &Tensor,
        b: &Tensor,
        _roles: (OperandRole, OperandRole),
    ) -> Result<Tensor, NumericsError> {
        matmul_emulated_checked(FmaMode::Fp16, a, b, self.chunk_len).map(|(c, _)| c)
    }

    fn name(&self) -> &'static str {
        "fp16"
    }
}

/// Hybrid-FP8 backend: (1,4,3) for data operands, (1,5,2) for error
/// operands, merged at the FP16 adder with chunked accumulation — exactly
/// the MPE's FPU pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Hfp8Backend {
    /// MPE accumulation chunk length.
    pub chunk_len: usize,
}

impl Default for Hfp8Backend {
    fn default() -> Self {
        Self { chunk_len: 64 }
    }
}

impl Backend for Hfp8Backend {
    fn try_matmul(
        &self,
        a: &Tensor,
        b: &Tensor,
        roles: (OperandRole, OperandRole),
    ) -> Result<Tensor, NumericsError> {
        use OperandRole::{Data, Error};
        match roles {
            (Data, Data) => matmul_emulated_checked(FmaMode::hfp8_fwd_default(), a, b, self.chunk_len)
                .map(|(c, _)| c),
            (Data, Error) => matmul_emulated_checked(FmaMode::hfp8_bwd_default(), a, b, self.chunk_len)
                .map(|(c, _)| c),
            // The pipeline takes (1,4,3) on port A; compute the transpose
            // to present the error operand on port B: C = A×B = (BᵀAᵀ)ᵀ.
            (Error, Data) => {
                if a.shape().len() != 2 || b.shape().len() != 2 {
                    return Err(NumericsError::ShapeMismatch {
                        expected: "rank-2 operands".to_string(),
                        actual: format!("a {:?} × b {:?}", a.shape(), b.shape()),
                    });
                }
                let ct = matmul_emulated_checked(
                    FmaMode::hfp8_bwd_default(),
                    &b.transposed(),
                    &a.transposed(),
                    self.chunk_len,
                )?
                .0;
                Ok(ct.transposed())
            }
            // Error × error products do not occur in the HFP8 dataflow;
            // fall back to the wider-range format on both ports.
            (Error, Error) => matmul_emulated_checked(FmaMode::hfp8_bwd_default(), a, b, self.chunk_len)
                .map(|(c, _)| c),
        }
    }

    fn name(&self) -> &'static str {
        "hfp8"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_numerics::gemm::matmul_f32;

    fn mats() -> (Tensor, Tensor) {
        (
            Tensor::random_uniform(vec![4, 8], -1.0, 1.0, 31),
            Tensor::random_uniform(vec![8, 4], -1.0, 1.0, 32),
        )
    }

    #[test]
    fn fp32_backend_is_exact() {
        let (a, b) = mats();
        let r = Fp32Backend.matmul(&a, &b, (OperandRole::Data, OperandRole::Data));
        assert_eq!(r, matmul_f32(&a, &b));
    }

    #[test]
    fn hfp8_backend_tracks_reference() {
        let (a, b) = mats();
        let exact = matmul_f32(&a, &b);
        for roles in [
            (OperandRole::Data, OperandRole::Data),
            (OperandRole::Data, OperandRole::Error),
            (OperandRole::Error, OperandRole::Data),
        ] {
            let r = Hfp8Backend::default().matmul(&a, &b, roles);
            assert!(r.max_rel_diff(&exact) < 0.15, "{roles:?}: {}", r.max_rel_diff(&exact));
        }
    }

    #[test]
    fn try_matmul_surfaces_shape_errors() {
        use rapid_numerics::NumericsError;
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let backends: [&dyn Backend; 3] =
            [&Fp32Backend, &Fp16Backend::default(), &Hfp8Backend::default()];
        for be in backends {
            for roles in [
                (OperandRole::Data, OperandRole::Data),
                (OperandRole::Error, OperandRole::Data),
            ] {
                assert!(
                    matches!(
                        be.try_matmul(&a, &b, roles),
                        Err(NumericsError::ShapeMismatch { .. })
                    ),
                    "{} {roles:?}",
                    be.name()
                );
            }
        }
    }

    #[test]
    fn error_data_equals_transposed_data_error() {
        // (Error, Data) is computed via the transpose identity; verify it
        // against a direct construction.
        let (a, b) = mats();
        let be = Hfp8Backend::default();
        let r1 = be.matmul(&a, &b, (OperandRole::Error, OperandRole::Data));
        let r2 = be
            .matmul(&b.transposed(), &a.transposed(), (OperandRole::Data, OperandRole::Error))
            .transposed();
        assert_eq!(r1, r2);
    }
}
