//! # rapid-refnet
//!
//! A minimal reference training framework over the emulated RaPiD
//! numerics, used to demonstrate end-to-end that the chip's arithmetic
//! recipes work (experiment E10):
//!
//! * **HFP8 training parity** — an MLP trained with the Hybrid-FP8 GEMM
//!   pipeline (FP8 (1,4,3) data / (1,5,2) errors, FP16 chunked
//!   accumulation, FP32 master weights) reaches the same accuracy as FP32
//!   training (paper §II-B, refs [44, 45]).
//! * **INT4/INT2 post-training quantization** — SaWB-binned weights and
//!   PACT-style calibrated activations running on the emulated FXU integer
//!   pipeline lose negligible accuracy at 4 bits and a small amount at
//!   2 bits (paper §II-C, refs [42, 46]).
//!
//! The datasets are synthetic (the paper's training corpora are not
//! redistributable); the arithmetic paths exercised are identical.
//!
//! # Example
//!
//! ```
//! use rapid_refnet::backend::{Fp32Backend, Hfp8Backend};
//! use rapid_refnet::data::gaussian_blobs;
//! use rapid_refnet::mlp::{train, Mlp, TrainConfig};
//!
//! let data = gaussian_blobs(256, 3, 8, 0.3, 7);
//! let mut model = Mlp::new(&[8, 16, 3], 0);
//! let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
//! let acc = train(&mut model, &Hfp8Backend::default(), &data, &cfg);
//! assert!(acc > 0.5); // learns well past chance in a few epochs
//! ```

pub mod backend;
pub mod conv;
pub mod data;
pub mod lstm;
pub mod mlp;
pub mod qat;
pub mod quantized;

pub use backend::{Backend, Fp16Backend, Fp32Backend, Hfp8Backend, OperandRole};
pub use data::{gaussian_blobs, two_spirals, Dataset};
pub use mlp::{softmax_cross_entropy, train, Mlp, TrainConfig};
pub use conv::{pattern_images, Conv2d, TinyCnn};
pub use lstm::{parity_sequences, GateMath, LstmNet};
pub use qat::{train_qat, QatConfig, QatMlp};
pub use quantized::QuantizedMlp;
