//! A small multilayer perceptron with backpropagation, generic over the
//! numeric backend. Master weights are FP32 (as in the HFP8 recipe: the
//! optimizer keeps full-precision copies, the GEMMs see low precision).

use crate::backend::{Backend, OperandRole};
use crate::data::Dataset;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rapid_numerics::{NumericsError, Tensor};

/// One dense layer's parameters and cached forward state.
#[derive(Debug, Clone)]
struct Dense {
    w: Tensor, // [in, out], FP32 master copy
    b: Vec<f32>,
    input: Tensor,     // cached for backward
    pre_act: Tensor,   // cached pre-activation
}

/// A ReLU MLP classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// SGD learning rate.
    pub lr: f32,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.1, epochs: 40, batch: 32 }
    }
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[16, 32, 4]` for a
    /// 16-feature input, one 32-unit hidden layer and 4 classes.
    /// He-initialized from the seed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for win in widths.windows(2) {
            let (fan_in, fan_out) = (win[0], win[1]);
            let scale = (2.0 / fan_in as f32).sqrt();
            let w = Tensor::from_fn(vec![fan_in, fan_out], |_| {
                let u1: f32 = rng.gen_range(1e-6f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            });
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                input: Tensor::default(),
                pre_act: Tensor::default(),
            });
        }
        Self { layers }
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to a layer's weight matrix `[in, out]`.
    pub fn weights(&self, layer: usize) -> &Tensor {
        &self.layers[layer].w
    }

    /// Replaces a layer's weights (used by post-training quantization).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn set_weights(&mut self, layer: usize, w: Tensor) {
        assert_eq!(self.layers[layer].w.shape(), w.shape(), "weight shape mismatch");
        self.layers[layer].w = w;
    }

    /// Immutable access to a layer's bias vector.
    pub fn biases(&self, layer: usize) -> &[f32] {
        &self.layers[layer].b
    }

    /// Replaces a layer's biases (used by checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn set_biases(&mut self, layer: usize, b: Vec<f32>) {
        assert_eq!(self.layers[layer].b.len(), b.len(), "bias length mismatch");
        self.layers[layer].b = b;
    }

    /// Forward pass producing logits `[n, classes]`; caches activations
    /// for a subsequent backward pass.
    ///
    /// # Panics
    ///
    /// Panics if a backend GEMM fails; use [`Mlp::try_forward`] to surface
    /// numerics errors (guard trips, shape mismatches) instead.
    pub fn forward(&mut self, backend: &dyn Backend, x: &Tensor) -> Tensor {
        #[allow(clippy::expect_used)]
        self.try_forward(backend, x).expect("forward GEMM failed")
    }

    /// [`Mlp::forward`], surfacing backend GEMM failures — a guarded
    /// backend under fault injection returns
    /// [`NumericsError::NonFinite`](rapid_numerics::NumericsError) here
    /// instead of panicking, which is what the recovery layer's
    /// skip/backoff loop catches. A failed forward leaves the parameters
    /// untouched (only the activation caches may be partially updated).
    ///
    /// # Errors
    ///
    /// Propagates the first failing GEMM's [`NumericsError`].
    pub fn try_forward(
        &mut self,
        backend: &dyn Backend,
        x: &Tensor,
    ) -> Result<Tensor, NumericsError> {
        let depth = self.layers.len();
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.input = cur.clone();
            let mut z = backend.try_matmul(&cur, &layer.w, (OperandRole::Data, OperandRole::Data))?;
            let out = z.shape()[1];
            for r in 0..z.shape()[0] {
                for c in 0..out {
                    let v = z.get(&[r, c]) + layer.b[c];
                    z.set(&[r, c], v);
                }
            }
            layer.pre_act = z.clone();
            cur = if i + 1 < depth { z.map(|v| v.max(0.0)) } else { z };
        }
        Ok(cur)
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, backend: &dyn Backend, x: &Tensor) -> Tensor {
        let depth = self.layers.len();
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = backend.matmul(&cur, &layer.w, (OperandRole::Data, OperandRole::Data));
            let out = z.shape()[1];
            for r in 0..z.shape()[0] {
                for c in 0..out {
                    let v = z.get(&[r, c]) + layer.b[c];
                    z.set(&[r, c], v);
                }
            }
            cur = if i + 1 < depth { z.map(|v| v.max(0.0)) } else { z };
        }
        cur
    }

    /// Backward pass from the loss gradient w.r.t. the logits; applies SGD
    /// immediately (FP32 master weights).
    ///
    /// # Panics
    ///
    /// Panics if a backend GEMM fails; use [`Mlp::try_backward_sgd`] to
    /// surface numerics errors instead.
    pub fn backward_sgd(&mut self, backend: &dyn Backend, grad_logits: &Tensor, lr: f32) {
        #[allow(clippy::expect_used)]
        self.try_backward_sgd(backend, grad_logits, lr).expect("backward GEMM failed")
    }

    /// [`Mlp::backward_sgd`], surfacing backend GEMM failures.
    ///
    /// Updates are applied layer by layer as the error propagates, so a
    /// mid-backward failure leaves the model **partially updated** —
    /// callers that need step atomicity (the recovery layer) snapshot the
    /// parameters before the step and restore on `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing GEMM's [`NumericsError`].
    pub fn try_backward_sgd(
        &mut self,
        backend: &dyn Backend,
        grad_logits: &Tensor,
        lr: f32,
    ) -> Result<(), NumericsError> {
        let mut grad = grad_logits.clone();
        for i in (0..self.layers.len()).rev() {
            let is_output = i + 1 == self.layers.len();
            if !is_output {
                // ReLU backward through the cached pre-activation.
                let pre = &self.layers[i].pre_act;
                grad = Tensor::from_fn(grad.shape().to_vec(), |j| {
                    if pre.as_slice()[j] > 0.0 {
                        grad.as_slice()[j]
                    } else {
                        0.0
                    }
                });
            }
            // dW = Xᵀ (Data) × dY (Error); dX = dY (Error) × Wᵀ (Data).
            let xt = self.layers[i].input.transposed();
            let dw = backend.try_matmul(&xt, &grad, (OperandRole::Data, OperandRole::Error))?;
            let dx = backend.try_matmul(
                &grad,
                &self.layers[i].w.transposed(),
                (OperandRole::Error, OperandRole::Data),
            )?;
            let n = grad.shape()[0] as f32;
            // Bias gradient (column sums) and SGD update in FP32.
            let out = self.layers[i].w.shape()[1];
            for c in 0..out {
                let db: f32 = (0..grad.shape()[0]).map(|r| grad.get(&[r, c])).sum();
                self.layers[i].b[c] -= lr * db / n;
            }
            let w = &mut self.layers[i].w;
            for (wv, &g) in w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
                *wv -= lr * g / n;
            }
            grad = dx;
        }
        Ok(())
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, backend: &dyn Backend, data: &Dataset) -> f64 {
        let logits = self.infer(backend, &data.x);
        let classes = data.classes;
        let mut correct = 0usize;
        for (i, &label) in data.y.iter().enumerate() {
            let mut best = 0usize;
            for c in 1..classes {
                if logits.get(&[i, c]) > logits.get(&[i, best]) {
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / data.len().max(1) as f64
    }
}

/// Softmax cross-entropy: returns `(mean loss, gradient w.r.t. logits)`.
/// The loss math runs in FP32, mirroring the SFU's higher-precision
/// auxiliary path.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(n, labels.len(), "label count must match batch");
    let mut grad = Tensor::zeros(vec![n, c]);
    let mut loss = 0.0f64;
    for i in 0..n {
        let row: Vec<f32> = (0..c).map(|j| logits.get(&[i, j])).collect();
        let max = row.iter().cloned().fold(f32::MIN, f32::max);
        let exps: Vec<f64> = row.iter().map(|&v| f64::from(v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        loss -= (exps[labels[i]] / sum).ln();
        #[allow(clippy::needless_range_loop)]
        for j in 0..c {
            let p = (exps[j] / sum) as f32;
            let t = if j == labels[i] { 1.0 } else { 0.0 };
            grad.set(&[i, j], p - t);
        }
    }
    (loss / n as f64, grad)
}

/// Trains an MLP on a dataset with plain SGD; returns the final training
/// accuracy.
pub fn train(mlp: &mut Mlp, backend: &dyn Backend, data: &Dataset, cfg: &TrainConfig) -> f64 {
    for _ in 0..cfg.epochs {
        let mut start = 0;
        while start < data.len() {
            let end = (start + cfg.batch).min(data.len());
            let (bx, by) = data.batch(start, end);
            let logits = mlp.forward(backend, &bx);
            let (_, grad) = softmax_cross_entropy(&logits, by);
            mlp.backward_sgd(backend, &grad, cfg.lr);
            start = end;
        }
    }
    mlp.accuracy(backend, data)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::backend::{Fp16Backend, Fp32Backend, Hfp8Backend};
    use crate::data::gaussian_blobs;

    fn blobs() -> Dataset {
        gaussian_blobs(512, 4, 16, 0.35, 42)
    }

    #[test]
    fn fp32_training_converges() {
        let data = blobs();
        let mut mlp = Mlp::new(&[16, 32, 4], 1);
        let acc = train(&mut mlp, &Fp32Backend, &data, &TrainConfig::default());
        assert!(acc > 0.95, "fp32 accuracy {acc}");
    }

    /// E10: the HFP8 parity claim — 8-bit training reaches accuracy
    /// equivalent to FP32 (paper §II-B, refs [44, 45]).
    #[test]
    fn hfp8_training_matches_fp32() {
        let data = blobs();
        let mut fp32 = Mlp::new(&[16, 32, 4], 1);
        let a32 = train(&mut fp32, &Fp32Backend, &data, &TrainConfig::default());
        let mut hfp8 = Mlp::new(&[16, 32, 4], 1);
        let a8 = train(&mut hfp8, &Hfp8Backend::default(), &data, &TrainConfig::default());
        assert!(a8 > a32 - 0.03, "hfp8 {a8} vs fp32 {a32}");
    }

    #[test]
    fn fp16_training_matches_fp32() {
        let data = blobs();
        let mut fp16 = Mlp::new(&[16, 32, 4], 1);
        let a16 = train(&mut fp16, &Fp16Backend::default(), &data, &TrainConfig::default());
        assert!(a16 > 0.93, "fp16 accuracy {a16}");
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss > 0.0);
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| grad.get(&[i, j])).sum();
            assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Verify backprop on a tiny FP32 model via central differences.
        let data = gaussian_blobs(8, 2, 3, 0.3, 9);
        let mut mlp = Mlp::new(&[3, 4, 2], 2);
        let eps = 1e-3f32;
        // Analytic gradient of W0[0,0]: replicate backward_sgd's dW but
        // without the update, via a unit learning rate trick on a clone.
        let loss_at = |m: &mut Mlp, delta: f32| {
            let mut w = m.weights(0).clone();
            let orig = w.as_slice()[0];
            w.as_mut_slice()[0] = orig + delta;
            m.set_weights(0, w);
            let logits = m.forward(&Fp32Backend, &data.x);
            let (l, _) = softmax_cross_entropy(&logits, &data.y);
            let mut w = m.weights(0).clone();
            w.as_mut_slice()[0] = orig;
            m.set_weights(0, w);
            l
        };
        let lp = loss_at(&mut mlp, eps);
        let lm = loss_at(&mut mlp, -eps);
        let numeric = ((lp - lm) / (2.0 * f64::from(eps))) as f32;
        // Analytic: run one backward with lr so that Δw = -lr·g, recover g.
        let mut probe = mlp.clone();
        let logits = probe.forward(&Fp32Backend, &data.x);
        let (_, grad) = softmax_cross_entropy(&logits, &data.y);
        let before = probe.weights(0).as_slice()[0];
        probe.backward_sgd(&Fp32Backend, &grad, 1.0);
        let analytic = before - probe.weights(0).as_slice()[0];
        assert!(
            (numeric - analytic).abs() < 2e-3,
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}
