//! Quantization-aware training with PACT + SaWB (paper §II-C): the
//! clipping level α is *learned during model training independently for
//! each layer*, weights are fake-quantized with SaWB in the forward pass,
//! and the straight-through estimator carries gradients through the
//! quantizers. "Both PACT and SaWB have little/no impact on the model
//! training time."

use crate::backend::{Backend, Fp32Backend, OperandRole};
use crate::data::Dataset;
use crate::mlp::softmax_cross_entropy;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rapid_numerics::int::IntFormat;
use rapid_numerics::{NumericsError, Tensor};
use rapid_quant::pact::Pact;
use rapid_quant::sawb::sawb_quantize;

/// QAT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QatConfig {
    /// Weight/bias learning rate.
    pub lr: f32,
    /// PACT α learning rate.
    pub alpha_lr: f32,
    /// PACT α weight decay (regularizes the range downward).
    pub alpha_decay: f32,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for QatConfig {
    fn default() -> Self {
        Self { lr: 0.1, alpha_lr: 0.01, alpha_decay: 0.001, epochs: 40, batch: 32 }
    }
}

/// A quantization-aware MLP: FP32 master weights, SaWB-fake-quantized
/// forward weights and PACT hidden activations at the target format.
#[derive(Debug, Clone)]
pub struct QatMlp {
    ws: Vec<Tensor>, // [in, out] master weights
    bs: Vec<Vec<f32>>,
    pacts: Vec<Pact>, // one per hidden layer
    format: IntFormat,
}

impl QatMlp {
    /// Builds a QAT model with the given layer widths.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], format: IntFormat, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = Vec::new();
        let mut bs = Vec::new();
        for win in widths.windows(2) {
            let scale = (2.0 / win[0] as f32).sqrt();
            ws.push(Tensor::from_fn(vec![win[0], win[1]], |_| {
                let u1: f32 = rng.gen_range(1e-6f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            }));
            bs.push(vec![0.0; win[1]]);
        }
        let pacts = (0..widths.len() - 2).map(|_| Pact::new(4.0, format)).collect();
        Self { ws, bs, pacts, format }
    }

    /// Learned PACT clipping levels, one per hidden layer.
    pub fn alphas(&self) -> Vec<f32> {
        self.pacts.iter().map(Pact::alpha).collect()
    }

    /// Replaces the PACT clipping levels (used by checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the count differs or any level is not positive and finite.
    pub fn set_alphas(&mut self, alphas: &[f32]) {
        assert_eq!(alphas.len(), self.pacts.len(), "alpha count mismatch");
        for (p, &a) in self.pacts.iter_mut().zip(alphas) {
            p.set_alpha(a);
        }
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.ws.len()
    }

    /// Immutable access to a layer's FP32 master weights `[in, out]`.
    pub fn weights(&self, layer: usize) -> &Tensor {
        &self.ws[layer]
    }

    /// Replaces a layer's master weights (used by checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn set_weights(&mut self, layer: usize, w: Tensor) {
        assert_eq!(self.ws[layer].shape(), w.shape(), "weight shape mismatch");
        self.ws[layer] = w;
    }

    /// Immutable access to a layer's bias vector.
    pub fn biases(&self, layer: usize) -> &[f32] {
        &self.bs[layer]
    }

    /// Replaces a layer's biases (used by checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn set_biases(&mut self, layer: usize, b: Vec<f32>) {
        assert_eq!(self.bs[layer].len(), b.len(), "bias length mismatch");
        self.bs[layer] = b;
    }

    /// The quantization format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Quantized forward pass (what the deployed INT model computes).
    ///
    /// # Panics
    ///
    /// Panics if a GEMM fails (cannot happen with the FP32 backend and
    /// conformable shapes).
    pub fn forward(&self, x: &Tensor) -> (Tensor, Vec<Tensor>, Vec<Tensor>) {
        #[allow(clippy::expect_used)]
        self.try_forward_with(&Fp32Backend, x).expect("QAT forward GEMM failed")
    }

    /// [`QatMlp::forward`] through an arbitrary numeric backend — the HFP8
    /// emulated pipeline, or a guarded backend under fault injection —
    /// surfacing GEMM failures instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates the first failing GEMM's [`NumericsError`].
    #[allow(clippy::type_complexity)]
    pub fn try_forward_with(
        &self,
        be: &dyn Backend,
        x: &Tensor,
    ) -> Result<(Tensor, Vec<Tensor>, Vec<Tensor>), NumericsError> {
        let depth = self.ws.len();
        let mut pre = Vec::new(); // pre-activations per layer
        let mut acts = vec![x.clone()]; // layer inputs
        let mut cur = x.clone();
        for i in 0..depth {
            let qw = sawb_quantize(&self.ws[i], self.format);
            let mut z = be.try_matmul(&cur, &qw, (OperandRole::Data, OperandRole::Data))?;
            for r in 0..z.shape()[0] {
                for c in 0..self.bs[i].len() {
                    let v = z.get(&[r, c]) + self.bs[i][c];
                    z.set(&[r, c], v);
                }
            }
            pre.push(z.clone());
            cur = if i + 1 < depth { self.pacts[i].forward(&z) } else { z };
            if i + 1 < depth {
                acts.push(cur.clone());
            }
        }
        Ok((cur, pre, acts))
    }

    /// Classification accuracy of the quantized forward pass.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let (logits, _, _) = self.forward(&data.x);
        let mut correct = 0usize;
        for (i, &label) in data.y.iter().enumerate() {
            let mut best = 0;
            for c in 1..data.classes {
                if logits.get(&[i, c]) > logits.get(&[i, best]) {
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / data.len().max(1) as f64
    }

    /// One QAT step on a batch — STE through the quantizers, SGD on the
    /// FP32 masters, PACT α updates from the clipped-region gradients —
    /// through an arbitrary backend with gradients scaled by `loss_scale`
    /// (the update divides it back out), surfacing GEMM failures instead
    /// of panicking.
    ///
    /// On `Err` the model may be **partially updated** (the backward pass
    /// applies SGD inline per layer); resilient callers snapshot parameters
    /// before the step and restore on failure.
    ///
    /// # Errors
    ///
    /// Propagates the first failing GEMM's [`NumericsError`].
    pub fn try_step_with(
        &mut self,
        be: &dyn Backend,
        bx: &Tensor,
        by: &[usize],
        cfg: &QatConfig,
        loss_scale: f32,
    ) -> Result<(), NumericsError> {
        let (logits, pre, acts) = self.try_forward_with(be, bx)?;
        let (_, grad0) = softmax_cross_entropy(&logits, by);
        let n = bx.shape()[0] as f32;
        let lr = cfg.lr / loss_scale;
        let mut grad = grad0.map(|v| v * loss_scale / n);
        for i in (0..self.ws.len()).rev() {
            let is_output = i + 1 == self.ws.len();
            if !is_output {
                // PACT backward: STE inside the clip window, α gradient
                // from the clipped region.
                let (dx, dalpha) = self.pacts[i].backward(&pre[i], &grad);
                self.pacts[i].update_alpha(dalpha / loss_scale, cfg.alpha_lr, cfg.alpha_decay);
                grad = dx;
            }
            // STE for SaWB weights: gradient w.r.t. the master equals the
            // gradient w.r.t. the quantized weights.
            let dw =
                be.try_matmul(&acts[i].transposed(), &grad, (OperandRole::Data, OperandRole::Error))?;
            let qw = sawb_quantize(&self.ws[i], self.format);
            let dx =
                be.try_matmul(&grad, &qw.transposed(), (OperandRole::Error, OperandRole::Data))?;
            for c in 0..self.bs[i].len() {
                let db: f32 = (0..grad.shape()[0]).map(|r| grad.get(&[r, c])).sum();
                self.bs[i][c] -= lr * db;
            }
            for (wv, g) in self.ws[i].as_mut_slice().iter_mut().zip(dw.as_slice()) {
                *wv -= lr * g;
            }
            grad = dx;
        }
        Ok(())
    }
}

/// Trains a QAT model; returns the final quantized training accuracy.
pub fn train_qat(model: &mut QatMlp, data: &Dataset, cfg: &QatConfig) -> f64 {
    train_qat_with(model, &Fp32Backend, data, cfg)
}

/// [`train_qat`] through an arbitrary numeric backend (e.g. the emulated
/// HFP8 pipeline). GEMM failures panic here; use
/// [`QatMlp::try_step_with`] directly (as `rapid::recover` does) when the
/// backend can legitimately fail.
///
/// # Panics
///
/// Panics if a GEMM fails under the given backend.
pub fn train_qat_with(
    model: &mut QatMlp,
    be: &dyn Backend,
    data: &Dataset,
    cfg: &QatConfig,
) -> f64 {
    for _ in 0..cfg.epochs {
        let mut start = 0;
        while start < data.len() {
            let end = (start + cfg.batch).min(data.len());
            let (bx, by) = data.batch(start, end);
            #[allow(clippy::expect_used)]
            model.try_step_with(be, &bx, by, cfg, 1.0).expect("QAT step GEMM failed");
            start = end;
        }
    }
    model.accuracy(data)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;
    use crate::mlp::{train, Mlp, TrainConfig};
    use crate::quantized::QuantizedMlp;

    #[test]
    fn int4_qat_matches_fp32() {
        let data = gaussian_blobs(512, 4, 16, 0.35, 42);
        let mut fp = Mlp::new(&[16, 32, 4], 1);
        let acc_fp = train(&mut fp, &crate::backend::Fp32Backend, &data, &TrainConfig::default());
        let mut qat = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
        let acc_q = train_qat(&mut qat, &data, &QatConfig::default());
        assert!(acc_q > acc_fp - 0.03, "int4 qat {acc_q} vs fp32 {acc_fp}");
    }

    /// The PACT/SaWB headline: *training* with the quantizers in the loop
    /// recovers the accuracy PTQ loses at 2 bits (paper §II-C).
    #[test]
    fn int2_qat_beats_int2_ptq() {
        let data = gaussian_blobs(512, 4, 16, 0.5, 43);
        // PTQ baseline.
        let mut fp = Mlp::new(&[16, 32, 4], 2);
        let _ = train(&mut fp, &crate::backend::Fp32Backend, &data, &TrainConfig::default());
        let ptq = QuantizedMlp::quantize(&fp, IntFormat::Int2, &data).accuracy(&data);
        // QAT.
        let mut qat = QatMlp::new(&[16, 32, 4], IntFormat::Int2, 2);
        let qat_acc = train_qat(&mut qat, &data, &QatConfig::default());
        assert!(
            qat_acc >= ptq - 1e-9,
            "int2 qat {qat_acc} should not lose to ptq {ptq}"
        );
        assert!(qat_acc > 0.8, "int2 qat {qat_acc} should be strong");
    }

    #[test]
    fn alphas_are_learned_per_layer() {
        let data = gaussian_blobs(256, 4, 16, 0.35, 44);
        let mut qat = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 3);
        let before = qat.alphas();
        let _ = train_qat(&mut qat, &data, &QatConfig { epochs: 10, ..Default::default() });
        let after = qat.alphas();
        assert_eq!(before.len(), 1);
        assert_ne!(before, after, "alpha must move during training");
        assert!(after[0] > 0.0);
    }
}
