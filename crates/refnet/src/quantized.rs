//! Post-training quantization of a trained MLP to INT4/INT2 using SaWB
//! (weights) and PACT-style calibrated clipping (activations), running
//! inference through the FXU's integer pipeline.

use crate::backend::{Backend, Fp32Backend};
use crate::data::Dataset;
use crate::mlp::Mlp;
use rapid_numerics::gemm::matmul_int_checked;
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::{NumericsError, Tensor};
use rapid_quant::sawb::sawb_params;

/// A quantized model: per-layer SaWB weight parameters and calibrated
/// activation clipping levels.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    model: Mlp,
    format: IntFormat,
    weight_params: Vec<QuantParams>,
    act_params: Vec<QuantParams>,
    chunk_len: usize,
}

impl QuantizedMlp {
    /// Quantizes a trained model, calibrating activation ranges on
    /// `calib` (a representative data sample), as PTQ flows do.
    pub fn quantize(model: &Mlp, format: IntFormat, calib: &Dataset) -> Self {
        let depth = model.depth();
        let mut weight_params = Vec::with_capacity(depth);
        for i in 0..depth {
            weight_params.push(sawb_params(model.weights(i), format));
        }
        // Calibrate per-layer input ranges with an FP32 pass, tracking the
        // 99.7th-percentile magnitude as the PACT-style clip.
        let mut act_params = Vec::with_capacity(depth);
        let mut cur = calib.x.clone();
        for i in 0..depth {
            let clip = percentile_abs(&cur, 0.997).max(1e-6);
            // First-layer features are signed; hidden activations are
            // post-ReLU and use the unsigned grid.
            let signed = if i == 0 { Signedness::Signed } else { Signedness::Unsigned };
            act_params.push(QuantParams::from_abs_max(format, signed, clip));
            let z = Fp32Backend.matmul(
                &cur,
                model.weights(i),
                (crate::backend::OperandRole::Data, crate::backend::OperandRole::Data),
            );
            cur = if i + 1 < depth { z.map(|v| v.max(0.0)) } else { z };
        }
        Self {
            model: model.clone(),
            format,
            weight_params,
            act_params,
            chunk_len: 64,
        }
    }

    /// The integer format in use.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Integer-pipeline inference: every GEMM executes as quantized codes
    /// with INT16-chunk/INT32 accumulation, exactly like the FXU.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, features]` for the model's input width;
    /// use [`QuantizedMlp::try_infer`] to get an error instead.
    #[allow(clippy::expect_used)] // documented panic; try_infer is the fallible path
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.try_infer(x).expect("input shape incompatible with the model")
    }

    /// [`QuantizedMlp::infer`], surfacing malformed inputs as an error.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] when `x` does not conform
    /// with the first layer's weights.
    pub fn try_infer(&self, x: &Tensor) -> Result<Tensor, NumericsError> {
        let depth = self.model.depth();
        let mut cur = x.clone();
        for i in 0..depth {
            let (z, _stats) = matmul_int_checked(
                &cur,
                self.model.weights(i),
                self.act_params[i],
                self.weight_params[i],
                self.chunk_len,
            )?;
            cur = if i + 1 < depth { z.map(|v| v.max(0.0)) } else { z };
        }
        Ok(cur)
    }

    /// Classification accuracy of the quantized model.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let logits = self.infer(&data.x);
        let mut correct = 0usize;
        for (i, &label) in data.y.iter().enumerate() {
            let mut best = 0usize;
            for c in 1..data.classes {
                if logits.get(&[i, c]) > logits.get(&[i, best]) {
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / data.len().max(1) as f64
    }
}

/// Approximate `q`-quantile of |x|.
fn percentile_abs(x: &Tensor, q: f64) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f32> = x.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(f32::total_cmp);
    let idx = ((mags.len() as f64 - 1.0) * q).round() as usize;
    mags[idx]
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;
    use crate::mlp::{train, TrainConfig};

    fn trained() -> (Mlp, Dataset) {
        let data = gaussian_blobs(512, 4, 16, 0.35, 42);
        let mut mlp = Mlp::new(&[16, 32, 4], 1);
        let acc = train(&mut mlp, &Fp32Backend, &data, &TrainConfig::default());
        assert!(acc > 0.95);
        (mlp, data)
    }

    /// E10: INT4 inference with PACT+SaWB loses negligible accuracy
    /// (paper §II-C: "4-bit inference with negligible loss in accuracy").
    #[test]
    fn int4_ptq_has_negligible_loss() {
        let (mlp, data) = trained();
        let fp = mlp.accuracy(&Fp32Backend, &data);
        let q = QuantizedMlp::quantize(&mlp, IntFormat::Int4, &data);
        let qa = q.accuracy(&data);
        assert!(qa > fp - 0.02, "int4 {qa} vs fp32 {fp}");
    }

    /// E10: INT2 shows a small but visible loss (paper: "2-bit inference
    /// with minimal accuracy loss (≈2%)").
    #[test]
    fn int2_ptq_loses_a_little_more() {
        let (mlp, data) = trained();
        let fp = mlp.accuracy(&Fp32Backend, &data);
        let q2 = QuantizedMlp::quantize(&mlp, IntFormat::Int2, &data);
        let a2 = q2.accuracy(&data);
        // Still far above the 25% chance level, but below INT4.
        assert!(a2 > 0.5, "int2 collapsed to {a2}");
        assert!(a2 <= fp + 1e-9, "int2 {a2} should not beat fp32 {fp}");
        let q4 = QuantizedMlp::quantize(&mlp, IntFormat::Int4, &data);
        assert!(q4.accuracy(&data) >= a2, "int4 should be at least as good as int2");
    }

    #[test]
    fn try_infer_rejects_bad_input_width() {
        let (mlp, data) = trained();
        let q = QuantizedMlp::quantize(&mlp, IntFormat::Int4, &data);
        let bad = Tensor::zeros(vec![3, 7]);
        assert!(matches!(q.try_infer(&bad), Err(NumericsError::ShapeMismatch { .. })));
    }

    #[test]
    fn calibration_clip_ignores_outliers() {
        let x = Tensor::from_fn(vec![1000], |i| if i == 0 { 100.0 } else { 1.0 });
        let p = percentile_abs(&x, 0.997);
        assert_eq!(p, 1.0);
    }
}
