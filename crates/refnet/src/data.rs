//! Synthetic classification datasets (substitute for the proprietary
//! training data; the numerics are exercised identically).

use rand::{rngs::StdRng, Rng, SeedableRng};
use rapid_numerics::Tensor;

/// A labelled dataset: features `[n, dim]` and class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix `[n, dim]`.
    pub x: Tensor,
    /// Class label per row.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.shape()[1]
    }

    /// Extracts rows `[start, end)` as a batch.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn batch(&self, start: usize, end: usize) -> (Tensor, &[usize]) {
        assert!(start <= end && end <= self.len(), "batch range out of bounds");
        let dim = self.dim();
        let rows = end - start;
        let data = self.x.as_slice()[start * dim..end * dim].to_vec();
        (Tensor::from_vec(vec![rows, dim], data), &self.y[start..end])
    }
}

/// Gaussian blobs: `classes` clusters with random centres in `[-2, 2]^dim`
/// and isotropic noise `spread`.
pub fn gaussian_blobs(n: usize, classes: usize, dim: usize, spread: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        .collect();
    let mut x = Vec::with_capacity(n * dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        #[allow(clippy::needless_range_loop)]
        for d in 0..dim {
            // Box-Muller normal noise.
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            x.push(centres[c][d] + spread * z);
        }
        y.push(c);
    }
    Dataset { x: Tensor::from_vec(vec![n, dim], x), y, classes }
}

/// Two interleaved spirals (binary, nonlinearly separable) in 2-D,
/// embedded into `dim` dimensions with random projections.
pub fn two_spirals(n: usize, dim: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let proj: Vec<f32> = (0..2 * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut x = Vec::with_capacity(n * dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 2;
        let t = (i / 2) as f32 / (n / 2).max(1) as f32 * 3.0 * std::f32::consts::PI + 0.5;
        let sign = if c == 0 { 1.0 } else { -1.0 };
        let px = sign * t.cos() * t / 10.0 + noise * rng.gen_range(-1.0f32..1.0);
        let py = sign * t.sin() * t / 10.0 + noise * rng.gen_range(-1.0f32..1.0);
        for d in 0..dim {
            x.push(px * proj[2 * d] + py * proj[2 * d + 1]);
        }
        y.push(c);
    }
    Dataset { x: Tensor::from_vec(vec![n, dim], x), y, classes: 2 }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_labels() {
        let d = gaussian_blobs(100, 4, 8, 0.2, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 8);
        assert_eq!(d.classes, 4);
        assert!(d.y.iter().all(|&c| c < 4));
    }

    #[test]
    fn batch_extraction() {
        let d = gaussian_blobs(10, 2, 3, 0.1, 2);
        let (bx, by) = d.batch(4, 7);
        assert_eq!(bx.shape(), &[3, 3]);
        assert_eq!(by.len(), 3);
        assert_eq!(bx.get(&[0, 0]), d.x.get(&[4, 0]));
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(gaussian_blobs(50, 3, 4, 0.3, 7), gaussian_blobs(50, 3, 4, 0.3, 7));
        assert_eq!(two_spirals(50, 4, 0.01, 7), two_spirals(50, 4, 0.01, 7));
    }

    #[test]
    #[should_panic(expected = "batch range out of bounds")]
    fn bad_batch_panics() {
        let d = gaussian_blobs(10, 2, 3, 0.1, 3);
        let _ = d.batch(8, 12);
    }
}
