//! A small convolutional network with backpropagation (im2col-based),
//! generic over the numeric backend — exercises the same Conv → GEMM
//! lowering the accelerator's dataflow performs (Fig 5).

use crate::backend::{Backend, OperandRole};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rapid_numerics::gemm::{im2col_into, ConvSpec};
use rapid_numerics::Tensor;

/// One convolution layer `[ci, h, w] → [co, ho, wo]` with cached forward
/// state for backprop.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Weights `[co, ci, k, k]` (FP32 master copy).
    w: Tensor,
    bias: Vec<f32>,
    spec: ConvSpec,
    k: usize,
    // Cached forward state.
    cols: Tensor,     // [n*ho*wo, ci*k*k]
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(ci: usize, co: usize, k: usize, spec: ConvSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / (ci * k * k) as f32).sqrt();
        let w = Tensor::from_fn(vec![co, ci, k, k], |_| {
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        });
        Self {
            w,
            bias: vec![0.0; co],
            spec,
            k,
            cols: Tensor::default(),
            in_shape: Vec::new(),
            out_hw: (0, 0),
        }
    }

    /// The weight tensor `[co, ci, k, k]`.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// Forward: `x [n, ci, h, w] → [n, co, ho, wo]`, caching the im2col
    /// matrix for backward.
    pub fn forward(&mut self, backend: &dyn Backend, x: &Tensor) -> Tensor {
        let (n, _ci, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let ho = self.spec.out_dim(h, self.k);
        let wo = self.spec.out_dim(w, self.k);
        self.in_shape = x.shape().to_vec();
        self.out_hw = (ho, wo);
        // Lower into the cached scratch so per-step training passes reuse
        // the im2col allocation instead of reallocating it.
        im2col_into(x, self.k, self.k, self.spec, &mut self.cols);
        let co = self.w.shape()[0];
        let wmat = self
            .w
            .clone()
            .reshape(vec![co, self.cols.shape()[1]])
            .unwrap_or_else(|_| unreachable!("weight reshape is size-preserving"))
            .transposed(); // [ci*k*k, co]
        let flat = backend.matmul(&self.cols, &wmat, (OperandRole::Data, OperandRole::Data));
        // [n*ho*wo, co] → [n, co, ho, wo] with bias.
        let mut out = Tensor::zeros(vec![n, co, ho, wo]);
        for ni in 0..n {
            for oy in 0..ho {
                for ox in 0..wo {
                    let row = (ni * ho + oy) * wo + ox;
                    for c in 0..co {
                        out.set(&[ni, c, oy, ox], flat.get(&[row, c]) + self.bias[c]);
                    }
                }
            }
        }
        out
    }

    /// Backward from `grad_out [n, co, ho, wo]`; applies SGD at `lr` and
    /// returns the input gradient.
    pub fn backward_sgd(&mut self, backend: &dyn Backend, grad_out: &Tensor, lr: f32) -> Tensor {
        let (n, co) = (grad_out.shape()[0], grad_out.shape()[1]);
        let (ho, wo) = self.out_hw;
        let rows = n * ho * wo;
        // Flatten grad to [rows, co].
        let mut gflat = Tensor::zeros(vec![rows, co]);
        for ni in 0..n {
            for oy in 0..ho {
                for ox in 0..wo {
                    let row = (ni * ho + oy) * wo + ox;
                    for c in 0..co {
                        gflat.set(&[row, c], grad_out.get(&[ni, c, oy, ox]));
                    }
                }
            }
        }
        // dW = colsᵀ × dY, shaped [ci*k*k, co].
        let dw = backend.matmul(
            &self.cols.transposed(),
            &gflat,
            (OperandRole::Data, OperandRole::Error),
        );
        // dCols = dY × Wᵀ  ([rows, ci*k*k]).
        let colsw = self.w.shape()[1] * self.k * self.k;
        let wmat = self
            .w
            .clone()
            .reshape(vec![co, colsw])
            .unwrap_or_else(|_| unreachable!("weight reshape is size-preserving"));
        let dcols = backend.matmul(&gflat, &wmat, (OperandRole::Error, OperandRole::Data));
        // Fold dCols back to the input (col2im).
        let (ci, h, w) = (self.in_shape[1], self.in_shape[2], self.in_shape[3]);
        let mut dx = Tensor::zeros(self.in_shape.clone());
        for ni in 0..n {
            for oy in 0..ho {
                for ox in 0..wo {
                    let row = (ni * ho + oy) * wo + ox;
                    for c in 0..ci {
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = (oy * self.spec.stride + ky) as isize
                                    - self.spec.pad as isize;
                                let ix = (ox * self.spec.stride + kx) as isize
                                    - self.spec.pad as isize;
                                if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                    continue;
                                }
                                let col = (c * self.k + ky) * self.k + kx;
                                let v = dx.get(&[ni, c, iy as usize, ix as usize])
                                    + dcols.get(&[row, col]);
                                dx.set(&[ni, c, iy as usize, ix as usize], v);
                            }
                        }
                    }
                }
            }
        }
        // SGD on FP32 master weights (dW is [ci*k*k, co]; W is [co, ci,
        // k, k]). The caller pre-normalizes the upstream gradient, so the
        // raw sums are applied directly.
        for c in 0..co {
            let db: f32 = (0..rows).map(|r| gflat.get(&[r, c])).sum();
            self.bias[c] -= lr * db;
        }
        let wslice = self.w.as_mut_slice();
        for c in 0..co {
            for j in 0..colsw {
                wslice[c * colsw + j] -= lr * dw.get(&[j, c]);
            }
        }
        dx
    }
}

/// A tiny CNN classifier: Conv → ReLU → Conv → ReLU → global-avg-pool →
/// dense, trained with the provided backend.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    head_w: Tensor, // [c2, classes]
    head_b: Vec<f32>,
    // Cached state.
    a1: Tensor,
    a2: Tensor,
    pooled: Tensor,
}

impl TinyCnn {
    /// Builds the CNN for `ci`-channel inputs and `classes` outputs.
    pub fn new(ci: usize, c1: usize, c2: usize, classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let scale = (2.0 / c2 as f32).sqrt();
        Self {
            conv1: Conv2d::new(ci, c1, 3, ConvSpec { stride: 1, pad: 1 }, seed),
            conv2: Conv2d::new(c1, c2, 3, ConvSpec { stride: 1, pad: 1 }, seed + 1),
            head_w: Tensor::from_fn(vec![c2, classes], |_| {
                scale * (rng.gen_range(-0.5f32..0.5))
            }),
            head_b: vec![0.0; classes],
            a1: Tensor::default(),
            a2: Tensor::default(),
            pooled: Tensor::default(),
        }
    }

    /// Forward to logits `[n, classes]`.
    pub fn forward(&mut self, backend: &dyn Backend, x: &Tensor) -> Tensor {
        let z1 = self.conv1.forward(backend, x);
        self.a1 = z1.map(|v| v.max(0.0));
        let z2 = self.conv2.forward(backend, &self.a1);
        self.a2 = z2.map(|v| v.max(0.0));
        // Global average pool to [n, c2].
        let (n, c2, h, w) = (
            self.a2.shape()[0],
            self.a2.shape()[1],
            self.a2.shape()[2],
            self.a2.shape()[3],
        );
        let mut pooled = Tensor::zeros(vec![n, c2]);
        for ni in 0..n {
            for c in 0..c2 {
                let mut s = 0.0;
                for y in 0..h {
                    for x2 in 0..w {
                        s += self.a2.get(&[ni, c, y, x2]);
                    }
                }
                pooled.set(&[ni, c], s / (h * w) as f32);
            }
        }
        self.pooled = pooled.clone();
        let mut logits =
            backend.matmul(&pooled, &self.head_w, (OperandRole::Data, OperandRole::Data));
        for r in 0..n {
            for c in 0..self.head_b.len() {
                let v = logits.get(&[r, c]) + self.head_b[c];
                logits.set(&[r, c], v);
            }
        }
        logits
    }

    /// Backward + SGD from the loss gradient on the logits (the gradient
    /// of the *total* loss; it is normalized to the mean here once).
    pub fn backward_sgd(&mut self, backend: &dyn Backend, grad_logits: &Tensor, lr: f32) {
        let n = grad_logits.shape()[0];
        let classes = self.head_b.len();
        let g = grad_logits.map(|v| v / n as f32);
        // Head gradients.
        let dw = backend.matmul(
            &self.pooled.transposed(),
            &g,
            (OperandRole::Data, OperandRole::Error),
        );
        let dpooled = backend.matmul(
            &g,
            &self.head_w.transposed(),
            (OperandRole::Error, OperandRole::Data),
        );
        for c in 0..classes {
            let db: f32 = (0..n).map(|r| g.get(&[r, c])).sum();
            self.head_b[c] -= lr * db;
        }
        for (wv, gr) in self.head_w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
            *wv -= lr * gr;
        }
        // Spread the pooled gradient back over the feature map + ReLU mask.
        let (c2, h, w) = (self.a2.shape()[1], self.a2.shape()[2], self.a2.shape()[3]);
        let mut da2 = Tensor::zeros(self.a2.shape().to_vec());
        let inv_hw = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for c in 0..c2 {
                let g = dpooled.get(&[ni, c]) * inv_hw;
                for y in 0..h {
                    for x2 in 0..w {
                        if self.a2.get(&[ni, c, y, x2]) > 0.0 {
                            da2.set(&[ni, c, y, x2], g);
                        }
                    }
                }
            }
        }
        let da1_pre = self.conv2.backward_sgd(backend, &da2, lr);
        let da1 = Tensor::from_fn(da1_pre.shape().to_vec(), |i| {
            if self.a1.as_slice()[i] > 0.0 {
                da1_pre.as_slice()[i]
            } else {
                0.0
            }
        });
        let _ = self.conv1.backward_sgd(backend, &da1, lr);
    }

    /// Classification accuracy on image data `[n, ci, h, w]` with labels.
    pub fn accuracy(&mut self, backend: &dyn Backend, x: &Tensor, y: &[usize]) -> f64 {
        let logits = self.forward(backend, x);
        let classes = self.head_b.len();
        let mut correct = 0;
        for (i, &label) in y.iter().enumerate() {
            let mut best = 0;
            for c in 1..classes {
                if logits.get(&[i, c]) > logits.get(&[i, best]) {
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / y.len().max(1) as f64
    }
}

/// Synthetic image-classification task: each class is a distinct *texture*
/// (horizontal stripes, vertical stripes, checkerboard, diagonal bands)
/// plus noise, `[n, 1, 8, 8]` — textures are locally detectable by small
/// convolution kernels and survive global average pooling.
pub fn pattern_images(n: usize, classes: usize, noise: f32, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor::zeros(vec![n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        let phase = rng.gen_range(0usize..2); // random shift: position is no cue
        for yy in 0..8 {
            for xx in 0..8 {
                let base = match c % 4 {
                    0 => ((yy + phase) % 2) as f32,                    // horizontal stripes
                    1 => ((xx + phase) % 2) as f32,                    // vertical stripes
                    2 => ((yy + xx + phase) % 2) as f32,               // checkerboard
                    _ => f32::from(u8::from((yy + 2 * xx + phase) % 4 < 2)), // diagonal bands
                };
                let v = base + noise * rng.gen_range(-1.0f32..1.0);
                x.set(&[i, 0, yy, xx], v);
            }
        }
        y.push(c);
    }
    (x, y)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::backend::{Fp32Backend, Hfp8Backend};

    fn train_cnn(backend: &dyn Backend, epochs: usize) -> f64 {
        let (x, y) = pattern_images(128, 4, 0.15, 9);
        let mut cnn = TinyCnn::new(1, 4, 8, 4, 3);
        for _ in 0..epochs {
            let logits = cnn.forward(backend, &x);
            let (_, grad) = crate::mlp::softmax_cross_entropy(&logits, &y);
            cnn.backward_sgd(backend, &grad, 0.5);
        }
        cnn.accuracy(backend, &x, &y)
    }

    #[test]
    fn fp32_cnn_learns_patterns() {
        let acc = train_cnn(&Fp32Backend, 60);
        assert!(acc > 0.9, "fp32 cnn accuracy {acc}");
    }

    #[test]
    fn hfp8_cnn_matches_fp32() {
        let a32 = train_cnn(&Fp32Backend, 60);
        let a8 = train_cnn(&Hfp8Backend::default(), 60);
        assert!(a8 > a32 - 0.06, "hfp8 {a8} vs fp32 {a32}");
        assert!(a8 > 0.85, "hfp8 cnn accuracy {a8}");
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let (x, y) = pattern_images(8, 4, 0.1, 11);
        let mut cnn = TinyCnn::new(1, 2, 3, 4, 5);
        // Numeric gradient of one conv1 weight.
        let eps = 1e-3f32;
        let loss = |cnn: &mut TinyCnn, delta: f32| {
            let orig = cnn.conv1.w.as_slice()[0];
            cnn.conv1.w.as_mut_slice()[0] = orig + delta;
            let logits = cnn.forward(&Fp32Backend, &x);
            let (l, _) = crate::mlp::softmax_cross_entropy(&logits, &y);
            cnn.conv1.w.as_mut_slice()[0] = orig;
            l
        };
        let num = ((loss(&mut cnn, eps) - loss(&mut cnn, -eps)) / (2.0 * f64::from(eps)))
            as f32;
        // Analytic via a unit-lr probe.
        let mut probe = cnn.clone();
        let logits = probe.forward(&Fp32Backend, &x);
        let (_, grad) = crate::mlp::softmax_cross_entropy(&logits, &y);
        let before = probe.conv1.w.as_slice()[0];
        probe.backward_sgd(&Fp32Backend, &grad, 1.0);
        let analytic = before - probe.conv1.w.as_slice()[0];
        assert!(
            (num - analytic).abs() < 3e-3,
            "numeric {num} vs analytic {analytic}"
        );
    }

    #[test]
    fn pattern_images_are_deterministic_and_labeled() {
        let (x1, y1) = pattern_images(16, 4, 0.1, 3);
        let (x2, y2) = pattern_images(16, 4, 0.1, 3);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|&c| c < 4));
    }
}
