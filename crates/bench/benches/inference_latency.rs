//! Criterion bench behind Fig 13: time to compile + evaluate batch-1
//! inference for representative benchmarks at each precision (the harness
//! itself must stay fast enough for design-space exploration, §IV-B).

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_model::cost::ModelConfig;
use rapid_model::inference::evaluate_inference;
use rapid_workloads::suite::benchmark;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    let mut g = c.benchmark_group("fig13_inference_model");
    for name in ["resnet50", "mobilenetv1", "bert"] {
        let net = benchmark(name).expect("known benchmark");
        for p in [Precision::Fp16, Precision::Int4] {
            g.bench_function(BenchmarkId::new(name, p.to_string()), |b| {
                b.iter(|| {
                    let plan = compile(&net, &chip, &CompileOptions::for_precision(p));
                    black_box(evaluate_inference(&net, &plan, &chip, 1, &cfg))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
