//! Criterion bench behind E11: ring-simulator throughput for unicast,
//! multicast and aggregated memory reads.

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, Criterion};
use rapid_ring::sim::{memory_read, multicast, unicast, RingSim};
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let bytes = 16 * 1024u32;
    c.bench_function("ring_unicast_16k", |b| {
        b.iter(|| {
            let mut sim = RingSim::new(4, 20);
            unicast(&mut sim, 1, 0, 2, bytes);
            black_box(sim.run_until_idle(1_000_000).expect("drains"))
        })
    });
    c.bench_function("ring_multicast_16k_3consumers", |b| {
        b.iter(|| {
            let mut sim = RingSim::new(4, 20);
            multicast(&mut sim, 1, 0, &[1, 2, 3], bytes);
            black_box(sim.run_until_idle(1_000_000).expect("drains"))
        })
    });
    c.bench_function("ring_memory_multicast_16k_4cores", |b| {
        b.iter(|| {
            let mut sim = RingSim::new(4, 20);
            memory_read(&mut sim, 1, &[0, 1, 2, 3], bytes);
            black_box(sim.run_until_idle(1_000_000).expect("drains"))
        })
    });
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
