//! Criterion bench behind Fig 15: the training-step evaluator on the
//! 4 × 32-core system at FP16 and HFP8.

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rapid_arch::geometry::SystemConfig;
use rapid_arch::precision::Precision;
use rapid_model::cost::ModelConfig;
use rapid_model::training::evaluate_training;
use rapid_workloads::suite::benchmark;
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let sys = SystemConfig::training_4x32();
    let cfg = ModelConfig::default();
    let mut g = c.benchmark_group("fig15_training_model");
    for name in ["resnet50", "bert"] {
        let net = benchmark(name).expect("known benchmark");
        for p in [Precision::Fp16, Precision::Hfp8] {
            g.bench_function(BenchmarkId::new(name, p.to_string()), |b| {
                b.iter(|| black_box(evaluate_training(&net, &sys, p, 512, &cfg)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
