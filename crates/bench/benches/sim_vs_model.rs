//! Criterion bench behind the E9 calibration: cycle-simulating a GEMM vs
//! evaluating the analytical mapping for the same shape (the model must be
//! orders of magnitude cheaper — that is why the compiler's DSE uses it).

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, Criterion};
use rapid_arch::geometry::CoreletConfig;
use rapid_arch::precision::Precision;
use rapid_compiler::mapping::map_layer;
use rapid_numerics::Tensor;
use rapid_sim::gemm::{CoreSim, GemmJob};
use rapid_workloads::graph::Op;
use std::hint::black_box;

fn bench_sim_vs_model(c: &mut Criterion) {
    let (m, k, n) = (16usize, 128usize, 128usize);
    let core = CoreSim::rapid();
    let job = GemmJob {
        a: Tensor::random_uniform(vec![m, k], -1.0, 1.0, 1),
        b: Tensor::random_uniform(vec![k, n], -1.0, 1.0, 2),
        precision: Precision::Fp16,
    };
    c.bench_function("cycle_simulator_gemm_16x128x128", |b| {
        b.iter(|| black_box(core.run_gemm(black_box(&job))))
    });
    let op = Op::Gemm { m: m as u64, k: k as u64, n: n as u64, weighted: true };
    let corelet = CoreletConfig::default();
    c.bench_function("analytical_mapping_gemm_16x128x128", |b| {
        b.iter(|| black_box(map_layer(black_box(&op), Precision::Fp16, 1, &corelet, 2)))
    });
}

criterion_group!(benches, bench_sim_vs_model);
criterion_main!(benches);
