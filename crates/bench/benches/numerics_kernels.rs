//! Criterion bench for the numerics substrate: quantization, FMA pipeline
//! and chunked accumulation hot paths, plus scalar-vs-fastpath GEMM
//! throughput at simulator-relevant sizes (the gate for the fast-path
//! speedup claims — see DESIGN.md "Performance engineering").

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rapid_numerics::accumulate::dot_chunked;
use rapid_numerics::fma::{fma, FmaMode};
use rapid_numerics::format::FpFormat;
use rapid_numerics::gemm::{
    matmul_emulated, matmul_emulated_scalar, matmul_int, matmul_int_scalar,
};
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::Tensor;
use std::hint::black_box;

fn bench_numerics(c: &mut Criterion) {
    let fmt = FpFormat::fp8_e4m3();
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.01 - 20.0).collect();

    let mut g = c.benchmark_group("numerics");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("quantize_fp8_e4m3_4096", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(fmt.quantize(black_box(x)));
            }
        })
    });
    g.bench_function("fma_hfp8_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &xs {
                acc = fma(FmaMode::hfp8_fwd_default(), acc, black_box(x), 0.5).acc;
            }
            black_box(acc)
        })
    });
    let a: Vec<f32> = xs.iter().map(|&x| fmt.quantize(x * 0.01)).collect();
    let b2: Vec<f32> = xs.iter().map(|&x| fmt.quantize(0.3 - x * 0.005)).collect();
    g.bench_function("dot_chunked_hfp8_4096", |b| {
        b.iter(|| black_box(dot_chunked(FmaMode::hfp8_fwd_default(), &a, &b2, 64)))
    });
    g.finish();
}

/// Scalar reference vs fast-path GEMM at the 128×128×128 size the core
/// simulator and refnet sweeps live at. The two variants are bit-exact
/// (see `fastpath_bitexact`), so the throughput ratio is a pure
/// implementation speedup.
fn bench_gemm_fastpath(c: &mut Criterion) {
    const M: usize = 128;
    const K: usize = 128;
    const N: usize = 128;
    const CHUNK: usize = 64;
    let a = Tensor::random_uniform(vec![M, K], -1.0, 1.0, 901);
    let b = Tensor::random_uniform(vec![K, N], -1.0, 1.0, 902);
    let macs = (M * K * N) as u64;

    let float_modes: [(&str, FmaMode); 2] =
        [("fp16", FmaMode::Fp16), ("hfp8", FmaMode::hfp8_fwd_default())];
    for (name, mode) in float_modes {
        let mut g = c.benchmark_group(format!("gemm_{name}_128"));
        g.throughput(Throughput::Elements(macs));
        g.bench_function("scalar", |bch| {
            bch.iter(|| black_box(matmul_emulated_scalar(mode, black_box(&a), &b, CHUNK)))
        });
        g.bench_function("fast", |bch| {
            bch.iter(|| black_box(matmul_emulated(mode, black_box(&a), &b, CHUNK)))
        });
        g.finish();
    }

    let int_formats: [(&str, IntFormat); 2] =
        [("int4", IntFormat::Int4), ("int2", IntFormat::Int2)];
    for (name, fmt) in int_formats {
        let qa = QuantParams::from_abs_max(fmt, Signedness::Signed, a.max_abs());
        let qb = QuantParams::from_abs_max(fmt, Signedness::Signed, b.max_abs());
        let mut g = c.benchmark_group(format!("gemm_{name}_128"));
        g.throughput(Throughput::Elements(macs));
        g.bench_function("scalar", |bch| {
            bch.iter(|| black_box(matmul_int_scalar(black_box(&a), &b, qa, qb, CHUNK)))
        });
        g.bench_function("fast", |bch| {
            bch.iter(|| black_box(matmul_int(black_box(&a), &b, qa, qb, CHUNK)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_numerics, bench_gemm_fastpath);
criterion_main!(benches);
