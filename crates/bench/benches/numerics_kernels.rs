//! Criterion bench for the numerics substrate: quantization, FMA pipeline
//! and chunked accumulation hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rapid_numerics::accumulate::dot_chunked;
use rapid_numerics::fma::{fma, FmaMode};
use rapid_numerics::format::FpFormat;
use std::hint::black_box;

fn bench_numerics(c: &mut Criterion) {
    let fmt = FpFormat::fp8_e4m3();
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.01 - 20.0).collect();

    let mut g = c.benchmark_group("numerics");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("quantize_fp8_e4m3_4096", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(fmt.quantize(black_box(x)));
            }
        })
    });
    g.bench_function("fma_hfp8_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &xs {
                acc = fma(FmaMode::hfp8_fwd_default(), acc, black_box(x), 0.5).acc;
            }
            black_box(acc)
        })
    });
    let a: Vec<f32> = xs.iter().map(|&x| fmt.quantize(x * 0.01)).collect();
    let b2: Vec<f32> = xs.iter().map(|&x| fmt.quantize(0.3 - x * 0.005)).collect();
    g.bench_function("dot_chunked_hfp8_4096", |b| {
        b.iter(|| black_box(dot_chunked(FmaMode::hfp8_fwd_default(), &a, &b2, 64)))
    });
    g.finish();
}

criterion_group!(benches, bench_numerics);
criterion_main!(benches);
