//! Criterion bench behind Fig 10: emulated-kernel throughput at each
//! precision, confirming the architected ratios (HFP8 2×, INT4 8× the
//! FP16 MAC rate) hold in the functional pipelines too.

#![allow(clippy::unwrap_used, clippy::expect_used)] // benches fail loudly by design

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::{matmul_emulated, matmul_int};
use rapid_numerics::int::{IntFormat, QuantParams, Signedness};
use rapid_numerics::Tensor;
use std::hint::black_box;

fn bench_peak(c: &mut Criterion) {
    let m = 32;
    let k = 128;
    let n = 64;
    let a = Tensor::random_uniform(vec![m, k], -1.0, 1.0, 1);
    let b = Tensor::random_uniform(vec![k, n], -1.0, 1.0, 2);
    let macs = (m * k * n) as u64;

    let mut g = c.benchmark_group("emulated_gemm");
    g.throughput(Throughput::Elements(macs));
    g.bench_function(BenchmarkId::new("precision", "fp16"), |bch| {
        bch.iter(|| matmul_emulated(FmaMode::Fp16, black_box(&a), black_box(&b), 64))
    });
    g.bench_function(BenchmarkId::new("precision", "hfp8"), |bch| {
        bch.iter(|| {
            matmul_emulated(FmaMode::hfp8_fwd_default(), black_box(&a), black_box(&b), 64)
        })
    });
    let qa = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
    let qb = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
    g.bench_function(BenchmarkId::new("precision", "int4"), |bch| {
        bch.iter(|| matmul_int(black_box(&a), black_box(&b), qa, qb, 64))
    });
    g.finish();
}

criterion_group!(benches, bench_peak);
criterion_main!(benches);
