//! Machine-readable experiment records: every bench binary accepts
//! `--json <path>` and, when given, writes one `rapid-bench-v1` JSON
//! record alongside its human-readable table. `repro_all` passes the flag
//! to each child and aggregates the records into `BENCH_repro.json`;
//! `telemetry_report` renders and validates the aggregate.
//!
//! The record shape (see [`rapid_telemetry::schema`]):
//!
//! ```json
//! {
//!   "schema": "rapid-bench-v1",
//!   "experiment": "fig13_inference",
//!   "config": { "threads": 8, "fault_seed": 7, ... },
//!   "metrics": { "resnet50.int4.speedup_vs_fp16": 5.1, ... },
//!   "wall_ms": 412.6
//! }
//! ```

use rapid_fault::FaultConfig;
use rapid_telemetry::registry::Metric;
use rapid_telemetry::{metrics_path_from_env, openmetrics, Json, MetricsRegistry, BENCH_SCHEMA};
use std::path::PathBuf;
use std::time::Instant;

/// Returns the path following a `--json` flag in this process's argument
/// list, if any (`--json out.json` or `--json=out.json`).
pub fn json_path_from_args() -> Option<PathBuf> {
    json_path_from(std::env::args().skip(1))
}

fn json_path_from(args: impl Iterator<Item = String>) -> Option<PathBuf> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Builder for one experiment's machine-readable record.
///
/// Construction stamps the wall-clock start and the common config header
/// (worker `threads` from `RAPID_THREADS`, `fault_seed` from
/// `RAPID_FAULT_SEED`); the binary adds its own config knobs and metrics
/// as it runs, then calls [`BenchRecord::write_if_requested`] at exit.
#[derive(Debug)]
pub struct BenchRecord {
    experiment: String,
    start: Instant,
    config: Vec<(String, Json)>,
    metrics: Vec<(String, f64)>,
    /// Accumulated native telemetry (counters/gauges/histograms) from
    /// every [`BenchRecord::merge_registry`] call — the OpenMetrics
    /// snapshot source.
    registry: MetricsRegistry,
}

impl BenchRecord {
    /// Starts a record for `experiment` (the binary name by convention)
    /// with the standard config header.
    pub fn new(experiment: &str) -> Self {
        let mut r = Self {
            experiment: experiment.to_string(),
            start: Instant::now(),
            config: Vec::new(),
            metrics: Vec::new(),
            registry: MetricsRegistry::new(),
        };
        r.config_num("threads", crate::num_threads() as f64);
        r.config_num("fault_seed", FaultConfig::seed_from_env(0) as f64);
        // Kernel-dispatch provenance: the resolved RAPID_SIMD knob and
        // what the CPU actually offers, so records from different hosts
        // or env settings are distinguishable after the fact.
        r.config_str("simd_mode", rapid_numerics::SimdMode::from_env().as_str());
        r.put_config("simd_detected", Json::Bool(rapid_numerics::dispatch::simd_available()));
        r
    }

    /// Adds (or overwrites) a numeric config entry.
    pub fn config_num(&mut self, key: &str, value: f64) {
        self.put_config(key, Json::num(value));
    }

    /// Adds (or overwrites) a string config entry.
    pub fn config_str(&mut self, key: &str, value: &str) {
        self.put_config(key, Json::str(value));
    }

    fn put_config(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.config.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.config.push((key.to_string(), value));
        }
    }

    /// Adds (or overwrites) one metric. Non-finite values are skipped so
    /// the record always validates.
    pub fn metric(&mut self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
    }

    /// Folds every counter/gauge/histogram of a telemetry registry into
    /// the metrics map (histograms expand to `.count`/`.sum`/… as in
    /// [`MetricsRegistry::to_json`]).
    pub fn merge_registry(&mut self, reg: &MetricsRegistry) {
        if let Some(entries) = reg.to_json().as_obj() {
            for (k, v) in entries {
                if let Some(x) = v.as_f64() {
                    self.metric(k, x);
                }
            }
        }
        self.registry.merge(reg);
    }

    /// Renders the record as an OpenMetrics text snapshot: every merged
    /// registry metric natively (histograms keep their buckets), plus the
    /// record's scalar metrics as gauges, all labeled with the experiment
    /// name. Scalar metrics shadowed by a native registry entry — or by a
    /// histogram's `.count`/`.sum`/... expansion keys — are skipped so no
    /// family is emitted twice.
    pub fn to_openmetrics(&self) -> String {
        let mut reg = self.registry.clone();
        for (k, v) in &self.metrics {
            if reg.get(k).is_some() {
                continue;
            }
            if let Some((base, _)) = k.rsplit_once('.') {
                if matches!(reg.get(base), Some(Metric::Histogram(_))) {
                    continue;
                }
            }
            reg.set_gauge(k, *v);
        }
        openmetrics::render_labeled(&reg, &[("experiment", &self.experiment)])
    }

    /// Elapsed wall-clock since construction, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Renders the full `rapid-bench-v1` record.
    pub fn to_json(&self) -> Json {
        let metrics: Vec<(String, Json)> =
            self.metrics.iter().map(|(k, v)| (k.clone(), Json::num(*v))).collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::str(BENCH_SCHEMA)),
            ("experiment".to_string(), Json::str(&self.experiment)),
            ("config".to_string(), Json::Obj(self.config.clone())),
            ("metrics".to_string(), Json::Obj(metrics)),
            ("wall_ms".to_string(), Json::num(self.wall_ms())),
        ])
    }

    /// The standard epilogue every bench binary calls last: prints the
    /// uniform wall-clock/threads/seed line, writes the JSON record when
    /// `--json` was passed, and dumps a validated OpenMetrics snapshot
    /// when `RAPID_METRICS=<path>` is set. Exits non-zero if a requested
    /// artifact cannot be written, so it is never silently missing.
    pub fn finish(&self) {
        println!(
            "\n[{}] wall-clock {:.2}s, {} worker threads, fault seed {}",
            self.experiment,
            self.wall_ms() / 1e3,
            crate::num_threads(),
            FaultConfig::seed_from_env(0),
        );
        match self.write_if_requested() {
            Ok(Some(path)) => println!("[{}] wrote {}", self.experiment, path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("[{}] error: cannot write --json record: {e}", self.experiment);
                std::process::exit(1);
            }
        }
        if let Some(path) = metrics_path_from_env() {
            let text = self.to_openmetrics();
            if let Err(e) = openmetrics::validate(&text) {
                eprintln!("[{}] error: OpenMetrics snapshot invalid: {e}", self.experiment);
                std::process::exit(1);
            }
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!(
                    "[{}] error: cannot write RAPID_METRICS snapshot {}: {e}",
                    self.experiment,
                    path.display()
                );
                std::process::exit(1);
            }
            println!("[{}] wrote OpenMetrics snapshot {}", self.experiment, path.display());
        }
    }

    /// Writes the record to the `--json` path when the flag was passed;
    /// a no-op otherwise. Returns the path written to.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be written.
    pub fn write_if_requested(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = json_path_from_args() else { return Ok(None) };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, self.to_json().render())?;
        Ok(Some(path))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rapid_telemetry::validate_bench_record;

    #[test]
    fn record_validates_against_the_schema() {
        let mut r = BenchRecord::new("unit_test");
        r.config_str("suite", "resnet50");
        r.config_num("batch", 1.0);
        r.metric("speedup", 5.25);
        r.metric("dropped", f64::NAN); // skipped, never invalidates
        let j = r.to_json();
        validate_bench_record(&j).expect("record must validate");
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("unit_test"));
        let metrics = j.get("metrics").and_then(Json::as_obj).expect("metrics obj");
        assert_eq!(metrics.len(), 1, "non-finite metric must be dropped");
    }

    #[test]
    fn registry_counters_become_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.add("sim.macs.int4", 640);
        reg.set_gauge("util", 0.5);
        let mut r = BenchRecord::new("unit_test");
        r.merge_registry(&reg);
        let j = r.to_json();
        let metrics = j.get("metrics").and_then(Json::as_obj).expect("metrics obj");
        assert!(metrics.iter().any(|(k, v)| k == "sim.macs.int4" && v.as_f64() == Some(640.0)));
        assert!(metrics.iter().any(|(k, _)| k == "util"));
    }

    #[test]
    fn metric_and_config_overwrite_in_place() {
        let mut r = BenchRecord::new("unit_test");
        r.metric("x", 1.0);
        r.metric("x", 2.0);
        r.config_num("batch", 1.0);
        r.config_num("batch", 8.0);
        let j = r.to_json();
        let metrics = j.get("metrics").and_then(Json::as_obj).expect("metrics");
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].1.as_f64(), Some(2.0));
        let config = j.get("config").and_then(Json::as_obj).expect("config");
        let batch = config.iter().find(|(k, _)| k == "batch").expect("batch");
        assert_eq!(batch.1.as_f64(), Some(8.0));
    }

    #[test]
    fn simd_provenance_is_stamped_into_every_record() {
        let r = BenchRecord::new("unit_test");
        let j = r.to_json();
        let config = j.get("config").and_then(Json::as_obj).expect("config obj");
        let mode = config.iter().find(|(k, _)| k == "simd_mode").expect("simd_mode present");
        assert!(matches!(mode.1.as_str(), Some("auto" | "force" | "off")));
        let detected =
            config.iter().find(|(k, _)| k == "simd_detected").expect("simd_detected present");
        assert!(matches!(detected.1, Json::Bool(_)));
        validate_bench_record(&j).expect("record with simd stamp must validate");
    }

    #[test]
    fn openmetrics_snapshot_validates_and_keeps_histograms_native() {
        let mut reg = MetricsRegistry::new();
        reg.add("serve.submitted", 10);
        reg.observe("serve.latency_us", 900);
        reg.observe("serve.latency_us", 1_800);
        let mut r = BenchRecord::new("unit_test");
        r.merge_registry(&reg);
        r.metric("sweep.goodput_qps", 123.5);
        let text = r.to_openmetrics();
        let doc = rapid_telemetry::validate_openmetrics(&text).expect("snapshot validates");
        assert_eq!(doc.counter("serve_submitted"), Some(10.0));
        assert_eq!(doc.gauge("sweep_goodput_qps"), Some(123.5));
        // The histogram stays native; its fold-derived scalar metrics
        // (`serve.latency_us.count`, ...) must not shadow it as gauges.
        assert_eq!(doc.histogram("serve_latency_us"), Some((2.0, 2700.0)));
        assert!(doc.gauge("serve_latency_us_count").is_none());
    }

    #[test]
    fn json_flag_parses_both_spellings() {
        let argv = |v: &[&str]| json_path_from(v.iter().map(|s| (*s).to_string()));
        assert_eq!(argv(&["--json", "out.json"]), Some(PathBuf::from("out.json")));
        assert_eq!(argv(&["--json=x/y.json"]), Some(PathBuf::from("x/y.json")));
        assert_eq!(argv(&["--other"]), None);
        assert_eq!(argv(&[]), None);
    }
}
