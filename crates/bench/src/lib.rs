//! # rapid-bench
//!
//! The experiment harness: one binary per table/figure in the paper's
//! evaluation (run `cargo run -p rapid-bench --bin <name> --release`), plus
//! Criterion benches under `benches/`. `repro_all` runs every experiment
//! in sequence — its output is the source of EXPERIMENTS.md.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig10_chip_table` | Fig 10 chip specification table |
//! | `fig13_inference` | Fig 13 inference latency & speedups |
//! | `fig14_efficiency` | Fig 14 sustained TOPS/W |
//! | `fig15_training` | Fig 15 training throughput |
//! | `fig16_throttling` | Fig 16 sparsity-aware throttling |
//! | `fig17_breakdown` | Fig 17 INT4 cycle breakdown |
//! | `fig18_scaling` | Fig 18 core/chip scaling |
//! | `fig4c_area_power` | Fig 4(c) FPU/FXU area & power accounting |
//! | `calibration` | §V-A model-calibration claim (E9) |
//! | `numerics_validation` | §II-B/§II-C numerics claims (E10) |
//! | `ring_multicast` | Fig 8 multicast protocol (E11) |
//! | `repro_all` | everything above |

use rapid_arch::precision::Precision;
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_model::cost::ModelConfig;
use rapid_model::inference::{evaluate_inference, InferenceResult};
use rapid_model::training::{evaluate_training, TrainingResult};
use rapid_workloads::graph::Network;
use rapid_workloads::suite::benchmark_suite;

/// Environment variable naming an experiment binary that must fail at its
/// first section heading — a test hook proving the harness degrades
/// gracefully (the `repro_all` table must still complete, with the row
/// marked failed and a non-zero exit code).
pub const FORCE_FAIL_ENV: &str = "RAPID_FORCE_FAIL";

/// Prints a section heading.
///
/// # Panics
///
/// Panics (deliberately) when [`FORCE_FAIL_ENV`] names the currently
/// running binary — the harness-degradation test hook.
pub fn section(title: &str) {
    if let Ok(target) = std::env::var(FORCE_FAIL_ENV) {
        let stem = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()));
        assert!(
            stem.as_deref() != Some(target.as_str()),
            "{FORCE_FAIL_ENV}={target}: forced experiment failure (harness degradation test)"
        );
    }
    println!("\n=== {title} ===");
}

/// Prints a `measured vs paper` comparison line.
pub fn compare(label: &str, measured: impl std::fmt::Display, paper: &str) {
    println!("{label:<44} measured: {measured:<18} paper: {paper}");
}

/// Evaluates one benchmark for batch-1 inference at a precision on the
/// 4-core chip (optionally at a non-nominal frequency).
pub fn infer(net: &Network, p: Precision, freq_ghz: Option<f64>) -> InferenceResult {
    let mut chip = rapid_arch::geometry::ChipConfig::rapid_4core();
    if let Some(f) = freq_ghz {
        chip.freq_ghz = f;
    }
    let plan = compile(net, &chip, &CompileOptions::for_precision(p));
    evaluate_inference(net, &plan, &chip, 1, &ModelConfig::default())
}

/// Evaluates one benchmark for a training step on the 4×32-core system.
pub fn train_step(net: &Network, p: Precision) -> TrainingResult {
    let sys = rapid_arch::geometry::SystemConfig::training_4x32();
    evaluate_training(net, &sys, p, 512, &ModelConfig::default())
}

pub use rapid_numerics::gemm::num_threads;

/// Runs `f` over `items` on a bounded worker pool, preserving input order
/// in the returned vector.
///
/// The pool holds `num_threads().min(items.len())` workers (so the
/// `RAPID_THREADS` environment knob caps harness parallelism too) pulling
/// work items off a shared index — long and short experiments interleave
/// instead of each getting a dedicated thread.
///
/// # Panics
///
/// Propagates a panic from any worker (after [`try_par_map`]'s one retry).
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    try_par_map(items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("worker panicked twice: {e}"),
        })
        .collect()
}

/// [`par_map`] with graceful degradation: each worker catches panics from
/// `f`, retries the item once (transient failures get a second chance),
/// and returns `Err(panic message)` for items that fail both attempts —
/// so a sweep always yields a complete, ordered table with failed rows
/// marked instead of tearing down the whole harness.
pub fn try_par_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<Result<U, String>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let attempt = |item: &T| -> Result<U, String> {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(v) => Ok(v),
            Err(_) => catch_unwind(AssertUnwindSafe(|| f(item)))
                .map_err(|p| panic_message(p.as_ref())),
        }
    };
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(attempt).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = parking_lot::Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            let attempt = &attempt;
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = attempt(&items[i]);
                results.lock().push((i, r));
            });
        }
    })
    .unwrap_or_else(|_| unreachable!("pool workers catch panics; the scope itself cannot fail"));
    let mut v = results.into_inner();
    v.sort_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Renders a panic payload as a one-line reason for failure tables.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f` over the whole suite in parallel, preserving suite order.
pub fn suite_map<T: Send>(f: impl Fn(&Network) -> T + Sync) -> Vec<(String, T)> {
    let suite = benchmark_suite();
    let results = par_map(&suite, &f);
    suite.into_iter().zip(results).map(|(net, r)| (net.name, r)).collect()
}

pub mod record;
pub use record::{json_path_from_args, BenchRecord};

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Minimum and maximum of a slice.
pub fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..57).collect();
        let doubled = par_map(&items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn suite_map_preserves_order() {
        let names: Vec<String> =
            suite_map(|n| n.name.clone()).into_iter().map(|(n, _)| n).collect();
        let expect: Vec<String> = benchmark_suite().into_iter().map(|n| n.name).collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn try_par_map_marks_failures_and_keeps_the_rest() {
        let items: Vec<usize> = (0..12).collect();
        let results = try_par_map(&items, |&i| {
            assert!(i != 5, "item five always fails");
            i * 10
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().expect_err("item 5 must fail");
                assert!(e.contains("item five always fails"), "{e}");
            } else {
                assert_eq!(r.as_ref().copied().expect("others succeed"), i * 10);
            }
        }
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(min_max(&[2.0, -1.0, 5.0]), (-1.0, 5.0));
        assert_eq!(mean(&[]), 0.0);
    }
}
