//! End-to-end data-protection sweep (E19): what each protection layer
//! catches and what it costs.
//!
//! 1. **ABFT vs modular redundancy** — resilient HFP8 QAT under per-MAC
//!    fault injection, protected two ways: redundancy-3 voting (PR 2's
//!    baseline, a 3× compute tax) and ABFT checksummed GEMMs (detect +
//!    repair inside the kernel, O(m+n) extra work). Both must hold
//!    accuracy within 2% of the fault-free run; ABFT must do it at a
//!    fraction of the compute.
//! 2. **SECDED scratchpads + CRC ring flits** — a 256-plan sweep of
//!    scratchpad bit flips (through the cycle simulator) and corrupted
//!    ring flits (through the reliable allreduce). Every flip is either
//!    corrected, or detected-and-escalated/retransmitted; **zero** silent
//!    deliveries are tolerated.
//! 3. **The protection tax** — the analytical overhead ledger from
//!    `rapid-arch`/`rapid-model`: storage, bandwidth, and compute taxes
//!    for a full network.
//!
//! Usage: `protection_sweep [--smoke] [--seed N] [--json PATH]`. The seed
//! honours `RAPID_FAULT_SEED` (`--seed` wins); every cell derives its own
//! child stream, so cells are independent of sweep composition.

use rapid_arch::precision::Precision;
use rapid_arch::protection::ProtectionParams;
use rapid_bench::{section, try_par_map, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig, FaultPlan};
use rapid_model::protection::protection_tax;
use rapid_numerics::int::IntFormat;
use rapid_numerics::{GuardPolicy, Tensor};
use rapid_recover::{train_qat_resilient, GuardedHfp8Backend, Protection, ResilientConfig};
use rapid_refnet::data::gaussian_blobs;
use rapid_refnet::qat::{train_qat, QatConfig, QatMlp};
use rapid_ring::{reliable_allreduce_instrumented, ReliableConfig};
use rapid_sim::gemm::{CoreSim, GemmJob};
use rapid_sim::SimError;
use rapid_telemetry::{MetricsRegistry, Telemetry};
use rapid_workloads::suite::benchmark;

/// One protected-training cell: accuracy, recovery report, executed MACs,
/// and the backend's metric registry (ABFT counters ride along).
struct TrainCell {
    accuracy: f64,
    applied: u64,
    skipped: u64,
    rollbacks: u64,
    macs: u64,
    corrections: u64,
    metrics: MetricsRegistry,
}

fn run_protected(
    data: &rapid_refnet::data::Dataset,
    cfg: &QatConfig,
    seed: u64,
    rate: f64,
    label: &str,
    protection: Protection,
    redundancy: u32,
) -> Result<TrainCell, String> {
    let backend = GuardedHfp8Backend::new(
        FaultConfig {
            seed: derive_seed(seed, &format!("protection_sweep/{label}-{rate:e}")),
            mac_acc_rate: rate,
            mac_operand_rate: rate / 4.0,
            ..FaultConfig::default()
        },
        GuardPolicy::Error,
    )
    .with_protection(protection);
    let rcfg = ResilientConfig { redundancy, ..ResilientConfig::default() };
    let mut model = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let (accuracy, report) =
        train_qat_resilient(&mut model, &backend, data, cfg, &rcfg, None)
            .map_err(|e| e.to_string())?;
    let abft = backend.abft_report();
    Ok(TrainCell {
        accuracy,
        applied: report.steps_applied,
        skipped: report.steps_skipped,
        rollbacks: report.rollbacks,
        macs: backend.stats().macs + abft.checksum_macs + abft.recompute_macs,
        corrections: abft.corrections,
        metrics: backend.metrics(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("protection_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(11);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: protection_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }

    section(&format!(
        "protection sweep — end-to-end data protection (seed {seed}; override with --seed or RAPID_FAULT_SEED)"
    ));
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });
    let mut tele = Telemetry::new();

    // ---- sweep 1: ABFT vs redundancy-3 under MAC faults -----------------
    section("sweep 1 — ABFT checksummed GEMM vs redundancy-3 voting (resilient HFP8 QAT)");
    let epochs = if smoke { 4 } else { 12 };
    let data = gaussian_blobs(if smoke { 256 } else { 512 }, 4, 16, 0.35, 42);
    let cfg = QatConfig { epochs, ..QatConfig::default() };
    let mut clean = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let acc_clean = train_qat(&mut clean, &data, &cfg);
    // The unprotected fault-free run sets the compute baseline.
    let base = run_protected(&data, &cfg, seed, 0.0, "baseline", Protection::None, 1)
        .map_err(|e| format!("fault-free baseline failed: {e}"))?;
    let base_macs = base.macs.max(1) as f64;
    rec.metric("train.clean_accuracy", acc_clean);
    rec.metric("train.baseline_macs", base_macs);

    let rates: &[f64] = if smoke { &[1e-3] } else { &[1e-4, 1e-3] };
    // (rate, label, protection, redundancy) cells, fanned out together.
    let cells: Vec<(f64, &str, Protection, u32)> = rates
        .iter()
        .flat_map(|&r| {
            [(r, "red3", Protection::None, 3), (r, "abft", Protection::Abft, 1)]
        })
        .collect();
    let rows = try_par_map(&cells, |&(rate, label, protection, redundancy)| {
        run_protected(&data, &cfg, seed, rate, label, protection, redundancy)
    });
    println!(
        "{:<10} {:<6} {:>8} {:>8} {:>8} {:>10} {:>9} {:>9} {:>10}",
        "flip rate", "mode", "applied", "skipped", "rollbks", "accuracy", "vs clean", "overhead", "repairs"
    );
    let mut overheads: Vec<(f64, &str, f64, f64)> = Vec::new();
    for (&(rate, label, ..), row) in cells.iter().zip(rows) {
        match row {
            Ok(Ok(cell)) => {
                let overhead = cell.macs as f64 / base_macs - 1.0;
                let delta = cell.accuracy - acc_clean;
                println!(
                    "{:<10} {:<6} {:>8} {:>8} {:>8} {:>9.1}% {:>8.1}% {:>8.2}x {:>10}",
                    format!("{rate:.0e}"),
                    label,
                    cell.applied,
                    cell.skipped,
                    cell.rollbacks,
                    cell.accuracy * 100.0,
                    delta * 100.0,
                    overhead,
                    cell.corrections
                );
                rec.metric(&format!("train.rate{rate:e}.{label}.accuracy"), cell.accuracy);
                rec.metric(&format!("train.rate{rate:e}.{label}.overhead"), overhead);
                tele.registry.merge(&cell.metrics);
                overheads.push((rate, label, overhead, delta));
            }
            Ok(Err(reason)) => {
                println!("{:<10} {:<6}   unsurvivable: {reason}", format!("{rate:.0e}"), label)
            }
            Err(reason) => {
                println!("{:<10} {:<6}   FAILED: {reason}", format!("{rate:.0e}"), label)
            }
        }
    }
    // The headline contract at the documented 1e-3 ceiling: both protected
    // runs converge within 2% of fault-free, and ABFT's compute tax is at
    // least 2× smaller than triplication's.
    let red3 = overheads.iter().find(|(r, l, ..)| *r == 1e-3 && *l == "red3");
    let abft = overheads.iter().find(|(r, l, ..)| *r == 1e-3 && *l == "abft");
    if let (Some(&(_, _, oh_red, d_red)), Some(&(_, _, oh_abft, d_abft))) = (red3, abft) {
        assert!(d_red.abs() <= 0.02, "redundancy-3 accuracy drifted {d_red:.3} from fault-free");
        assert!(d_abft.abs() <= 0.02, "ABFT accuracy drifted {d_abft:.3} from fault-free");
        assert!(
            oh_red >= 2.0 * oh_abft,
            "ABFT overhead {oh_abft:.2}x must undercut redundancy-3 {oh_red:.2}x by ≥2×"
        );
        rec.metric("train.abft_advantage", oh_red / oh_abft.max(1e-9));
        println!(
            "\nat 1e-3 per-MAC faults both modes hold accuracy within 2% of fault-free;\n\
             ABFT pays {:.2}x extra compute where voting pays {:.2}x — a {:.1}× advantage.",
            oh_abft,
            oh_red,
            oh_red / oh_abft.max(1e-9)
        );
    }

    // ---- sweep 2: SECDED scratchpads + CRC ring flits, 256 plans --------
    section("sweep 2 — SECDED scratchpads + CRC ring flits (zero silent deliveries)");
    let plans_per_side = if smoke { 16 } else { 128 };

    // Scratchpad side: GEMMs through the cycle simulator with particle
    // strikes on the L1 words. Every plan must end bit-exact (SEC) or in
    // a structured uncorrectable error (DED) — never silently wrong.
    let core = CoreSim::rapid();
    let job = GemmJob {
        a: Tensor::random_uniform(vec![8, 64], -1.0, 1.0, 1),
        b: Tensor::random_uniform(vec![64, 32], -1.0, 1.0, 2),
        precision: Precision::Fp16,
    };
    let clean_c = core.run_gemm(&job).c;
    let spad_rates = [2e-3, 1e-2, 5e-2];
    let spad_cells: Vec<u64> = (0..plans_per_side as u64).collect();
    let spad_rows = try_par_map(&spad_cells, |&i| {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: derive_seed(seed, &format!("protection_sweep/spad-{i}")),
            spad_flip_rate: spad_rates[i as usize % spad_rates.len()],
            ..FaultConfig::default()
        });
        let mut t = Telemetry::new();
        let outcome = core.try_run_gemm_instrumented(&job, Some(&mut plan), Some(&mut t));
        let flips = plan.counts().spad_flips;
        match outcome {
            Ok(r) => Ok((r.c == clean_c, false, flips, t.registry)),
            Err(SimError::EccUncorrectable { .. }) => Ok((true, true, flips, t.registry)),
            Err(e) => Err(e.to_string()),
        }
    });
    let (mut spad_exact, mut spad_escalated, mut spad_silent, mut spad_flips) = (0u64, 0u64, 0u64, 0u64);
    for row in spad_rows {
        let (bit_exact, escalated, flips, reg) =
            row.map_err(|p| format!("spad cell panicked: {p}"))??;
        spad_flips += flips;
        tele.registry.merge(&reg);
        if escalated {
            spad_escalated += 1;
        } else if bit_exact {
            spad_exact += 1;
        } else {
            spad_silent += 1;
        }
    }
    let sec = tele.registry.counter("sim.ecc.sec");
    let ded = tele.registry.counter("sim.ecc.ded");
    println!(
        "scratchpad: {} plans, {} flips injected — {} bit-exact (SEC corrected {}), \
         {} escalated (DED {}), {} silent",
        plans_per_side, spad_flips, spad_exact, sec, spad_escalated, ded, spad_silent
    );
    assert_eq!(spad_silent, 0, "a scratchpad flip was silently delivered");
    assert!(sec > 0, "the sweep must exercise single-bit correction");
    rec.metric("spad.plans", plans_per_side as f64);
    rec.metric("spad.sec", sec as f64);
    rec.metric("spad.ded", ded as f64);
    rec.metric("spad.silent", spad_silent as f64);

    // Ring side: reliable allreduce with corrupted flits. CRC must turn
    // every corruption into a retransmission and a bit-identical result.
    let chips = 4usize;
    let elems = if smoke { 4096 } else { 16_384 };
    let inputs: Vec<Vec<f32>> = (0..chips)
        .map(|c| (0..elems).map(|i| ((i * 31 + c * 7919) % 997) as f32 * 0.25 - 120.0).collect())
        .collect();
    let rcfg = ReliableConfig::rapid_training(chips as u32, true);
    let (clean_sum, _) = reliable_allreduce_instrumented(&inputs, &rcfg, None, None)?;
    let ring_rates = [1e-3, 5e-3, 2e-2];
    let ring_cells: Vec<u64> = (0..plans_per_side as u64).collect();
    let ring_rows = try_par_map(&ring_cells, |&i| {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: derive_seed(seed, &format!("protection_sweep/ring-{i}")),
            ring_corrupt_rate: ring_rates[i as usize % ring_rates.len()],
            ring_drop_rate: if i % 2 == 0 { 5e-3 } else { 0.0 },
            ..FaultConfig::default()
        });
        let mut t = Telemetry::new();
        reliable_allreduce_instrumented(&inputs, &rcfg, Some(&mut plan), Some(&mut t))
            .map(|(sum, health)| (sum == clean_sum, health, t.registry))
            .map_err(|e| e.to_string())
    });
    let (mut ring_exact, mut ring_retrans, mut ring_silent) = (0u64, 0u64, 0u64);
    for row in ring_rows {
        let (bit_identical, health, reg) =
            row.map_err(|p| format!("ring cell panicked: {p}"))??;
        tele.registry.merge(&reg);
        ring_retrans += health.crc_retransmits;
        ring_silent += health.silent_corruptions;
        if bit_identical {
            ring_exact += 1;
        }
    }
    println!(
        "ring:       {} plans — {} bit-identical, {} CRC retransmits, {} silent",
        plans_per_side, ring_exact, ring_retrans, ring_silent
    );
    assert_eq!(ring_exact, plans_per_side as u64, "a corrupted flit damaged a reduction");
    assert_eq!(ring_silent, 0, "a corrupted flit was silently delivered");
    assert!(ring_retrans > 0, "the sweep must exercise CRC retransmission");
    rec.metric("ring.plans", plans_per_side as f64);
    rec.metric("ring.crc_retransmits", ring_retrans as f64);
    rec.metric("ring.silent", ring_silent as f64);
    println!(
        "\nall {} plans delivered protected data: corrected, retransmitted, or escalated —",
        2 * plans_per_side
    );
    println!("never silently wrong.");

    // ---- sweep 3: the analytical protection tax -------------------------
    section("sweep 3 — the protection tax (storage / bandwidth / compute)");
    let params = ProtectionParams::rapid();
    let nets = if smoke { vec!["mobilenetv1"] } else { vec!["resnet50", "bert"] };
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "workload", "abft tax", "red3 tax", "advantage", "l1 factor", "link factor"
    );
    for name in nets {
        let net = benchmark(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
        let tax = protection_tax(&net, 1, &params);
        println!(
            "{:<14} {:>11.2}% {:>11.0}% {:>9.1}x {:>10.3} {:>12.4}",
            name,
            tax.abft_overhead_ratio * 100.0,
            tax.redundancy3_overhead_ratio * 100.0,
            tax.abft_advantage(),
            tax.l1_storage_factor,
            tax.link_bandwidth_factor
        );
        rec.metric(&format!("{name}.abft_tax"), tax.abft_overhead_ratio);
        rec.metric(&format!("{name}.abft_advantage"), tax.abft_advantage());
    }
    println!(
        "\nSECDED charges {:.1}% scratchpad capacity and {:.0}% access energy; CRC-8",
        params.secded_storage_overhead * 100.0,
        params.secded_energy_uplift * 100.0
    );
    println!("shaves {:.2}% of link bandwidth; ABFT's checksum work amortizes to noise on", (1.0 - params.crc_bandwidth_factor()) * 100.0);
    println!("real layer shapes — protection is cheap everywhere except brute-force voting.");

    rec.merge_registry(&tele.registry);
    rec.finish();
    Ok(())
}
