//! Elastic-training sweep (E22): what node loss *costs*. Where
//! `recovery_sweep` prices surviving corrupted arithmetic on one chip,
//! this sweep drives the elastic multi-chip layer of DESIGN.md §11 —
//! crash detection, ring healing, heartbeat hang detection, straggler
//! deadlines, and barrier-checkpoint resume — and prices it:
//!
//! 1. **Crash-rate × world-size grid** — HFP8 data-parallel training with
//!    exactly one seeded node crash per run (`node_fault_budget = 1`).
//!    Hard contract per cell: every exchange completes (zero hangs), the
//!    ring heals to `world − 1`, and accuracy lands within 2 points of
//!    the fault-free run on the same world.
//! 2. **Hang detection and straggler deadline** — a hung node is spliced
//!    out via heartbeat silence; a straggler inside the deadline is
//!    waited out, one beyond it is dropped from the exchange without
//!    losing membership.
//! 3. **Determinism, steps-to-converge, and barrier resume** — the same
//!    seed replays an identical event trace and bit-identical weights;
//!    epoch-at-a-time resume over the checkpoint store reproduces the
//!    uninterrupted run bit for bit (with and without a crash) while
//!    measuring steps to a target accuracy.
//! 4. **Modeled N-chip elastic curve** — the analytic post-heal steady
//!    state: training throughput retained as the ring shrinks.
//!
//! Usage: `elastic_sweep [--smoke] [--seed N]`. The seed also honours
//! `RAPID_FAULT_SEED` (`--seed` wins); every cell derives its own child
//! stream, so cells are independent of sweep composition.

use rapid_bench::{section, try_par_map, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig, FaultPlan};
use rapid_model::{elastic_training_curve, ModelConfig};
use rapid_recover::{train_elastic, CheckpointStore, ElasticReport, ElasticTrainConfig};
use rapid_refnet::backend::Hfp8Backend;
use rapid_refnet::data::{gaussian_blobs, Dataset};
use rapid_refnet::mlp::Mlp;
use rapid_ring::Membership;
use rapid_telemetry::{trace_path_from_env, Telemetry, TraceSink};
use rapid_workloads::suite::benchmark;

const LAYERS: &[usize] = &[16, 32, 4];
const MODEL_SEED: u64 = 1;
/// Seeded child streams probed per faulty cell until the fault fires —
/// with the rates below the first try succeeds almost always; 32 bounds
/// the worst case deterministically.
const SCAN_TRIES: u64 = 32;

/// One finished training run of a sweep cell.
struct RunOut {
    acc: f64,
    report: ElasticReport,
    weights: Vec<f32>,
    tele: Telemetry,
}

/// The model's parameters in reduction order (layer weights then biases)
/// — the unit the bit-identity assertions compare.
fn weights_of(mlp: &Mlp) -> Vec<f32> {
    let mut out = Vec::new();
    for i in 0..mlp.depth() {
        out.extend_from_slice(mlp.weights(i).as_slice());
        out.extend_from_slice(mlp.biases(i));
    }
    out
}

/// One elastic HFP8 training run from the shared initialization.
fn run_once(
    data: &Dataset,
    world: u32,
    epochs: usize,
    mut plan: Option<FaultPlan>,
    spans: bool,
) -> Result<RunOut, String> {
    let cfg = ElasticTrainConfig { epochs, ..ElasticTrainConfig::rapid_training(world) };
    let mut mlp = Mlp::new(LAYERS, MODEL_SEED);
    let mut mem = Membership::new(world).map_err(|e| e.to_string())?;
    let mut tele = if spans { Telemetry::with_spans() } else { Telemetry::new() };
    let (acc, report) = train_elastic(
        &mut mlp,
        &Hfp8Backend::default(),
        data,
        &cfg,
        &mut mem,
        plan.as_mut(),
        None,
        Some(&mut tele),
    )
    .map_err(|e| e.to_string())?;
    Ok(RunOut { acc, report, weights: weights_of(&mlp), tele })
}

/// Runs a faulty cell, probing derived child seeds until `fired` accepts
/// the run (e.g. the budgeted crash actually landed inside the run).
/// Returns `(tries, child_seed, run)`; errors when no probe fires.
fn run_faulted(
    data: &Dataset,
    world: u32,
    epochs: usize,
    base_seed: u64,
    label: &str,
    make: impl Fn(u64) -> FaultConfig,
    fired: impl Fn(&ElasticReport) -> bool,
) -> Result<(u64, u64, RunOut), String> {
    for t in 0..SCAN_TRIES {
        let child = derive_seed(base_seed, &format!("{label}/try{t}"));
        // A probe can legitimately fail (every member straggling past the
        // deadline empties the exchange) — skip it and keep scanning.
        let Ok(out) = run_once(data, world, epochs, Some(FaultPlan::new(make(child))), false) else {
            continue;
        };
        if fired(&out.report) {
            return Ok((t, child, out));
        }
    }
    Err(format!("{label}: fault never fired in {SCAN_TRIES} seeded tries"))
}

#[allow(clippy::too_many_lines)] // one linear experiment script, like its siblings
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("elastic_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(7);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: elastic_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }

    section(&format!(
        "elastic sweep — node loss, healing, stragglers (E22; seed {seed}; override with --seed or RAPID_FAULT_SEED)"
    ));
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });

    let epochs = if smoke { 6 } else { 10 };
    let data = gaussian_blobs(if smoke { 192 } else { 256 }, 4, 16, 0.35, 42);
    let batch = ElasticTrainConfig::rapid_training(2).batch;
    let expected_steps = (epochs * data.len().div_ceil(batch)) as u64;
    let mut tele = Telemetry::new();
    let mut failed = false;

    // ---- sweep 1: crash-rate × world-size grid --------------------------
    section("sweep 1 — crash-rate × world-size: heal cost and accuracy parity");
    let worlds: &[u32] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let rates: &[f64] = if smoke { &[0.02] } else { &[0.01, 0.05] };

    struct Row {
        rate: f64,
        tries: u64,
        splices: u64,
        final_world: usize,
        goodput: f64,
        acc: f64,
    }

    // Worlds are independent: fan out over the worker pool. Each world
    // runs its fault-free baseline first so the crash cells can hard-check
    // accuracy parity in place.
    let per_world = try_par_map(worlds, |&world| -> Result<(f64, Vec<Row>, Telemetry), String> {
        let mut wtele = Telemetry::new();
        let clean = run_once(&data, world, epochs, None, false)?;
        if clean.report.steps_run != expected_steps {
            return Err(format!(
                "world {world}: fault-free run took {} of {expected_steps} steps",
                clean.report.steps_run
            ));
        }
        wtele.merge(clean.tele);
        let mut rows = Vec::new();
        for &rate in rates {
            let (tries, _, out) = run_faulted(
                &data,
                world,
                epochs,
                derive_seed(seed, &format!("elastic_sweep/w{world}-r{rate}")),
                &format!("w{world}-crash{rate}"),
                |s| FaultConfig {
                    seed: s,
                    node_crash_rate: rate,
                    node_fault_budget: 1,
                    ..FaultConfig::default()
                },
                |r| r.crashes_survived >= 1,
            )?;
            let r = &out.report;
            // E22 hard contract: zero hangs (every exchange completed),
            // the ring healed, and one crash costs ≤ 2 accuracy points.
            if r.steps_run != expected_steps {
                return Err(format!(
                    "world {world} rate {rate}: crashed run hung at step {} of {expected_steps}",
                    r.steps_run
                ));
            }
            if r.crashes_survived != 1 || r.splices < 1 || r.final_world != world as usize - 1 {
                return Err(format!(
                    "world {world} rate {rate}: ring did not heal to {} survivors: {r:?}",
                    world - 1
                ));
            }
            if out.acc < clean.acc - 0.02 {
                return Err(format!(
                    "world {world} rate {rate}: one crash cost more than 2 accuracy points: \
                     {:.4} vs fault-free {:.4}",
                    out.acc, clean.acc
                ));
            }
            rows.push(Row {
                rate,
                tries,
                splices: r.splices,
                final_world: r.final_world,
                goodput: r.goodput(),
                acc: out.acc,
            });
            wtele.merge(out.tele);
        }
        Ok((clean.acc, rows, wtele))
    });
    println!(
        "{:<7} {:<10} {:>6} {:>8} {:>10} {:>9} {:>11} {:>9}",
        "world", "crash", "tries", "splices", "survivors", "goodput", "accuracy", "vs clean"
    );
    for (&world, res) in worlds.iter().zip(per_world) {
        match res {
            Ok(Ok((acc_clean, rows, wtele))) => {
                tele.merge(wtele);
                rec.metric(&format!("w{world}.clean.accuracy"), acc_clean);
                println!(
                    "{world:<7} {:<10} {:>6} {:>8} {:>10} {:>9} {:>10.1}% {:>9}",
                    "none", "-", 0, world, "1.000", acc_clean * 100.0, "-"
                );
                for row in rows {
                    rec.metric(&format!("w{world}.rate{:e}.accuracy", row.rate), row.acc);
                    rec.metric(&format!("w{world}.rate{:e}.goodput", row.rate), row.goodput);
                    println!(
                        "{world:<7} {:<10} {:>6} {:>8} {:>10} {:>9.3} {:>10.1}% {:>8.1}%",
                        format!("{:.0e}", row.rate),
                        row.tries,
                        row.splices,
                        row.final_world,
                        row.goodput,
                        row.acc * 100.0,
                        (row.acc - acc_clean) * 100.0
                    );
                }
            }
            Ok(Err(reason)) => {
                failed = true;
                println!("{world:<7} ASSERTION FAILED: {reason}");
            }
            Err(reason) => {
                failed = true;
                println!("{world:<7} FAILED: {reason}");
            }
        }
    }
    println!("\nevery crashed cell healed to world − 1 and finished all {expected_steps} steps;");
    println!("goodput < 1 is the detection + re-reduction + shorter-ring price of the heal.");

    // ---- sweep 2: hang detection and straggler deadline -----------------
    section("sweep 2 — hang detection (heartbeat) and straggler deadline (world 4)");
    let (tries_h, _, hang) = run_faulted(
        &data,
        4,
        epochs,
        derive_seed(seed, "elastic_sweep/hang"),
        "hang",
        |s| FaultConfig {
            seed: s,
            node_hang_rate: 0.05,
            node_fault_budget: 1,
            ..FaultConfig::default()
        },
        |r| r.hangs_survived >= 1,
    )?;
    let hr = &hang.report;
    if hr.steps_run != expected_steps || hr.hangs_survived != 1 || hr.final_world != 3 {
        return Err(format!("hang cell: heartbeat splice did not heal the ring: {hr:?}").into());
    }
    if hr.goodput() >= 1.0 {
        return Err("hang cell: heartbeat detection must cost cycles".into());
    }
    println!(
        "hang       tries {tries_h}: 1 hang spliced by heartbeat silence, {} survivors, goodput {:.3}",
        hr.final_world,
        hr.goodput()
    );
    rec.metric("hang.goodput", hr.goodput());
    tele.merge(hang.tele);

    let (tries_s, _, slow) = run_faulted(
        &data,
        4,
        epochs,
        derive_seed(seed, "elastic_sweep/straggler-wait"),
        "straggler-wait",
        |s| FaultConfig {
            seed: s,
            node_slow_rate: 0.1,
            node_slow_factor: 1.5,
            ..FaultConfig::default()
        },
        |r| r.stragglers_retained >= 1,
    )?;
    let (tries_d, _, drop) = run_faulted(
        &data,
        4,
        epochs,
        derive_seed(seed, "elastic_sweep/straggler-drop"),
        "straggler-drop",
        |s| FaultConfig {
            seed: s,
            node_slow_rate: 0.1,
            node_slow_factor: 4.0,
            ..FaultConfig::default()
        },
        |r| r.stragglers_dropped >= 1,
    )?;
    for (name, tries, out) in
        [("straggler-wait", tries_s, &slow), ("straggler-drop", tries_d, &drop)]
    {
        let r = &out.report;
        if r.steps_run != expected_steps {
            return Err(format!("{name}: run hung at step {} of {expected_steps}", r.steps_run).into());
        }
        // Stragglers never cost membership — only exchange time (waited
        // out inside the deadline, or cut off at it).
        if r.final_world != 4 || r.goodput() >= 1.0 {
            return Err(format!("{name}: deadline handling wrong: {r:?}").into());
        }
        println!(
            "{name:<14} tries {tries}: retained {}, dropped {}, world intact, goodput {:.3}",
            r.stragglers_retained,
            r.stragglers_dropped,
            r.goodput()
        );
        rec.metric(&format!("{name}.goodput"), r.goodput());
    }
    tele.merge(slow.tele);
    tele.merge(drop.tele);

    // ---- sweep 3: determinism, steps-to-converge, barrier resume --------
    section("sweep 3 — determinism, steps-to-converge, and barrier resume (world 4)");
    let crash_cfg = |s: u64| FaultConfig {
        seed: s,
        node_crash_rate: 0.05,
        node_fault_budget: 1,
        ..FaultConfig::default()
    };
    let (_, chosen, first) = run_faulted(
        &data,
        4,
        epochs,
        derive_seed(seed, "elastic_sweep/determinism"),
        "determinism",
        crash_cfg,
        |r| r.crashes_survived >= 1,
    )?;
    let second = run_once(&data, 4, epochs, Some(FaultPlan::new(crash_cfg(chosen))), false)?;
    if first.report.events != second.report.events || first.weights != second.weights {
        return Err("same seed must replay an identical event trace and weights".into());
    }
    println!(
        "same seed ⇒ identical {}-event trace and bit-identical weights (asserted)",
        first.report.events.len()
    );

    // Epoch-at-a-time resume: each pass restores the newest barrier
    // generation and runs exactly one more epoch — steps-to-converge falls
    // out of evaluating at every barrier, and the final weights must match
    // the uninterrupted run bit for bit.
    let target = if smoke { 0.6 } else { 0.8 };
    let dir = std::env::temp_dir().join(format!("rapid-elastic-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut resume_cell = |name: &str,
                           plan_seed: Option<u64>|
     -> Result<(Option<u64>, f64, Vec<f32>), String> {
        let mut plan = plan_seed.map(|s| FaultPlan::new(crash_cfg(s)));
        let mut mem = Membership::new(4).map_err(|e| e.to_string())?;
        let mut store = CheckpointStore::open(dir.join(name), "el", epochs.max(8))
            .map_err(|e| e.to_string())?;
        let mut mlp = Mlp::new(LAYERS, MODEL_SEED);
        let mut cell_tele = Telemetry::new();
        let (mut steps, mut steps_to, mut acc) = (0u64, None, 0.0f64);
        for e in 1..=epochs {
            let cfg = ElasticTrainConfig { epochs: e, ..ElasticTrainConfig::rapid_training(4) };
            let (a, rep) = train_elastic(
                &mut mlp,
                &Hfp8Backend::default(),
                &data,
                &cfg,
                &mut mem,
                plan.as_mut(),
                Some(&mut store),
                Some(&mut cell_tele),
            )
            .map_err(|e| e.to_string())?;
            if rep.epochs_resumed != (e - 1) as u64 {
                return Err(format!(
                    "{name}: pass {e} resumed {} epochs, expected {}",
                    rep.epochs_resumed,
                    e - 1
                ));
            }
            steps += rep.steps_run;
            if steps_to.is_none() && a >= target {
                steps_to = Some(steps);
            }
            acc = a;
        }
        tele.merge(cell_tele);
        Ok((steps_to, acc, weights_of(&mlp)))
    };
    let (st_clean, acc_resumed_clean, w_resumed_clean) = resume_cell("clean", None)?;
    let (st_crash, acc_resumed_crash, w_resumed_crash) = resume_cell("crash1", Some(chosen))?;
    let _ = std::fs::remove_dir_all(&dir);
    let clean4 = run_once(&data, 4, epochs, None, false)?;
    if w_resumed_clean != clean4.weights {
        return Err("barrier resume must replay the uninterrupted run bit for bit".into());
    }
    if w_resumed_crash != first.weights {
        return Err("barrier resume under a healed ring must stay bit-identical".into());
    }
    println!("barrier resume replays the uninterrupted run bit for bit, crash or not (asserted)");
    let show = |st: Option<u64>| st.map_or_else(|| "not reached".to_string(), |s| s.to_string());
    println!(
        "{:<10} {:>8} {:>22} {:>11}",
        "cell", "steps", &format!("steps-to-acc {target}"), "final acc"
    );
    for (name, st, acc) in [
        ("clean", st_clean, acc_resumed_clean),
        ("1-crash", st_crash, acc_resumed_crash),
    ] {
        println!("{name:<10} {expected_steps:>8} {:>22} {:>10.1}%", show(st), acc * 100.0);
        if let Some(s) = st {
            rec.metric(&format!("resume.{name}.steps_to_converge"), s as f64);
        }
    }

    // ---- sweep 4: modeled N-chip elastic curve --------------------------
    section("sweep 4 — modeled elastic curve: throughput retained as the ring shrinks");
    let net = benchmark("resnet50").ok_or("unknown benchmark 'resnet50'")?;
    let (world_m, floor) = if smoke { (4, 2) } else { (8, 4) };
    println!(
        "{:<10} {:>10} {:>14} {:>11}",
        "world", "survivors", "inputs/s", "retention"
    );
    for p in elastic_training_curve(&net, world_m, floor, 512, &ModelConfig::default()) {
        rec.metric(&format!("model.survivors{}.retention", p.survivors), p.retention);
        println!(
            "{:<10} {:>10} {:>14.0} {:>10.1}%",
            p.world,
            p.survivors,
            p.throughput,
            p.retention * 100.0
        );
    }
    println!("\nthe post-heal steady state: survivors carry the full minibatch over a");
    println!("shorter ring, so retention degrades by roughly the lost compute share.");

    // With RAPID_TRACE set, rerun a small clean world-2 cell with
    // exchange spans on (cumulative-cycle time base) and export them as
    // a Chrome trace for Perfetto; the record stamps where it went.
    if let Some(trace_path) = trace_path_from_env() {
        section("telemetry — elastic exchange spans (RAPID_TRACE)");
        let traced = run_once(&data, 2, epochs.min(2), None, true)?;
        let mut sink = TraceSink::new();
        if let Some(spans) = &traced.tele.spans {
            spans.to_trace(&mut sink, 2000, "elastic", "elastic allreduce");
        }
        sink.write(&trace_path)?;
        rec.metric("trace.span_events", sink.len() as f64);
        rec.config_str("trace_path", &trace_path.display().to_string());
        println!(
            "{} exchange spans written to {}",
            traced.tele.spans.as_ref().map_or(0, rapid_telemetry::SpanSink::len),
            trace_path.display()
        );
    }

    rec.merge_registry(&tele.registry);
    rec.finish();
    if failed {
        return Err("elastic sweep hard assertions failed (see rows above)".into());
    }
    Ok(())
}
