//! Regenerates Fig 18: (a) INT4 inference speedup as cores scale 1→32 with
//! fixed external bandwidth, and (b) HFP8 training speedup as chips scale
//! 1→32 at fixed minibatch and link bandwidth.

use rapid_bench::{section, BenchRecord};
use rapid_model::cost::ModelConfig;
use rapid_model::scaling::{inference_core_scaling, training_chip_scaling};
use rapid_workloads::suite::benchmark_suite;

fn main() {
    let mut rec = BenchRecord::new("fig18_scaling");
    let cfg = ModelConfig::default();
    let counts = [1u32, 2, 4, 8, 16, 32];

    section("Fig 18(a) — INT4 batch-1 inference speedup vs core count (DDR fixed)");
    print!("{:<12}", "benchmark");
    for c in counts {
        print!(" {:>8}", format!("{c} cores"));
    }
    println!();
    for net in benchmark_suite() {
        let pts = inference_core_scaling(&net, &counts, &cfg);
        print!("{:<12}", net.name);
        for p in &pts {
            print!(" {:>7.2}x", p.speedup);
        }
        if let Some(last) = pts.last() {
            rec.metric(&format!("{}.inference_speedup_32core", net.name), last.speedup);
        }
        println!();
    }
    println!("paper: compute-intensive nets (vgg16, resnet50, yolov3, ssd300) keep improving");
    println!("to 32 cores; aux-dominated (mobilenetv1) and memory-stalled nets saturate.");

    section("Fig 18(b) — HFP8 training speedup vs chip count (minibatch 512, 128 GB/s links)");
    print!("{:<12}", "benchmark");
    for c in counts {
        print!(" {:>8}", format!("{c} chips"));
    }
    println!();
    for net in benchmark_suite() {
        let pts = training_chip_scaling(&net, &counts, 512, &cfg);
        print!("{:<12}", net.name);
        for p in &pts {
            print!(" {:>7.2}x", p.speedup);
        }
        if let Some(last) = pts.last() {
            rec.metric(&format!("{}.training_speedup_32chip", net.name), last.speedup);
        }
        println!();
    }
    println!("paper: data-parallel scaling; HFP8 reduces the update-phase weight broadcast");
    println!("to 8-bit payloads, so communication-heavy models scale further than at FP16.");
    rec.finish();
}
