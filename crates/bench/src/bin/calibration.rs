//! Experiment E9: calibrate the analytical performance model against the
//! cycle-approximate core simulator over a GEMM sweep — our analog of the
//! paper's "performance model ... calibrated to within 1% of the
//! measurement results" (§V-A).

use rapid_arch::geometry::CoreletConfig;
use rapid_arch::precision::Precision;
use rapid_bench::{compare, mean, num_threads, section, try_par_map, BenchRecord};
use rapid_compiler::mapping::map_layer;
use rapid_numerics::Tensor;
use rapid_sim::chip::{try_run_chip_gemm_telemetry, ChipGemmJob};
use rapid_arch::geometry::CoreConfig;
use rapid_sim::gemm::{CoreSim, GemmJob};
use rapid_telemetry::{trace_path_from_env, Telemetry};
use rapid_workloads::graph::Op;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut rec = BenchRecord::new("calibration");
    let start = Instant::now();
    section("E9 — analytical model vs cycle simulator (GEMM sweep, 1 core / 2 corelets)");
    println!(
        "{:<6} {:>5} {:>5} {:>5} {:>10} {:>10} {:>8}",
        "prec", "M", "K", "N", "sim cyc", "model cyc", "error"
    );
    let core = CoreSim::rapid();
    let corelet = CoreletConfig::default();
    let shapes = [
        (16usize, 128usize, 128usize),
        (32, 256, 128),
        (64, 256, 256),
        (8, 512, 128),
        (128, 64, 128),
        (7, 100, 70),
        (33, 130, 65),
    ];
    // One job per (shape, precision); the simulations are independent, so
    // fan them out over the worker pool and print in sweep order after.
    let jobs: Vec<(usize, usize, usize, usize, Precision)> = shapes
        .iter()
        .enumerate()
        .flat_map(|(i, &(m, k, n))| {
            [Precision::Fp16, Precision::Hfp8, Precision::Int4]
                .into_iter()
                .map(move |p| (i, m, k, n, p))
        })
        .collect();
    // try_par_map keeps the sweep alive if a single simulation dies: the
    // table completes with the failed row marked and the exit code flags it.
    let rows = try_par_map(&jobs, |&(i, m, k, n, p)| {
        let job = GemmJob {
            a: Tensor::random_uniform(vec![m, k], -1.0, 1.0, 400 + i as u64),
            b: Tensor::random_uniform(vec![k, n], -1.0, 1.0, 500 + i as u64),
            precision: p,
        };
        let r = core.run_gemm(&job);
        let op = Op::Gemm { m: m as u64, k: k as u64, n: n as u64, weighted: true };
        let predicted = map_layer(&op, p, 1, &corelet, 2).total_cycles();
        let err = (predicted - r.cycles as f64).abs() / r.cycles as f64;
        (m, k, n, p, r.cycles, predicted, err)
    });
    let mut errors = Vec::new();
    let mut failures = 0usize;
    for (job, row) in jobs.iter().zip(rows) {
        match row {
            Ok((m, k, n, p, cycles, predicted, err)) => {
                errors.push(err);
                println!(
                    "{:<6} {:>5} {:>5} {:>5} {:>10} {:>10.0} {:>7.2}%",
                    p.to_string(),
                    m,
                    k,
                    n,
                    cycles,
                    predicted,
                    err * 100.0
                );
            }
            Err(reason) => {
                failures += 1;
                let (_, m, k, n, p) = *job;
                println!("{:<6} {m:>5} {k:>5} {n:>5}     FAILED: {reason}", p.to_string());
            }
        }
    }
    println!();
    compare(
        "mean calibration error",
        format!("{:.2}%", mean(&errors) * 100.0),
        "the paper's model is within 1% of silicon",
    );
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    compare("worst-case calibration error", format!("{:.2}%", max * 100.0), "n/a");
    rec.metric("calibration_error.mean", mean(&errors));
    rec.metric("calibration_error.max", max);

    // With RAPID_TRACE set, rerun one GEMM on the full 4-core chip with
    // telemetry on and export the cycle-level Chrome trace for Perfetto
    // (per-core sequencer/array tracks + ring + SFU).
    if let Some(trace_path) = trace_path_from_env() {
        section("telemetry — traced 4-core chip GEMM (RAPID_TRACE)");
        let job = ChipGemmJob {
            a: Tensor::random_uniform(vec![32, 256], -1.0, 1.0, 900),
            b: Tensor::random_uniform(vec![256, 256], -1.0, 1.0, 901),
            precision: Precision::Int4,
        };
        let mut tele = Telemetry::from_env();
        match try_run_chip_gemm_telemetry(&job, CoreConfig::default(), 4, 0, None, Some(&mut tele))
        {
            Ok(r) => {
                println!(
                    "chip GEMM 32x256x256 int4: {} cycles ({} distribution, {} compute)",
                    r.total_cycles, r.distribution_cycles, r.compute_cycles
                );
                rec.metric("traced_chip_gemm.total_cycles", r.total_cycles as f64);
                rec.merge_registry(&tele.registry);
                match tele.trace.as_ref().map(|t| t.write(&trace_path)) {
                    Some(Ok(())) => println!("trace written to {}", trace_path.display()),
                    Some(Err(e)) => {
                        eprintln!("error: cannot write trace {}: {e}", trace_path.display());
                        return ExitCode::FAILURE;
                    }
                    None => {}
                }
            }
            Err(e) => {
                eprintln!("traced chip GEMM failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "\ntotal wall-clock: {:.2}s ({} worker threads)",
        start.elapsed().as_secs_f64(),
        num_threads().min(jobs.len())
    );
    rec.finish();
    if failures > 0 {
        eprintln!("{failures} of {} calibration points failed", jobs.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
