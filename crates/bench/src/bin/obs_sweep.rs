//! Observability sweep (E23): the tracing + SLO + exposition contracts,
//! exercised end to end and hard-asserted.
//!
//! Three serving cells over the virtual-time chaos harness, all with
//! request spans and burn-rate SLO monitoring on:
//!
//! 1. **clean** — fault-free 0.8× saturation. The monitors must stay
//!    silent, and per-class critical-path attribution must sum to total
//!    request latency within 1%.
//! 2. **chaos** — a seeded serving-transient storm (60% of dispatches
//!    fail at the session). The deadline burn-rate rule must fire, and
//!    running the cell twice from the same seed must reproduce the alert
//!    list bit for bit.
//! 3. **overload** — fault-free 2.5× saturation. The shed-rate rule
//!    pages while conservation and the no-late-delivery invariant hold.
//!
//! After the cells the sweep merges the serve-level request spans with a
//! cycle-level 4-core chip-GEMM trace into **one** Chrome-trace sink —
//! written under `RAPID_TRACE` — so request spans and sim tracks render
//! in a single Perfetto timeline. Every cell registry is rendered as
//! OpenMetrics text and round-tripped through
//! `telemetry::openmetrics::validate`; `RAPID_METRICS=<path>` dumps the
//! merged snapshot.
//!
//! Usage: `obs_sweep [--smoke] [--seed N] [--json PATH]`.

use rapid_arch::geometry::CoreConfig;
use rapid_arch::precision::Precision;
use rapid_bench::{section, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig};
use rapid_numerics::{GuardPolicy, Tensor};
use rapid_recover::backend::Protection;
use rapid_serve::{
    run_open_loop, synthetic_table, EmulatedSession, OfferedLoad, OkSession, ServeConfig,
    SweepResult, Tier,
};
use rapid_sim::chip::{try_run_chip_gemm_telemetry, ChipGemmJob};
use rapid_telemetry::span::{critical_path, spans_to_trace, validate_forest};
use rapid_telemetry::{
    metrics_path_from_env, openmetrics, trace_path_from_env, MetricsRegistry, Telemetry, TraceSink,
};

/// Validates the per-cell observability contracts shared by every cell:
/// conservation, no late deliveries, a well-nested span forest, and
/// critical-path attribution within 1% of total request latency.
fn check_cell(label: &str, r: &SweepResult, rec: &mut BenchRecord) -> Result<(), String> {
    let c = &r.counters;
    if c.lost() != 0 {
        return Err(format!("{label}: conservation violated: {} requests unaccounted", c.lost()));
    }
    if c.deadline_violations != 0 {
        return Err(format!(
            "{label}: {} completions delivered past deadline",
            c.deadline_violations
        ));
    }
    if r.spans.is_empty() {
        return Err(format!("{label}: span recording was on but no spans were captured"));
    }
    validate_forest(&r.spans).map_err(|e| format!("{label}: span forest invalid: {e}"))?;
    for cp in critical_path(&r.spans) {
        let gap = cp.total.abs_diff(cp.attributed());
        // The E23 attribution bar: per class, stage spans must account
        // for total request latency within 1%.
        if gap * 100 > cp.total {
            return Err(format!(
                "{label}: class {} attribution off by more than 1%: {} of {} unattributed",
                cp.class, gap, cp.total
            ));
        }
        let (stage, dur) = cp.dominant().unwrap_or(("none", 0));
        println!(
            "  {label:<9} {:<16} {:>6} reqs  dominant {stage:<10} {:>5.1}% of {:>9} us",
            cp.class,
            cp.requests,
            if cp.total > 0 { dur as f64 / cp.total as f64 * 100.0 } else { 0.0 },
            cp.total
        );
    }
    rec.metric(&format!("{label}.goodput_qps"), r.goodput_qps);
    rec.metric(&format!("{label}.p50_ms"), r.p50_ms);
    rec.metric(&format!("{label}.p99_ms"), r.p99_ms);
    rec.metric(&format!("{label}.spans"), r.spans.len() as f64);
    for rule in &r.slo.rules {
        rec.metric(&format!("{label}.slo.{}.alerts", rule.name), rule.alerts.len() as f64);
        rec.metric(&format!("{label}.slo.{}.bad", rule.name), rule.bad as f64);
    }
    Ok(())
}

/// Renders a cell's registry as OpenMetrics text and feeds it back
/// through the strict parser — every emitted snapshot must validate.
fn roundtrip_snapshot(label: &str, reg: &MetricsRegistry) -> Result<String, String> {
    let text = openmetrics::render_labeled(reg, &[("experiment", "obs_sweep"), ("cell", label)]);
    openmetrics::validate(&text)
        .map_err(|e| format!("{label}: emitted OpenMetrics snapshot rejected: {e}"))?;
    Ok(text)
}

#[allow(clippy::too_many_lines)] // one linear experiment script, like its siblings
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("obs_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(7);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: obs_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });
    section(&format!(
        "observability sweep — spans, burn-rate SLOs, OpenMetrics (E23; seed {seed})"
    ));

    // Synthetic latency table: capacity is analytically known, so cell
    // load multipliers are exact and the sweep needs no calibration pass.
    let models = vec!["resnet50".to_string(), "bert".to_string()];
    let table = synthetic_table(&["resnet50", "bert"], 150.0, 60.0);
    let cfg = ServeConfig { record_spans: true, span_seed: seed, ..ServeConfig::hardened() };
    let mean_per_req_us = 60.0 + 150.0 / cfg.batch_max as f64;
    let sat_qps = cfg.workers as f64 * 1e6 / mean_per_req_us;
    let worst_batch_us = 150.0 + cfg.batch_max as f64 * 60.0;
    let deadline_budget_us = (4.0 * worst_batch_us) as u64 + 4 * cfg.batch_window_us;
    rec.metric("sweep.saturation_qps", sat_qps);
    rec.config_num("deadline_budget_us", deadline_budget_us as f64);
    println!("saturation ≈ {sat_qps:.0} qps, deadline budget {deadline_budget_us} us");

    let load = |label: &str, mult: f64, duration_us: u64| OfferedLoad {
        qps: sat_qps * mult,
        duration_us,
        seed: derive_seed(seed, &format!("obs_sweep/{label}")),
        deadline_budget_us,
        critical_fraction: 0.1,
        models: models.clone(),
        tier: Tier::Fp16,
    };
    let scale = if smoke { 1 } else { 3 };

    // ---- cell 1: clean — silent monitors, exact attribution ------------
    section("cell 1 — clean 0.8x: monitors stay silent, attribution within 1%");
    let clean = run_open_loop(&cfg, &table, &load("clean", 0.8, 100_000 * scale), &OkSession);
    check_cell("clean", &clean, &mut rec)?;
    if clean.slo.total_alerts() != 0 {
        return Err(format!(
            "clean: burn-rate rules fired {} alerts in the fault-free underload cell",
            clean.slo.total_alerts()
        )
        .into());
    }
    println!("  clean cell: 0 alerts across {} rules (required)", clean.slo.rules.len());

    // ---- cell 2: chaos — deadline burns fire, deterministically --------
    section("cell 2 — transient storm at 1x: deadline burns fire, bit-reproducibly");
    let chaos_load = load("chaos", 1.0, 80_000 * scale);
    let session_cfg = FaultConfig {
        seed: derive_seed(seed, "obs_sweep/chaos-faults"),
        serve_transient_rate: 0.6,
        ..FaultConfig::default()
    };
    let run_chaos = || {
        let session = EmulatedSession::new(session_cfg, GuardPolicy::Error, Protection::None);
        run_open_loop(&cfg, &table, &chaos_load, &session)
    };
    let chaos = run_chaos();
    check_cell("chaos", &chaos, &mut rec)?;
    let deadline_alerts = chaos.slo.rule("deadline").map_or(0, |r| r.alerts.len());
    if deadline_alerts == 0 {
        return Err("chaos: 60% transient storm did not fire the deadline burn rule".into());
    }
    let replay = run_chaos();
    if replay.slo != chaos.slo || replay.counters != chaos.counters {
        return Err("chaos: same seed must reproduce identical alerts and counters".into());
    }
    if let Some(rule) = chaos.slo.rule("deadline") {
        for a in &rule.alerts {
            println!(
                "  deadline alert at {:>7} us: fast burn {:.1}x, slow burn {:.1}x",
                a.at_us, a.fast_burn, a.slow_burn
            );
        }
    }
    println!("  replay with the same seed: identical alert list (asserted)");

    // ---- cell 3: overload — the shed rule pages ------------------------
    section("cell 3 — fault-free 2.5x overload: the shed rule pages");
    let overload = run_open_loop(&cfg, &table, &load("overload", 2.5, 60_000 * scale), &OkSession);
    check_cell("overload", &overload, &mut rec)?;
    let shed_alerts = overload.slo.rule("shed").map_or(0, |r| r.alerts.len());
    if shed_alerts == 0 {
        return Err("overload: 2.5x offered load did not fire the shed burn rule".into());
    }
    println!("  shed rule fired {shed_alerts} alert(s) under 2.5x offered load");

    // ---- one Perfetto timeline: request spans + sim cycle tracks -------
    section("merged trace — serve request spans + 4-core chip GEMM cycle tracks");
    let mut trace = TraceSink::new();
    spans_to_trace(&clean.spans, &mut trace, 1000, "serve", "serve requests");
    let job = ChipGemmJob {
        a: Tensor::random_uniform(vec![16, 64], -1.0, 1.0, 900),
        b: Tensor::random_uniform(vec![64, 64], -1.0, 1.0, 901),
        precision: Precision::Int4,
    };
    let mut gemm_tele = Telemetry::with_trace();
    let gemm =
        try_run_chip_gemm_telemetry(&job, CoreConfig::default(), 4, 0, None, Some(&mut gemm_tele))
            .map_err(|e| format!("traced chip GEMM failed: {e}"))?;
    if let Some(t) = gemm_tele.trace.take() {
        trace.merge(t);
    }
    let serve_events = trace.events().iter().filter(|e| e.cat == "serve").count();
    let sim_events =
        trace.events().iter().filter(|e| !matches!(e.cat, "serve" | "__metadata")).count();
    println!(
        "  {} serve span events + {} sim cycle events in one trace (chip GEMM: {} cycles)",
        serve_events, sim_events, gemm.total_cycles
    );
    if serve_events == 0 || sim_events == 0 {
        return Err(format!(
            "merged trace must carry both layers: {serve_events} serve events, {sim_events} sim events"
        )
        .into());
    }
    rec.metric("trace.serve_events", serve_events as f64);
    rec.metric("trace.sim_events", sim_events as f64);
    if let Some(path) = trace_path_from_env() {
        trace.write(&path)?;
        rec.config_str("trace_path", &path.display().to_string());
        println!("  merged trace written to {}", path.display());
    }

    // ---- OpenMetrics: every emitted snapshot must validate -------------
    section("OpenMetrics exposition — render → validate round trip on every snapshot");
    let mut merged = MetricsRegistry::new();
    for (label, r) in [("clean", &clean), ("chaos", &chaos), ("overload", &overload)] {
        let text = roundtrip_snapshot(label, &r.registry)?;
        println!("  {label:<9} snapshot: {} bytes, validated", text.len());
        merged.merge(&r.registry);
    }
    merged.merge(&gemm_tele.registry);
    let text = openmetrics::render_labeled(&merged, &[("experiment", "obs_sweep")]);
    let doc = openmetrics::validate(&text).map_err(|e| format!("merged snapshot rejected: {e}"))?;
    rec.metric("openmetrics.families", doc.families.len() as f64);
    println!("  merged snapshot: {} families, validated", doc.families.len());
    if let Some(path) = metrics_path_from_env() {
        // rec.finish() writes the validated record snapshot there.
        rec.config_str("metrics_path", &path.display().to_string());
    }

    rec.merge_registry(&merged);
    rec.finish();
    Ok(())
}
