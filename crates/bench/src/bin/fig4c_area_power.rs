//! Regenerates Fig 4(c): the area/power accounting of the decoupled
//! FPU/FXU pipelines that justified double-pumping the INT4/INT2 engines.

use rapid_arch::area::MpeAreaModel;
use rapid_arch::geometry::MpeConfig;
use rapid_arch::power::EnergyTable;
use rapid_arch::precision::Precision;
use rapid_bench::{compare, section, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig4c_area_power");
    let m = MpeAreaModel::rapid();
    let e = EnergyTable::rapid_7nm();
    let mpe = MpeConfig::default();

    section("Fig 4(c) — MPE area/power accounting (FPU pipeline = 1.0)");
    compare(
        "INT pipeline area overhead",
        format!("{:.0}%", (m.total_relative_area() - 1.0) * 100.0),
        "~16%",
    );
    compare("single INT4 engine power vs FP16 pipeline", format!("{:.2}x", m.int4_engine_power), "0.3x");
    compare(
        "doubled INT4 engines power vs FP16 pipeline",
        format!("{:.2}x", m.doubled_int4_power()),
        "0.6x (enables double pumping)",
    );

    section("derived per-MPE throughput (consequence of the doubling)");
    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4, Precision::Int2] {
        println!(
            "  {p}: {:>3} MACs/cycle, {:>5.1} LRF-resident channels, {:.4} pJ/op at 0.55 V",
            mpe.macs_per_cycle(p),
            mpe.lrf_ci_depth(p),
            e.mpe_op_pj(p)
        );
    }
    println!("\nenergy/op ratio int4:fp16 = {:.2} (8x rate at ~0.85x pipeline power)",
        e.mpe_int4_op_pj / e.mpe_fp16_op_pj);
    rec.metric("int_pipeline_area_overhead", m.total_relative_area() - 1.0);
    rec.metric("int4_engine_power_rel", m.int4_engine_power);
    rec.metric("doubled_int4_power_rel", m.doubled_int4_power());
    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4, Precision::Int2] {
        rec.metric(&format!("{p}.macs_per_cycle"), f64::from(mpe.macs_per_cycle(p)));
        rec.metric(&format!("{p}.mpe_op_pj"), e.mpe_op_pj(p));
    }
    rec.finish();
}
