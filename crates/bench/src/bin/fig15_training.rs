//! Regenerates Fig 15: training throughput (inputs/s) on the 4-chip ×
//! 32-core system at FP16 vs Hybrid-FP8, minibatch 512.

use rapid_arch::precision::Precision;
use rapid_bench::{compare, mean, min_max, section, suite_map, train_step, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig15_training");
    section("Fig 15 — training throughput, 4 × 32-core chips, minibatch 512");
    println!(
        "{:<12} {:>11} {:>11} {:>8} | {:>10} {:>9} {:>8} {:>8}",
        "benchmark", "fp16 ips", "hfp8 ips", "speedup", "hfp8 TFLOPS", "compute", "memory", "comm"
    );
    let rows = suite_map(|net| {
        (train_step(net, Precision::Fp16), train_step(net, Precision::Hfp8))
    });
    let mut speedups = Vec::new();
    let mut tflops = Vec::new();
    for (name, (f16, h8)) in &rows {
        let s = f16.step_time_s / h8.step_time_s;
        speedups.push(s);
        tflops.push(h8.sustained_tflops);
        println!(
            "{:<12} {:>11.0} {:>11.0} {:>7.2}x | {:>10.0} {:>8.1}ms {:>7.1}ms {:>7.2}ms",
            name,
            f16.inputs_per_s,
            h8.inputs_per_s,
            s,
            h8.sustained_tflops,
            h8.compute_s * 1e3,
            h8.memory_s * 1e3,
            h8.comm_s * 1e3
        );
    }
    println!();
    let (lo, hi) = min_max(&speedups);
    let (tlo, thi) = min_max(&tflops);
    compare(
        "HFP8 training speedup over FP16",
        format!("{lo:.2}x - {hi:.2}x (avg {:.2}x)", mean(&speedups)),
        "1.1x - 2x (avg 1.4x)",
    );
    compare(
        "HFP8 sustained TFLOPS",
        format!("{tlo:.0} - {thi:.0} (avg {:.0})", mean(&tflops)),
        "102 - 588 (avg 203)",
    );
    for (name, (f16, h8)) in &rows {
        rec.metric(&format!("{name}.hfp8_inputs_per_s"), h8.inputs_per_s);
        rec.metric(&format!("{name}.hfp8_speedup"), f16.step_time_s / h8.step_time_s);
        rec.metric(&format!("{name}.hfp8_sustained_tflops"), h8.sustained_tflops);
    }
    rec.metric("hfp8_speedup.mean", mean(&speedups));
    rec.metric("hfp8_sustained_tflops.mean", mean(&tflops));
    println!("\nnote: absolute sustained TFLOPS run higher than the paper's testbed —");
    println!("our bandwidth-centric model omits silicon-level stalls; ordering and");
    println!("saturation behaviour match (see EXPERIMENTS.md).");
    rec.finish();
}
