//! Regenerates Fig 17: the breakdown of compute cycles for INT4 inference
//! into Conv/GEMM, Conv/GEMM overheads, quantization and auxiliary
//! operations.

use rapid_arch::precision::Precision;
use rapid_bench::{compare, infer, section, suite_map, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig17_breakdown");
    section("Fig 17 — INT4 inference compute-cycle breakdown, 4-core chip");
    println!(
        "{:<12} {:>10} {:>11} {:>10} {:>10}",
        "benchmark", "conv/gemm", "overheads", "quantize", "auxiliary"
    );
    let rows = suite_map(|net| infer(net, Precision::Int4, None));
    let mut sums = [0.0f64; 4];
    for (name, r) in &rows {
        let f = r.breakdown.fractions();
        for (s, v) in sums.iter_mut().zip(f) {
            *s += v;
        }
        rec.metric(&format!("{name}.gemm_frac"), f[0]);
        rec.metric(&format!("{name}.overhead_frac"), f[1]);
        rec.metric(&format!("{name}.quant_frac"), f[2]);
        rec.metric(&format!("{name}.aux_frac"), f[3]);
        println!(
            "{:<12} {:>9.0}% {:>10.0}% {:>9.0}% {:>9.0}%",
            name,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
    }
    let n = rows.len() as f64;
    println!();
    compare("avg Conv/GEMM", format!("{:.0}%", sums[0] / n * 100.0), "50%");
    compare("avg Conv/GEMM overheads", format!("{:.0}%", sums[1] / n * 100.0), "14%");
    compare("avg quantization", format!("{:.0}%", sums[2] / n * 100.0), "17%");
    compare("avg auxiliary ops", format!("{:.0}%", sums[3] / n * 100.0), "19%");
    println!("\npaper's qualitative observations to check above:");
    println!("  - inception3/4, tiny-yolov3 and LSTMs show large Conv/GEMM overheads");
    println!("  - large-activation CNNs (vgg16, yolov3) show visible quantization cost");
    println!("  - mobile networks (mobilenetv1, tiny-yolov3) are auxiliary-heavy");
    rec.metric("gemm_frac.mean", sums[0] / n);
    rec.metric("overhead_frac.mean", sums[1] / n);
    rec.metric("quant_frac.mean", sums[2] / n);
    rec.metric("aux_frac.mean", sums[3] / n);
    rec.finish();
}
