//! Batch-size sensitivity: the paper fixes inference at batch 1 (§V-A)
//! because RaPiD's dataflow was designed to keep utilization high there
//! ("achieve high utilization all the way down to batch size of 1",
//! §III-A-4). This sweep quantifies that design point: per-input latency
//! and MPE utilization as the batch grows, for a CNN (already efficient at
//! batch 1) and the batch-1-hostile LSTM (block-load-bound GEMVs).

use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_bench::{section, BenchRecord};
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_model::cost::ModelConfig;
use rapid_model::inference::evaluate_inference;
use rapid_workloads::suite::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("batch_sweep");
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    section("batch-size sweep — INT4 inference, per-input latency (µs)");
    print!("{:<12}", "benchmark");
    for b in [1u64, 2, 4, 8, 16] {
        print!(" {:>9}", format!("b={b}"));
    }
    println!(" {:>12}", "b16 gain");
    for name in ["resnet50", "vgg16", "mobilenetv1", "lstm", "bilstm", "bert"] {
        let net = benchmark(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        print!("{name:<12}");
        let mut per_input = Vec::new();
        for b in [1u64, 2, 4, 8, 16] {
            let r = evaluate_inference(&net, &plan, &chip, b, &cfg);
            let t = r.latency_s * 1e6 / b as f64;
            per_input.push(t);
            print!(" {:>9.0}", t);
        }
        println!(" {:>11.2}x", per_input[0] / per_input[4]);
        rec.metric(&format!("{name}.b1_latency_us"), per_input[0]);
        rec.metric(&format!("{name}.b16_gain"), per_input[0] / per_input[4]);
    }
    println!("\nCNNs gain little (the weight-stationary dataflow already streams H x W at");
    println!("batch 1); the LSTM's recurrent GEMVs amortize their block-loads and weight");
    println!("re-fetches across the batch — the reason training (minibatch 512) reaches");
    println!("far higher utilization than batch-1 inference on the same layers.");
    rec.finish();
    Ok(())
}
