//! Cross-experiment telemetry summary: reads the aggregate record file
//! `repro_all` writes (`BENCH_repro.json` by default) and renders one
//! table over every experiment — wall-clock, config header, and metric
//! counts — plus the headline metric of each record.
//!
//! Usage: `telemetry_report [PATH] [--validate]`
//!
//! With `--validate` the binary only checks the file against the
//! `rapid-bench-aggregate-v1` schema and exits non-zero on any violation
//! (the `scripts/check.sh --telemetry` gate).

use rapid_telemetry::{validate_aggregate, Json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut path = String::from("BENCH_repro.json");
    let mut validate_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate" => validate_only = true,
            "--help" | "-h" => {
                println!("usage: telemetry_report [PATH] [--validate]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}' (usage: telemetry_report [PATH] [--validate])");
                return ExitCode::FAILURE;
            }
            other => path = other.to_string(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_aggregate(&doc) {
        eprintln!("error: {path} fails schema validation: {e}");
        return ExitCode::FAILURE;
    }
    let records: &[Json] = doc.get("records").and_then(Json::as_arr).unwrap_or(&[]);
    if validate_only {
        println!("{path}: valid ({} records)", records.len());
        return ExitCode::SUCCESS;
    }

    println!("telemetry report — {path} ({} experiments)\n", records.len());
    println!(
        "{:<24} {:>10} {:>8} {:>12} {:>8}",
        "experiment", "wall ms", "threads", "fault seed", "metrics"
    );
    let mut total_ms = 0.0;
    for r in records {
        let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let wall = r.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
        total_ms += wall;
        let config = r.get("config");
        let threads = config
            .and_then(|c| c.get("threads"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let seed = config
            .and_then(|c| c.get("fault_seed"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let n_metrics = r.get("metrics").and_then(Json::as_obj).map_or(0, <[_]>::len);
        println!("{name:<24} {wall:>10.1} {threads:>8.0} {seed:>12.0} {n_metrics:>8}");
    }
    println!("\ncumulative experiment wall-clock: {:.2}s", total_ms / 1e3);

    println!("\nheadline metrics:");
    for r in records {
        let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let Some(metrics) = r.get("metrics").and_then(Json::as_obj) else { continue };
        // Prefer a summary metric (means first); fall back to the first.
        let pick = metrics
            .iter()
            .find(|(k, _)| k.ends_with(".mean"))
            .or_else(|| metrics.first());
        if let Some((k, v)) = pick {
            if let Some(x) = v.as_f64() {
                println!("  {name:<24} {k} = {x:.4}");
            }
        }
    }

    // Elastic-training health: any record carrying the ring.elastic.* /
    // recover.elastic.* counters gets its survival story summarized.
    let elastic: Vec<&Json> = records
        .iter()
        .filter(|r| {
            r.get("metrics")
                .and_then(Json::as_obj)
                .is_some_and(|m| m.iter().any(|(k, _)| k.starts_with("ring.elastic.")))
        })
        .collect();
    if !elastic.is_empty() {
        println!("\nelastic training health:");
        let counters = [
            ("recover.elastic.crashes_survived", "crashes survived"),
            ("recover.elastic.hangs_survived", "hangs survived"),
            ("ring.elastic.splices", "ring splices"),
            ("recover.elastic.stragglers_retained", "stragglers waited out"),
            ("recover.elastic.stragglers_dropped", "stragglers dropped"),
            ("recover.elastic.barriers", "checkpoint barriers"),
            ("recover.elastic.epochs_resumed", "epochs resumed"),
        ];
        for r in elastic {
            let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let metric = |k: &str| {
                r.get("metrics").and_then(|m| m.get(k)).and_then(Json::as_f64).unwrap_or(0.0)
            };
            println!("  {name}:");
            for (key, label) in counters {
                println!("    {label:<24} {:>10.0}", metric(key));
            }
            let cycles = metric("recover.elastic.cycles");
            let ideal = metric("recover.elastic.ideal_cycles");
            if cycles > 0.0 {
                println!("    {:<24} {:>9.1}%", "goodput", ideal / cycles * 100.0);
            }
        }
    }
    ExitCode::SUCCESS
}
