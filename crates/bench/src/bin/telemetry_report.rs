//! Cross-experiment telemetry summary: reads the aggregate record file
//! `repro_all` writes (`BENCH_repro.json` by default) and renders one
//! table over every experiment — wall-clock, config header, and metric
//! counts — plus the headline metric of each record and a perf-trajectory
//! diff against the rotated previous aggregate
//! (`BENCH_repro.prev.json`), with structured `warning:` lines (never
//! failures) on >20% latency or goodput regressions.
//!
//! Usage: `telemetry_report [PATH] [--validate] [--validate-openmetrics OM_PATH]`
//!
//! With `--validate` the binary only checks the file against the
//! `rapid-bench-aggregate-v1` schema and exits non-zero on any violation
//! (the `scripts/check.sh --telemetry` gate). With
//! `--validate-openmetrics` it instead runs the strict OpenMetrics
//! parser over the given text snapshot (the `check.sh --obs` gate).

use rapid_telemetry::{validate_aggregate, validate_openmetrics, Json};
use std::process::ExitCode;

const USAGE: &str = "usage: telemetry_report [PATH] [--validate] [--validate-openmetrics OM_PATH]";

/// Validates one OpenMetrics text snapshot with the strict parser.
fn check_openmetrics(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_openmetrics(&text) {
        Ok(doc) => {
            println!("{path}: valid OpenMetrics ({} families)", doc.families.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path} fails OpenMetrics validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Whether a bigger value of this metric means the system got slower.
fn lower_is_better(name: &str) -> bool {
    name.ends_with("p50_ms") || name.ends_with("p99_ms") || name.contains("latency")
}

/// Whether a smaller value of this metric means the system got slower.
fn higher_is_better(name: &str) -> bool {
    name.contains("goodput") || name.contains("speedup") || name.contains("throughput")
        || name.contains("retention")
}

/// The perf-trajectory section: per-metric deltas against the previous
/// aggregate. Regressions beyond 20% print as structured `warning:`
/// lines but never fail the report — the kernel-speed *gate* (which does
/// fail) lives in `repro_all`.
fn print_trajectory(records: &[Json], prev: &Json) {
    const REGRESSION: f64 = 1.2;
    let empty: &[Json] = &[];
    let prev_records = prev.get("records").and_then(Json::as_arr).unwrap_or(empty);
    let mut compared = 0usize;
    let mut warnings: Vec<String> = Vec::new();
    for r in records {
        let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let Some(p) = prev_records
            .iter()
            .find(|p| p.get("experiment").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        let (Some(cur), Some(old)) = (
            r.get("metrics").and_then(Json::as_obj),
            p.get("metrics").and_then(Json::as_obj),
        ) else {
            continue;
        };
        for (k, v) in cur {
            let new = v.as_f64();
            let was = old.iter().find(|(ok, _)| ok == k).and_then(|(_, ov)| ov.as_f64());
            let (Some(new), Some(was)) = (new, was) else { continue };
            compared += 1;
            if was <= 0.0 {
                continue;
            }
            let ratio = new / was;
            if lower_is_better(k) && ratio > REGRESSION {
                warnings.push(format!(
                    "latency regression: {name}:{k} rose {was:.3} -> {new:.3} (+{:.0}%)",
                    (ratio - 1.0) * 100.0
                ));
            } else if higher_is_better(k) && ratio < 1.0 / REGRESSION {
                warnings.push(format!(
                    "throughput regression: {name}:{k} fell {was:.3} -> {new:.3} (-{:.0}%)",
                    (1.0 - ratio) * 100.0
                ));
            }
        }
    }
    println!(
        "\nperf trajectory vs previous aggregate ({} experiments, {} shared metrics):",
        prev_records.len(),
        compared
    );
    if warnings.is_empty() {
        println!("  no metric moved more than 20% in the slower direction");
    }
    for w in &warnings {
        println!("  warning: {w}");
    }
}

fn main() -> ExitCode {
    let mut path = String::from("BENCH_repro.json");
    let mut validate_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--validate" => validate_only = true,
            "--validate-openmetrics" => {
                let Some(p) = args.next() else {
                    eprintln!("--validate-openmetrics requires a path ({USAGE})");
                    return ExitCode::FAILURE;
                };
                return check_openmetrics(&p);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}' ({USAGE})");
                return ExitCode::FAILURE;
            }
            other => path = other.to_string(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_aggregate(&doc) {
        eprintln!("error: {path} fails schema validation: {e}");
        return ExitCode::FAILURE;
    }
    let records: &[Json] = doc.get("records").and_then(Json::as_arr).unwrap_or(&[]);
    if validate_only {
        println!("{path}: valid ({} records)", records.len());
        return ExitCode::SUCCESS;
    }

    println!("telemetry report — {path} ({} experiments)\n", records.len());
    println!(
        "{:<24} {:>10} {:>8} {:>12} {:>8}",
        "experiment", "wall ms", "threads", "fault seed", "metrics"
    );
    let mut total_ms = 0.0;
    for r in records {
        let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let wall = r.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
        total_ms += wall;
        let config = r.get("config");
        let threads = config
            .and_then(|c| c.get("threads"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let seed = config
            .and_then(|c| c.get("fault_seed"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let n_metrics = r.get("metrics").and_then(Json::as_obj).map_or(0, <[_]>::len);
        println!("{name:<24} {wall:>10.1} {threads:>8.0} {seed:>12.0} {n_metrics:>8}");
    }
    println!("\ncumulative experiment wall-clock: {:.2}s", total_ms / 1e3);

    println!("\nheadline metrics:");
    for r in records {
        let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let Some(metrics) = r.get("metrics").and_then(Json::as_obj) else { continue };
        // Prefer a summary metric (means first); fall back to the first.
        let pick = metrics
            .iter()
            .find(|(k, _)| k.ends_with(".mean"))
            .or_else(|| metrics.first());
        if let Some((k, v)) = pick {
            if let Some(x) = v.as_f64() {
                println!("  {name:<24} {k} = {x:.4}");
            }
        }
    }

    // Elastic-training health: any record carrying the ring.elastic.* /
    // recover.elastic.* counters gets its survival story summarized.
    let elastic: Vec<&Json> = records
        .iter()
        .filter(|r| {
            r.get("metrics")
                .and_then(Json::as_obj)
                .is_some_and(|m| m.iter().any(|(k, _)| k.starts_with("ring.elastic.")))
        })
        .collect();
    if !elastic.is_empty() {
        println!("\nelastic training health:");
        let counters = [
            ("recover.elastic.crashes_survived", "crashes survived"),
            ("recover.elastic.hangs_survived", "hangs survived"),
            ("ring.elastic.splices", "ring splices"),
            ("recover.elastic.stragglers_retained", "stragglers waited out"),
            ("recover.elastic.stragglers_dropped", "stragglers dropped"),
            ("recover.elastic.barriers", "checkpoint barriers"),
            ("recover.elastic.epochs_resumed", "epochs resumed"),
        ];
        for r in elastic {
            let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let metric = |k: &str| {
                r.get("metrics").and_then(|m| m.get(k)).and_then(Json::as_f64).unwrap_or(0.0)
            };
            println!("  {name}:");
            for (key, label) in counters {
                println!("    {label:<24} {:>10.0}", metric(key));
            }
            let cycles = metric("recover.elastic.cycles");
            let ideal = metric("recover.elastic.ideal_cycles");
            if cycles > 0.0 {
                println!("    {:<24} {:>9.1}%", "goodput", ideal / cycles * 100.0);
            }
        }
    }

    // Core health: any record carrying the health.* probe/quarantine
    // counters gets its mercurial-core story summarized.
    let health: Vec<&Json> = records
        .iter()
        .filter(|r| {
            r.get("metrics")
                .and_then(Json::as_obj)
                .is_some_and(|m| m.iter().any(|(k, _)| k.starts_with("health.probe.")))
        })
        .collect();
    if !health.is_empty() {
        println!("\ncore health (probes & quarantine):");
        let counters = [
            ("health.probe.cycles", "probe cycles"),
            ("health.probe.runs", "probes run"),
            ("health.probe.failures", "probe failures"),
            ("health.quarantines", "cores quarantined"),
            ("health.reinstatements", "cores reinstated"),
            ("health.slo.quarantine.alerts", "quarantine SLO alerts"),
            ("serve.integrity_retries", "integrity retries"),
            ("serve.silent_wrong", "silent-wrong responses"),
        ];
        for r in health {
            let name = r.get("experiment").and_then(Json::as_str).unwrap_or("?");
            let metric = |k: &str| {
                r.get("metrics").and_then(|m| m.get(k)).and_then(Json::as_f64).unwrap_or(0.0)
            };
            println!("  {name}:");
            for (key, label) in counters {
                println!("    {label:<24} {:>10.0}", metric(key));
            }
            let latency = metric("detect.mean_latency_us");
            if latency > 0.0 {
                println!("    {:<24} {latency:>8.0}us", "mean detection latency");
            }
            let retention = metric("serve.goodput_retention");
            if retention > 0.0 {
                println!(
                    "    {:<24} {:>9.1}% (floor {:.1}%)",
                    "goodput retention",
                    retention * 100.0,
                    metric("serve.retention_floor") * 100.0
                );
            }
        }
    }

    // Perf trajectory against the rotated previous aggregate, when the
    // rotation (repro_all) has left one next to this file.
    let prev_path = std::path::Path::new(&path).with_extension("prev.json");
    match std::fs::read_to_string(&prev_path) {
        Ok(prev_text) => match Json::parse(&prev_text) {
            Ok(prev) => print_trajectory(records, &prev),
            Err(e) => println!(
                "\nperf trajectory: previous aggregate {} is not valid JSON: {e}",
                prev_path.display()
            ),
        },
        Err(_) => println!(
            "\nperf trajectory: no previous aggregate at {} (first recorded run)",
            prev_path.display()
        ),
    }
    ExitCode::SUCCESS
}
