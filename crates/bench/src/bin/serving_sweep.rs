//! Serving overload chaos sweep (EXPERIMENTS.md E21): offered QPS vs
//! goodput/p50/p99 for three runtime configurations, with and without an
//! active fault plan.
//!
//! The latency table is calibrated from the analytical model over the
//! full 11-workload suite; the load generator then drives the serving
//! engine in virtual time (seeded Poisson arrivals), so every cell is
//! bit-reproducible and the whole sweep runs in seconds of wall clock.
//!
//! Configurations:
//!
//! - `hardened` — admission control + deadline propagation +
//!   precision-tiered shedding + breaker (the full stack)
//! - `admission` — admission control and deadline propagation only
//! - `naive` — none of it: workers execute stale work (collapse
//!   baseline; late results still convert to timeouts, never delivered)
//!
//! Hard assertions, enforced on every cell: zero lost requests
//! (conservation) and zero deadline-violating completions. The overload
//! acceptance bar: hardened goodput at 2× saturation stays within 80% of
//! its 1× value while naive collapses below half of hardened.
//!
//! Usage: `serving_sweep [--smoke] [--seed N] [--json PATH]`.

use rapid_bench::{section, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig};
use rapid_model::{LatencyTable, ModelConfig};
use rapid_numerics::GuardPolicy;
use rapid_recover::backend::Protection;
use rapid_serve::{
    run_open_loop, EmulatedSession, OfferedLoad, OkSession, ServeConfig, SweepResult, Tier,
};
use rapid_telemetry::{spans_to_trace, trace_path_from_env, TraceSink};
use rapid_workloads::graph::Network;
use rapid_workloads::suite::benchmark_suite;

use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;

struct Cell {
    config: &'static str,
    mult_label: &'static str,
    result: SweepResult,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("serving_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(7);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: serving_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });

    // ---- calibrate the admission surrogate over the full suite ---------
    let suite: Vec<Network> = benchmark_suite();
    let chip = ChipConfig::rapid_4core();
    let table = LatencyTable::build(&suite, &chip, &ModelConfig::default(), 8);
    rec.config_num("models_calibrated", table.models().len() as f64);
    section(&format!(
        "serving sweep — {} models calibrated, seed {seed} (override with --seed or RAPID_FAULT_SEED)",
        table.models().len()
    ));

    // Load mix: a latency spread of CNNs plus a transformer. Saturation
    // is the mixed-capacity of the default worker pool at FP16.
    let models: Vec<String> = if smoke {
        vec!["resnet50".to_string()]
    } else {
        vec!["resnet50".to_string(), "mobilenetv1".to_string(), "bert".to_string()]
    };
    let base_cfg = ServeConfig::hardened();
    let mean_per_req_us = models
        .iter()
        .filter_map(|m| {
            let e = table.entry(m, Precision::Fp16)?;
            Some(e.per_item_us + e.base_us / base_cfg.batch_max as f64)
        })
        .sum::<f64>()
        / models.len() as f64;
    let sat_qps = base_cfg.workers as f64 * 1e6 / mean_per_req_us;
    // Deadline budget: a handful of full-batch service times, so queueing
    // headroom exists at saturation but stale work is clearly late.
    let worst_batch_us = models
        .iter()
        .filter_map(|m| table.estimate_us(m, Precision::Fp16, base_cfg.batch_max))
        .fold(0.0f64, f64::max);
    let deadline_budget_us = (4.0 * worst_batch_us) as u64 + 4 * base_cfg.batch_window_us;
    rec.metric("sweep.saturation_qps", sat_qps);
    rec.config_num("deadline_budget_us", deadline_budget_us as f64);
    println!(
        "mixed saturation ≈ {sat_qps:.0} qps, deadline budget {deadline_budget_us} us, \
         models: {models:?}"
    );

    // Keep virtual-event counts bounded: enough arrivals at 2× for stable
    // percentiles (and, in the full run, a window long enough that the
    // naive runtime's fill-the-queue transient stops dominating its
    // steady-state goodput), small enough that the sweep stays fast.
    let target_arrivals = if smoke { 2_000.0 } else { 25_000.0 };
    let duration_us = ((target_arrivals / (2.0 * sat_qps)) * 1e6) as u64;

    // The queue must be able to hold clearly *more* than one deadline
    // budget worth of work, or queue-full backpressure alone keeps even
    // the naive runtime's backlog fresh and hides the collapse the
    // experiment measures. Size it to 3× the admission-limited depth
    // (the number of requests a full deadline budget can drain), same
    // geometry at every calibrated workload mix.
    let admit_requests = deadline_budget_us as f64 * base_cfg.workers as f64 / mean_per_req_us;
    let queue_cap = base_cfg.queue_cap.max((3.0 * admit_requests).ceil() as usize);
    rec.config_num("queue_cap", queue_cap as f64);
    // Shedding watermarks must sit *below* the admission-limited depth,
    // or the shedder never engages before admission starts rejecting.
    // Anchor them to it: downgrades begin at half that occupancy.
    let admit_depth = admit_requests.min(queue_cap as f64) / queue_cap as f64;
    let shed = rapid_serve::ShedConfig {
        hi: (admit_depth * 0.5).clamp(0.05, 0.9),
        lo: (admit_depth * 0.2).clamp(0.02, 0.5),
        ..rapid_serve::ShedConfig::default()
    };
    let hardened = ServeConfig { shed: Some(shed), queue_cap, ..ServeConfig::hardened() };
    rec.config_num("shed_hi", shed.hi);
    let configs: [(&str, ServeConfig); 3] = [
        ("hardened", hardened.clone()),
        ("admission", ServeConfig { queue_cap, ..ServeConfig::admission_only() }),
        ("naive", ServeConfig { queue_cap, ..ServeConfig::naive() }),
    ];
    let mults: [(f64, &str); 4] = [(0.5, "0.5x"), (1.0, "1x"), (1.5, "1.5x"), (2.0, "2x")];

    // ---- sweep 1: overload curves, clean execution ---------------------
    section("sweep 1 — offered load vs goodput (clean execution)");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "config", "mult", "offered", "goodput", "p50 ms", "p99 ms", "shed", "downgr", "reject",
        "timeout"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for (cname, cfg) in &configs {
        for &(mult, mlabel) in &mults {
            let load = OfferedLoad {
                qps: sat_qps * mult,
                duration_us,
                seed: derive_seed(seed, &format!("serving_sweep/{cname}/{mlabel}")),
                deadline_budget_us,
                critical_fraction: 0.1,
                models: models.clone(),
                tier: Tier::Fp16,
            };
            let r = run_open_loop(cfg, &table, &load, &OkSession);
            println!(
                "{:<10} {:>6} {:>10.0} {:>10.0} {:>9.2} {:>9.2} {:>8} {:>8} {:>8} {:>8}",
                cname,
                mlabel,
                r.offered_qps,
                r.goodput_qps,
                r.p50_ms,
                r.p99_ms,
                r.counters.shed,
                r.counters.downgraded,
                r.counters.rejected,
                r.counters.timed_out
            );
            cells.push(Cell { config: cname, mult_label: mlabel, result: r });
        }
    }

    let mut lost_total: i64 = 0;
    let mut violations_total: u64 = 0;
    for cell in &cells {
        let c = &cell.result.counters;
        lost_total += c.lost();
        violations_total += c.deadline_violations;
        let prefix = format!("{}.{}", cell.config, cell.mult_label);
        rec.metric(&format!("{prefix}.offered_qps"), cell.result.offered_qps);
        rec.metric(&format!("{prefix}.goodput_qps"), cell.result.goodput_qps);
        rec.metric(&format!("{prefix}.p50_ms"), cell.result.p50_ms);
        rec.metric(&format!("{prefix}.p99_ms"), cell.result.p99_ms);
        rec.metric(&format!("{prefix}.submitted"), c.submitted as f64);
        rec.metric(&format!("{prefix}.completed"), c.completed as f64);
        rec.metric(&format!("{prefix}.shed"), c.shed as f64);
        rec.metric(&format!("{prefix}.downgraded"), c.downgraded as f64);
        rec.metric(&format!("{prefix}.rejected"), c.rejected as f64);
        rec.metric(&format!("{prefix}.timed_out"), c.timed_out as f64);
        rec.metric(&format!("{prefix}.slo_alerts"), cell.result.slo.total_alerts() as f64);
    }

    let goodput = |cfg: &str, mult: &str| {
        cells
            .iter()
            .find(|c| c.config == cfg && c.mult_label == mult)
            .map(|c| c.result.goodput_qps)
            .unwrap_or(0.0)
    };

    // ---- sweep 2: chaos cells — same 1× load, faults on vs off ---------
    section("sweep 2 — fault plan active (serving transients + MAC upsets at 1× saturation)");
    let chaos_load = OfferedLoad {
        qps: sat_qps,
        duration_us: duration_us.min(if smoke { 200_000 } else { 500_000 }),
        seed: derive_seed(seed, "serving_sweep/chaos"),
        deadline_budget_us,
        critical_fraction: 0.1,
        models: models.clone(),
        tier: Tier::Hfp8,
    };
    let faulty_cfg = FaultConfig {
        seed: derive_seed(seed, "serving_sweep/chaos-faults"),
        serve_transient_rate: 0.05,
        mac_acc_rate: 1e-5,
        exponent_share: 0.7,
        ..FaultConfig::default()
    };
    let chaos_serve = hardened.clone();
    let clean_session = EmulatedSession::clean();
    let faulty_session =
        EmulatedSession::new(faulty_cfg, GuardPolicy::Error, Protection::Abft);
    let clean = run_open_loop(&chaos_serve, &table, &chaos_load, &clean_session);
    let faulty = run_open_loop(&chaos_serve, &table, &chaos_load, &faulty_session);
    let injected = faulty_session.fault_counts();
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "plan", "goodput", "completed", "retries", "breaker", "reject", "timeout", "lost"
    );
    for (label, r) in [("clean", &clean), ("faulty", &faulty)] {
        let c = &r.counters;
        println!(
            "{:<8} {:>10.0} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8}",
            label,
            r.goodput_qps,
            c.completed,
            c.retries,
            c.breaker_opens,
            c.rejected,
            c.timed_out,
            c.lost()
        );
        rec.metric(&format!("chaos.{label}.goodput_qps"), r.goodput_qps);
        rec.metric(&format!("chaos.{label}.completed"), c.completed as f64);
        rec.metric(&format!("chaos.{label}.retries"), c.retries as f64);
        rec.metric(&format!("chaos.{label}.breaker_opens"), c.breaker_opens as f64);
        rec.metric(&format!("chaos.{label}.slo_alerts"), r.slo.total_alerts() as f64);
        lost_total += c.lost();
        violations_total += c.deadline_violations;
    }
    println!(
        "injected: {} serving transients over {} dispatch sites",
        injected.serve_transients, faulty.counters.batches
    );
    rec.metric("chaos.injected_transients", injected.serve_transients as f64);

    // ---- hard invariants and the overload acceptance bar ---------------
    section("invariants");
    rec.metric("sweep.lost_total", lost_total as f64);
    rec.metric("sweep.deadline_violations_total", violations_total as f64);
    // The burn-rate monitors ride every cell; the fault-free underloaded
    // one must never page.
    let alerts_05 = cells
        .iter()
        .find(|c| c.config == "hardened" && c.mult_label == "0.5x")
        .map_or(0, |c| c.result.slo.total_alerts());
    let h1 = goodput("hardened", "1x");
    let h2 = goodput("hardened", "2x");
    let n2 = goodput("naive", "2x");
    let retention = if h1 > 0.0 { h2 / h1 } else { 0.0 };
    let collapse = if h2 > 0.0 { n2 / h2 } else { 1.0 };
    rec.metric("sweep.hardened_2x_retention", retention);
    rec.metric("sweep.naive_2x_vs_hardened", collapse);
    println!("lost requests (all cells):            {lost_total}");
    println!("deadline-violating completions:       {violations_total}");
    println!("SLO alerts in hardened 0.5x (clean):  {alerts_05}");
    println!("hardened goodput retention 1x → 2x:   {:.1}%", retention * 100.0);
    println!("naive/hardened goodput ratio at 2x:   {:.2}", collapse);

    let mut errors: Vec<String> = Vec::new();
    if lost_total != 0 {
        errors.push(format!("conservation violated: {lost_total} requests unaccounted"));
    }
    if violations_total != 0 {
        errors.push(format!("{violations_total} completions delivered past deadline"));
    }
    if retention < 0.8 {
        errors.push(format!(
            "hardened goodput at 2x fell to {:.0}% of its 1x value (floor: 80%)",
            retention * 100.0
        ));
    }
    if collapse >= 0.5 {
        errors.push(format!(
            "naive runtime did not collapse at 2x (got {:.2} of hardened goodput; expected < 0.5)",
            collapse
        ));
    }
    if alerts_05 != 0 {
        errors.push(format!(
            "burn-rate rules fired {alerts_05} alerts in the fault-free hardened 0.5x cell"
        ));
    }

    // With RAPID_TRACE set, rerun the hardened 1x clean cell with request
    // spans on and export them as a Chrome trace for Perfetto; the record
    // stamps where the trace went.
    if let Some(trace_path) = trace_path_from_env() {
        section("telemetry — request spans from the hardened 1x cell (RAPID_TRACE)");
        let span_cfg = ServeConfig { record_spans: true, span_seed: seed, ..hardened.clone() };
        let span_load = OfferedLoad {
            qps: sat_qps,
            duration_us: duration_us.min(200_000),
            seed: derive_seed(seed, "serving_sweep/trace"),
            deadline_budget_us,
            critical_fraction: 0.1,
            models: models.clone(),
            tier: Tier::Fp16,
        };
        let r = run_open_loop(&span_cfg, &table, &span_load, &OkSession);
        let mut trace = TraceSink::new();
        spans_to_trace(&r.spans, &mut trace, 1000, "serve", "serve requests");
        trace.write(&trace_path)?;
        rec.metric("trace.span_events", trace.len() as f64);
        rec.config_str("trace_path", &trace_path.display().to_string());
        println!("{} request spans written to {}", r.spans.len(), trace_path.display());
    }
    rec.finish();
    if let Some(e) = errors.first() {
        return Err(e.clone().into());
    }
    Ok(())
}
