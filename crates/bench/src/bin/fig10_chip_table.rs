//! Regenerates Fig 10: the 4-core RaPiD chip specification table —
//! peak throughput and peak efficiency per precision over the 1.0–1.6 GHz
//! operating range.

use rapid_arch::area::ChipFloorplan;
use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::PowerModel;
use rapid_arch::precision::Precision;
use rapid_bench::{compare, section, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig10_chip_table");
    let chip = ChipConfig::rapid_4core();
    let pm = PowerModel::rapid_7nm();
    let fp = ChipFloorplan::rapid_7nm();

    section("Fig 10 — 4-core RaPiD chip specification");
    compare("technology", format!("{} nm (modeled)", fp.node_nm), "7nm");
    compare("chip size", format!("{:.0} mm x {:.0} mm", fp.edge_mm, fp.edge_mm), "6mm x 6mm");
    compare(
        "frequency range",
        format!("{:.1} - {:.1} GHz", chip.freq_min_ghz, chip.freq_max_ghz),
        "1.0 GHz - 1.6 GHz",
    );

    let fmt_range = |p: Precision| {
        format!(
            "{:.1} - {:.1} {}",
            chip.peak_tops(p, chip.freq_min_ghz),
            chip.peak_tops(p, chip.freq_max_ghz),
            p.throughput_unit()
        )
    };
    compare("throughput fp16", fmt_range(Precision::Fp16), "8 - 12.8 TFLOPS");
    compare("throughput hfp8", fmt_range(Precision::Hfp8), "16 - 25.6 TFLOPS");
    compare("throughput int4", fmt_range(Precision::Int4), "64 - 102.4 TOPS");
    compare("throughput int2 (future work)", fmt_range(Precision::Int2), "n/a");

    let eff_range = |p: Precision| {
        format!(
            "{:.2} - {:.2} {}/W",
            pm.peak_efficiency(&chip, p, chip.freq_max_ghz),
            pm.peak_efficiency(&chip, p, chip.freq_min_ghz),
            p.throughput_unit()
        )
    };
    compare("efficiency fp16", eff_range(Precision::Fp16), "0.98 - 1.8 TFLOPS/W");
    compare("efficiency hfp8", eff_range(Precision::Hfp8), "1.9 - 3.5 TFLOPS/W");
    compare("efficiency int4", eff_range(Precision::Int4), "8.9 - 16.5 TOPS/W");

    println!("\npeak chip power at nominal voltage (1.0 GHz):");
    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
        println!("  {p}: {:.2} W", pm.peak_power_w(&chip, p, 1.0));
    }

    for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4, Precision::Int2] {
        rec.metric(&format!("{p}.peak_tops_max_freq"), chip.peak_tops(p, chip.freq_max_ghz));
        rec.metric(
            &format!("{p}.peak_efficiency_min_freq"),
            pm.peak_efficiency(&chip, p, chip.freq_min_ghz),
        );
        rec.metric(&format!("{p}.peak_power_w"), pm.peak_power_w(&chip, p, 1.0));
    }
    rec.finish();
}
