//! Fault-injection sweep (robustness experiment): how much seeded datapath
//! corruption the HFP8 training recipe absorbs, and how much delivered ring
//! bandwidth survives drop/delay faults. Two sweeps:
//!
//! 1. **MAC bit-flips vs convergence** — a [`GuardedHfp8Backend`] (the
//!    same backend the recovery loop drives) splices a seeded fault plan
//!    into every training GEMM; injected non-finite accumulators are
//!    saturated (`GuardPolicy::Saturate`) so the run continues through
//!    the hit, `guard_clamps` counts the damage, and final accuracy tells
//!    us whether SGD rode it out.
//! 2. **Ring faults vs bandwidth** — the same multicast used by E11, with
//!    flits dropped (source retransmits) and slots held; delivered
//!    B/cycle degrades but every byte still arrives.
//!
//! Usage: `fault_sweep [--smoke] [--seed N]`. The seed also honours the
//! `RAPID_FAULT_SEED` environment variable (`--seed` wins); each sweep
//! cell derives its own child stream from it, so adding or removing a
//! rate never perturbs the other cells.

use rapid_bench::{compare, section, try_par_map, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig, FaultPlan};
use rapid_numerics::GuardPolicy;
use rapid_recover::GuardedHfp8Backend;
use rapid_refnet::backend::Fp32Backend;
use rapid_refnet::data::gaussian_blobs;
use rapid_refnet::mlp::{train, Mlp, TrainConfig};
use rapid_ring::sim::{multicast, RingSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("fault_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(7);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!("unknown argument '{other}' (usage: fault_sweep [--smoke] [--seed N] [--json PATH])").into())
            }
        }
    }
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });

    section(&format!(
        "fault sweep — seeded injection (seed {seed}; override with --seed or RAPID_FAULT_SEED)"
    ));

    // ---- sweep 1: MAC bit-flip rate vs HFP8 training convergence --------
    let epochs = if smoke { 4 } else { 25 };
    let data = gaussian_blobs(if smoke { 256 } else { 768 }, 4, 16, 0.35, 42);
    let cfg = TrainConfig { lr: 0.1, epochs, batch: 32 };
    let mut fp32 = Mlp::new(&[16, 32, 4], 1);
    let acc32 = train(&mut fp32, &Fp32Backend, &data, &cfg);

    let rates: &[f64] =
        if smoke { &[0.0, 1e-3] } else { &[0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2] };
    section("sweep 1 — MAC accumulator/operand bit-flip rate vs HFP8 convergence");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "flip rate", "accuracy", "acc flips", "opd flips", "clamps", "vs FP32"
    );
    // Independent training runs: fan out over the worker pool. Each cell
    // gets its own derived seed so its fault stream is self-contained.
    let rows = try_par_map(rates, |&rate| {
        let backend = GuardedHfp8Backend::new(
            FaultConfig {
                seed: derive_seed(seed, &format!("fault_sweep/rate-{rate:e}")),
                mac_acc_rate: rate,
                mac_operand_rate: rate / 4.0,
                ..FaultConfig::default()
            },
            GuardPolicy::Saturate,
        );
        let mut mlp = Mlp::new(&[16, 32, 4], 1);
        let acc = train(&mut mlp, &backend, &data, &cfg);
        (acc, backend.counts(), backend.stats().guard_clamps)
    });
    for (&rate, row) in rates.iter().zip(rows) {
        match row {
            Ok((acc, counts, clamps)) => {
                rec.metric(&format!("train.rate{rate:e}.accuracy"), acc);
                rec.metric(&format!("train.rate{rate:e}.clamps"), clamps as f64);
                println!(
                "{:<12} {:>9.1}% {:>12} {:>12} {:>12} {:>11.1}%",
                format!("{rate:.0e}"),
                acc * 100.0,
                counts.mac_acc_flips,
                counts.mac_operand_flips,
                clamps,
                (acc - acc32) * 100.0
            );
            }
            Err(reason) => println!("{:<12}     FAILED: {reason}", format!("{rate:.0e}")),
        }
    }
    println!("\nsaturating guards turn injected NaN/Inf into clamped FP16 values, so SGD");
    println!("absorbs sparse hits; convergence only collapses once flips become dense");
    println!("enough to corrupt most accumulation chunks.");

    // ---- sweep 2: ring drop/delay rate vs delivered bandwidth -----------
    section("sweep 2 — ring drop/delay fault rate vs delivered multicast bandwidth");
    let bytes: u32 = if smoke { 16 * 1024 } else { 128 * 1024 };
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>10} {:>12}",
        "drop", "delay", "cycles", "drops", "holds", "B/cycle"
    );
    let mut clean_bw = None;
    for &(drop, delay) in &[(0.0, 0.0), (0.01, 0.0), (0.0, 0.05), (0.02, 0.02), (0.05, 0.05)] {
        let mut sim = RingSim::try_new(4, 20)?;
        sim.set_fault_plan(FaultPlan::new(FaultConfig {
            seed: derive_seed(seed, &format!("fault_sweep/ring-{drop}-{delay}")),
            ring_drop_rate: drop,
            ring_delay_rate: delay,
            ..FaultConfig::default()
        }));
        multicast(&mut sim, 9, 0, &[1, 2, 3], bytes);
        let t = sim.run_until_idle(100_000_000)?;
        let delivered: u64 = (1..4).map(|n| sim.received_bytes(n)).sum();
        let bw = delivered as f64 / t as f64;
        let c = sim.take_fault_plan().map(|p| p.counts()).unwrap_or_default();
        clean_bw.get_or_insert(bw);
        rec.metric(&format!("ring.drop{drop}.delay{delay}.bw"), bw);
        rec.metric(&format!("ring.drop{drop}.delay{delay}.drops"), c.ring_drops as f64);
        println!(
            "{:<10} {:<10} {:>10} {:>10} {:>10} {:>12.2}",
            format!("{:.0}%", drop * 100.0),
            format!("{:.0}%", delay * 100.0),
            t,
            c.ring_drops,
            c.ring_holds,
            bw
        );
        assert_eq!(delivered, 3 * u64::from(bytes), "every byte must still arrive");
    }
    if let Some(base) = clean_bw {
        compare(
            "bandwidth under faults",
            format!("{base:.2} B/cycle fault-free baseline"),
            "drops cost a retransmit round-trip; holds cost their stall window",
        );
    }
    println!("\nthe protocol degrades gracefully: lost flits are retransmitted from the");
    println!("source node and held slots drain late, so delivered bytes are invariant —");
    println!("only the completion time (and thus bandwidth) pays for the fault rate.");
    rec.metric("train.clean_fp32_accuracy", acc32);
    rec.finish();
    Ok(())
}
