//! The paper's stated future work (§VII): "we plan to study INT2
//! performance of RAPID". This binary runs that study on the model —
//! batch-1 INT2 inference across the suite — together with the accuracy
//! caveat the paper gives (≈2% loss at 2 bits, §II-C), demonstrated on
//! the reference trainer.

use rapid_arch::precision::Precision;
use rapid_bench::{compare, infer, mean, min_max, section, suite_map, BenchRecord};
use rapid_numerics::int::IntFormat;
use rapid_refnet::backend::Fp32Backend;
use rapid_refnet::data::gaussian_blobs;
use rapid_refnet::mlp::{train, Mlp, TrainConfig};
use rapid_refnet::qat::{train_qat, QatConfig, QatMlp};
use rapid_refnet::quantized::QuantizedMlp;

fn main() {
    let mut rec = BenchRecord::new("int2_future");
    section("future work — INT2 inference performance (paper §VII)");
    println!(
        "{:<12} {:>11} {:>11} {:>10} {:>10}",
        "benchmark", "int4 inf/s", "int2 inf/s", "int2/int4", "int2/fp16"
    );
    let rows = suite_map(|net| {
        (
            infer(net, Precision::Fp16, None),
            infer(net, Precision::Int4, None),
            infer(net, Precision::Int2, None),
        )
    });
    let mut vs_int4 = Vec::new();
    let mut vs_fp16 = Vec::new();
    for (name, (fp16, int4, int2)) in &rows {
        let r4 = int4.latency_s / int2.latency_s;
        let r16 = fp16.latency_s / int2.latency_s;
        vs_int4.push(r4);
        vs_fp16.push(r16);
        println!(
            "{:<12} {:>11.0} {:>11.0} {:>9.2}x {:>9.2}x",
            name, int4.throughput_per_s, int2.throughput_per_s, r4, r16
        );
    }
    let (lo, hi) = min_max(&vs_int4);
    compare(
        "INT2 speedup over INT4",
        format!("{lo:.2}x - {hi:.2}x (avg {:.2}x)", mean(&vs_int4)),
        "n/a (future work; engines are 2x INT4)",
    );
    compare("INT2 speedup over FP16", format!("avg {:.2}x", mean(&vs_fp16)), "n/a");
    println!("\nINT2 gains are much smaller than the 2x engine ratio: at 128 channels/cycle");
    println!("most layers exhaust their input-channel parallelism, and quantization +");
    println!("auxiliary work (unchanged from INT4) dominates — the reason the paper defers it.");

    section("accuracy caveat (§II-C): INT2 PTQ vs QAT on the reference task");
    let data = gaussian_blobs(512, 4, 16, 0.5, 99);
    let mut fp = Mlp::new(&[16, 32, 4], 5);
    let acc_fp = train(&mut fp, &Fp32Backend, &data, &TrainConfig::default());
    let ptq2 = QuantizedMlp::quantize(&fp, IntFormat::Int2, &data).accuracy(&data);
    let mut q = QatMlp::new(&[16, 32, 4], IntFormat::Int2, 5);
    let qat2 = train_qat(&mut q, &data, &QatConfig::default());
    compare("FP32 reference accuracy", format!("{:.1}%", acc_fp * 100.0), "reference");
    compare(
        "INT2 post-training quantization",
        format!("{:.1}% ({:+.1} pts)", ptq2 * 100.0, (ptq2 - acc_fp) * 100.0),
        "≈2% loss",
    );
    compare(
        "INT2 quantization-aware training (PACT+SaWB)",
        format!("{:.1}% ({:+.1} pts)", qat2 * 100.0, (qat2 - acc_fp) * 100.0),
        "recovers most of the loss",
    );
    rec.metric("int2_vs_int4_speedup.mean", mean(&vs_int4));
    rec.metric("int2_vs_fp16_speedup.mean", mean(&vs_fp16));
    rec.metric("fp32_acc", acc_fp);
    rec.metric("int2_ptq_acc", ptq2);
    rec.metric("int2_qat_acc", qat2);
    rec.finish();
}
