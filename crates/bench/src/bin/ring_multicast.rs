//! Experiment E11: the MNI multicast protocol of Fig 8 — request
//! aggregation, overlapping producer–consumer groups, and effective
//! bandwidths that back the performance model's communication constants.

use rapid_bench::{compare, section, BenchRecord};
use rapid_ring::channel::FLIT_BYTES;
use rapid_ring::sim::{memory_read, multicast, unicast, RingSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("ring_multicast");
    let bytes = 128 * 1024u32;

    section("E11.1 — effective unicast bandwidth");
    let mut sim = RingSim::try_new(4, 20)?;
    unicast(&mut sim, 1, 0, 2, bytes);
    let t = sim.run_until_idle(10_000_000)?;
    let bw = f64::from(bytes) / t as f64;
    compare(
        "core-to-core bandwidth",
        format!("{bw:.1} B/cycle over {t} cycles"),
        format!("{FLIT_BYTES} B/cycle link").as_str(),
    );

    section("E11.2 — multicast vs repeated unicast (0 → {1,2,3})");
    let mut mc = RingSim::try_new(4, 20)?;
    multicast(&mut mc, 9, 0, &[1, 2, 3], bytes);
    let t_mc = mc.run_until_idle(10_000_000)?;
    let mut uc = RingSim::try_new(4, 20)?;
    for (tag, c) in [(1u16, 1usize), (2, 2), (3, 3)] {
        unicast(&mut uc, tag, 0, c, bytes);
    }
    let t_uc = uc.run_until_idle(10_000_000)?;
    let (mcw, mccw) = mc.link_hops();
    let (ucw, uccw) = uc.link_hops();
    compare("multicast completion", format!("{t_mc} cycles, {} hops", mcw + mccw), "1 stream");
    compare("3x unicast completion", format!("{t_uc} cycles, {} hops", ucw + uccw), "3 streams");
    compare(
        "link-traffic saving",
        format!("{:.0}%", (1.0 - (mcw + mccw) as f64 / (ucw + uccw) as f64) * 100.0),
        "one flit stream serves the group",
    );

    section("E11.3 — overlapping multicast groups (0→{1,2} and 3→{1,2})");
    let mut ov = RingSim::try_new(4, 20)?;
    multicast(&mut ov, 11, 0, &[1, 2], bytes);
    multicast(&mut ov, 12, 3, &[1, 2], bytes);
    let t_ov = ov.run_until_idle(10_000_000)?;
    compare(
        "both groups complete concurrently",
        format!("{t_ov} cycles, {} B at core 1", ov.received_bytes(1)),
        "concurrent transfers between overlapping groups",
    );

    section("E11.4 — shared weights from memory (request aggregation at the memory interface)");
    let mut shared = RingSim::try_new(4, 20)?;
    memory_read(&mut shared, 7, &[0, 1, 2, 3], bytes);
    let t_sh = shared.run_until_idle(10_000_000)?;
    let mut separate = RingSim::try_new(4, 20)?;
    for (tag, c) in [(1u16, 0usize), (2, 1), (3, 2), (4, 3)] {
        memory_read(&mut separate, tag, &[c], bytes);
    }
    let t_sep = separate.run_until_idle(10_000_000)?;
    compare("aggregated multicast read", format!("{t_sh} cycles"), "scales to many cores");
    compare("4 separate reads", format!("{t_sep} cycles"), "serializes at the memory port");
    rec.metric("unicast_bw_bytes_per_cycle", bw);
    rec.metric("multicast_cycles", t_mc as f64);
    rec.metric("unicast3_cycles", t_uc as f64);
    rec.metric("link_traffic_saving", 1.0 - (mcw + mccw) as f64 / (ucw + uccw) as f64);
    rec.metric("overlapping_groups_cycles", t_ov as f64);
    rec.metric("aggregated_read_cycles", t_sh as f64);
    rec.metric("separate_read_cycles", t_sep as f64);
    rec.finish();
    Ok(())
}
