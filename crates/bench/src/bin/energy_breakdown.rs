//! Per-component energy breakdown for batch-1 INT4 inference — the
//! decomposition behind the Fig 14 sustained-efficiency numbers (MPE vs
//! SFU vs scratchpads vs DRAM vs leakage), plus the mixed-precision
//! latency frontier from the compiler's design-space exploration (§IV-B).

use rapid_arch::geometry::ChipConfig;
use rapid_arch::precision::Precision;
use rapid_bench::{infer, section, suite_map, BenchRecord};
use rapid_compiler::dse::mixed_precision_frontier;
use rapid_model::cost::ModelConfig;
use rapid_model::inference::evaluate_inference;
use rapid_workloads::suite::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("energy_breakdown");
    section("energy breakdown — INT4 batch-1 inference, 4-core chip (µJ/inference)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9}",
        "benchmark", "MPE", "idle", "SFU", "SRAM", "DRAM", "static", "total µJ"
    );
    let rows = suite_map(|net| infer(net, Precision::Int4, None));
    for (name, r) in &rows {
        let e = &r.energy;
        println!(
            "{:<12} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>9.0}",
            name,
            e.mpe_j * 1e6,
            e.mpe_idle_j * 1e6,
            e.sfu_j * 1e6,
            e.sram_j * 1e6,
            e.dram_j * 1e6,
            e.static_j * 1e6,
            e.total() * 1e6
        );
        rec.metric(&format!("{name}.mpe_uj"), e.mpe_j * 1e6);
        rec.metric(&format!("{name}.dram_uj"), e.dram_j * 1e6);
        rec.metric(&format!("{name}.total_uj"), e.total() * 1e6);
    }
    println!("\nDRAM dominates the weight-heavy models (vgg16, lstm); MPE dynamic energy");
    println!("dominates the compute-dense detectors — precision scaling attacks both");
    println!("(smaller operands shrink the DRAM term, cheaper MACs shrink the MPE term).");

    section("mixed-precision frontier — ResNet50, INT4 coverage vs latency (§IV-B DSE)");
    let net = benchmark("resnet50").ok_or("unknown benchmark 'resnet50'")?;
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    println!("{:>10} {:>10} {:>12} {:>10}", "coverage", "layers", "latency µs", "speedup");
    let mut base = None;
    for pt in mixed_precision_frontier(
        &net,
        &chip,
        Precision::Int4,
        &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0],
    ) {
        let r = evaluate_inference(&net, &pt.plan, &chip, 1, &cfg);
        let b = *base.get_or_insert(r.latency_s);
        println!(
            "{:>9.0}% {:>10} {:>12.0} {:>9.2}x",
            pt.quantized_mac_fraction * 100.0,
            pt.quantized_layers,
            r.latency_s * 1e6,
            b / r.latency_s
        );
        rec.metric(
            &format!("resnet50.frontier.cov{:.0}.speedup", pt.quantized_mac_fraction * 100.0),
            b / r.latency_s,
        );
    }
    println!("\nlatency falls almost linearly with quantized-MAC coverage (the per-MAC");
    println!("benefit is uniform across ResNet's convolutions), so what matters is MAC");
    println!("coverage, not layer count: the accuracy-critical first/last layers hold");
    println!("few MACs, which is why the paper's rule of keeping them at FP16 costs");
    println!("almost nothing (100% of quantizable MACs still excludes those layers).");
    rec.finish();
    Ok(())
}
