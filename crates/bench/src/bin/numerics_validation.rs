//! Experiment E10: validate the paper's numerics claims end-to-end —
//! HFP8 training parity with FP32 (§II-B) and INT4/INT2 post-training
//! quantization accuracy with PACT + SaWB (§II-C) — on synthetic tasks.

use rapid_bench::{compare, section, BenchRecord};
use rapid_numerics::accumulate::{dot_chunked, dot_flat_fp16};
use rapid_numerics::dispatch::kernel_matrix;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::int::IntFormat;
use rapid_refnet::backend::{Fp16Backend, Fp32Backend, Hfp8Backend};
use rapid_refnet::conv::{pattern_images, TinyCnn};
use rapid_refnet::data::gaussian_blobs;
use rapid_refnet::lstm::{parity_sequences, GateMath, LstmNet};
use rapid_refnet::mlp::{softmax_cross_entropy, train, Mlp, TrainConfig};
use rapid_refnet::quantized::QuantizedMlp;

fn main() {
    let mut rec = BenchRecord::new("numerics_validation");
    section("E10.0 — kernel selection matrix (128³, chunk 64, current RAPID_SIMD)");
    for choice in kernel_matrix() {
        compare(&format!("  {}", choice.format), choice.backend, &choice.reason);
        rec.config_str(&format!("kernel.{}", choice.format), &choice.backend.to_string());
    }

    section("E10.1 — chunk-based accumulation (Sakr et al. [51])");
    let n = 8192;
    let a = vec![1.0f32; n];
    let b = vec![0.25f32; n];
    let exact = 0.25 * n as f32;
    let flat = dot_flat_fp16(FmaMode::Fp16, &a, &b);
    let chunked = dot_chunked(FmaMode::Fp16, &a, &b, 64);
    compare("flat FP16 accumulation of 8192 terms", flat, "swamps (stalls near 512)");
    compare("chunked accumulation (chunk 64)", chunked, format!("exact = {exact}").as_str());

    section("E10.2 — HFP8 training parity (paper §II-B, refs [44, 45])");
    let data = gaussian_blobs(1024, 4, 16, 0.35, 42);
    let cfg = TrainConfig { lr: 0.1, epochs: 40, batch: 32 };
    let mut fp32 = Mlp::new(&[16, 32, 4], 1);
    let acc32 = train(&mut fp32, &Fp32Backend, &data, &cfg);
    let mut fp16 = Mlp::new(&[16, 32, 4], 1);
    let acc16 = train(&mut fp16, &Fp16Backend::default(), &data, &cfg);
    let mut hfp8 = Mlp::new(&[16, 32, 4], 1);
    let acc8 = train(&mut hfp8, &Hfp8Backend::default(), &data, &cfg);
    compare("FP32 training accuracy", format!("{:.1}%", acc32 * 100.0), "reference");
    compare("FP16 (DLFloat) training accuracy", format!("{:.1}%", acc16 * 100.0), "≈ FP32");
    compare(
        "HFP8 training accuracy",
        format!("{:.1}% ({:+.1} pts)", acc8 * 100.0, (acc8 - acc32) * 100.0),
        "equivalent to FP32",
    );

    section("E10.3 — HFP8 parity beyond MLPs: CNN and LSTM");
    // CNN on a texture-classification task.
    let (xi, yi) = pattern_images(128, 4, 0.15, 9);
    let cnn_acc = |backend: &dyn rapid_refnet::backend::Backend| {
        let mut cnn = TinyCnn::new(1, 4, 8, 4, 3);
        for _ in 0..60 {
            let logits = cnn.forward(backend, &xi);
            let (_, grad) = softmax_cross_entropy(&logits, &yi);
            cnn.backward_sgd(backend, &grad, 0.5);
        }
        cnn.accuracy(backend, &xi, &yi)
    };
    let c32 = cnn_acc(&Fp32Backend);
    let c8 = cnn_acc(&Hfp8Backend::default());
    compare("CNN (texture task) FP32", format!("{:.1}%", c32 * 100.0), "reference");
    compare("CNN HFP8", format!("{:.1}% ({:+.1} pts)", c8 * 100.0, (c8 - c32) * 100.0), "≈ FP32");
    // LSTM on sequence parity with SFU-approximated gates.
    let (seqs, labels) = parity_sequences(96, 5, 17);
    let lstm_acc = |gates, backend: &dyn rapid_refnet::backend::Backend| {
        let mut net = LstmNet::new(12, gates, 4);
        for _ in 0..500 {
            net.train_step(backend, &seqs, &labels, 1.2);
        }
        net.accuracy(backend, &seqs, &labels)
    };
    let l_exact = lstm_acc(GateMath::Exact, &Fp32Backend);
    let l_hfp8 = lstm_acc(GateMath::SfuAccurate, &Hfp8Backend::default());
    compare("LSTM (parity) FP32 + exact gates", format!("{:.1}%", l_exact * 100.0), "reference");
    compare(
        "LSTM HFP8 + SFU-approximated gates",
        format!("{:.1}% ({:+.1} pts)", l_hfp8 * 100.0, (l_hfp8 - l_exact) * 100.0),
        "≈ FP32 (§III-B approximations suffice)",
    );

    section("E10.4 — INT4/INT2 PTQ with PACT + SaWB (paper §II-C, refs [42, 46])");
    let int4 = QuantizedMlp::quantize(&fp32, IntFormat::Int4, &data).accuracy(&data);
    let int2 = QuantizedMlp::quantize(&fp32, IntFormat::Int2, &data).accuracy(&data);
    compare(
        "INT4 quantized accuracy",
        format!("{:.1}% ({:+.1} pts)", int4 * 100.0, (int4 - acc32) * 100.0),
        "negligible loss",
    );
    compare(
        "INT2 quantized accuracy",
        format!("{:.1}% ({:+.1} pts)", int2 * 100.0, (int2 - acc32) * 100.0),
        "minimal loss (≈2%)",
    );
    rec.metric("mlp.fp32_acc", acc32);
    rec.metric("mlp.fp16_acc", acc16);
    rec.metric("mlp.hfp8_acc", acc8);
    rec.metric("cnn.fp32_acc", c32);
    rec.metric("cnn.hfp8_acc", c8);
    rec.metric("lstm.fp32_acc", l_exact);
    rec.metric("lstm.hfp8_sfu_acc", l_hfp8);
    rec.metric("mlp.int4_ptq_acc", int4);
    rec.metric("mlp.int2_ptq_acc", int2);
    rec.finish();
}
