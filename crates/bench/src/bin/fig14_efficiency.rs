//! Regenerates Fig 14: sustained compute efficiency (TOPS/W) at FP8 and
//! INT4 with the improvement over the FP16 baseline. Evaluated at the
//! nominal-voltage operating point (1.0 GHz), where the paper quotes peak
//! efficiency.

use rapid_arch::precision::Precision;
use rapid_bench::{compare, infer, mean, min_max, section, suite_map, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig14_efficiency");
    section("Fig 14 — sustained TOPS/W, 4-core chip at nominal voltage (1.0 GHz)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "benchmark", "fp16 T/W", "fp8 T/W", "int4 T/W", "fp8 gain", "int4 gain"
    );
    let f = Some(1.0);
    let rows = suite_map(|net| {
        (
            infer(net, Precision::Fp16, f),
            infer(net, Precision::Hfp8, f),
            infer(net, Precision::Int4, f),
        )
    });
    let mut fp8 = Vec::new();
    let mut int4 = Vec::new();
    let mut g8 = Vec::new();
    let mut g4 = Vec::new();
    for (name, (r16, r8, r4)) in &rows {
        fp8.push(r8.tops_per_w);
        int4.push(r4.tops_per_w);
        g8.push(r8.tops_per_w / r16.tops_per_w);
        g4.push(r4.tops_per_w / r16.tops_per_w);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} | {:>8.2}x {:>8.2}x",
            name,
            r16.tops_per_w,
            r8.tops_per_w,
            r4.tops_per_w,
            r8.tops_per_w / r16.tops_per_w,
            r4.tops_per_w / r16.tops_per_w
        );
    }
    println!();
    let (lo8, hi8) = min_max(&fp8);
    let (lo4, hi4) = min_max(&int4);
    compare(
        "FP8 sustained TOPS/W",
        format!("{lo8:.2} - {hi8:.2} (avg {:.2})", mean(&fp8)),
        "1.4 - 4.68 (avg 3.16)",
    );
    compare(
        "INT4 sustained TOPS/W",
        format!("{lo4:.2} - {hi4:.2} (avg {:.2})", mean(&int4)),
        "3 - 13.5 (avg 7)",
    );
    compare("FP8 efficiency gain vs FP16", format!("avg {:.2}x", mean(&g8)), "1.6x");
    compare("INT4 efficiency gain vs FP16", format!("avg {:.2}x", mean(&g4)), "3.6x");
    for (name, (_, r8, r4)) in &rows {
        rec.metric(&format!("{name}.fp8_tops_per_w"), r8.tops_per_w);
        rec.metric(&format!("{name}.int4_tops_per_w"), r4.tops_per_w);
    }
    rec.metric("fp8_tops_per_w.mean", mean(&fp8));
    rec.metric("int4_tops_per_w.mean", mean(&int4));
    rec.metric("fp8_gain.mean", mean(&g8));
    rec.metric("int4_gain.mean", mean(&g4));
    rec.finish();
}
