//! Kernel-backend speed benchmark: times the scalar reference kernels
//! against the portable tiled fast paths (`RAPID_SIMD=off`) and the
//! vector / bit-sliced backends (`RAPID_SIMD=force`) on the canonical
//! 128³ GEMM shape (chunk 64) plus a representative convolution, checks
//! every fast output bit-for-bit against its scalar reference, and
//! records `<group>.speedup_vs_scalar` — the ratios `repro_all` gates
//! against regressions between runs.
//!
//! Runs single-threaded by default (set `RAPID_THREADS` to override):
//! the metric is per-kernel speedup, not machine throughput, and thread
//! fan-out would only add variance to the ratio.
//!
//! Usage: `kernel_speed [--smoke] [--json PATH]`

use rapid_bench::{compare, section, BenchRecord};
use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::{
    conv2d_emulated_scalar, conv2d_emulated_with_simd, conv2d_int_scalar, conv2d_int_with_simd,
    matmul_emulated_scalar, matmul_emulated_with_simd, matmul_int_scalar, matmul_int_with_simd,
    ConvScratch, ConvSpec, GemmStats,
};
use rapid_numerics::int::Signedness;
use rapid_numerics::{kernel_matrix_at, IntFormat, QuantParams, SimdMode, Tensor};
use std::time::Instant;

const CHUNK: usize = 64;

/// Deterministic pseudo-random tensor in [-1, 1] with ~20% exact zeros so
/// the zero-gating stats paths are exercised by the bit-exact checks.
fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let mut s = seed | 1;
    let data = (0..len)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if i % 5 == 0 {
                0.0
            } else {
                ((s >> 16) & 0xFFFF) as f32 / 32768.0 - 1.0
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Best-of-`reps` wall time in milliseconds, plus the (last) output for
/// the bit-exactness check. One untimed warmup call precedes the reps.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

/// Asserts two kernel results agree bit-for-bit (values and stats).
fn assert_bitexact(group: &str, backend: &str, r: &(Tensor, GemmStats), s: &(Tensor, GemmStats)) {
    assert_eq!(r.0.shape(), s.0.shape(), "{group}/{backend}: shape mismatch");
    for (i, (a, b)) in r.0.as_slice().iter().zip(s.0.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{group}/{backend}: element {i} differs ({a} vs {b})"
        );
    }
    assert_eq!(r.1, s.1, "{group}/{backend}: stats mismatch");
}

struct GroupResult {
    name: &'static str,
    scalar_ms: f64,
    tiled_ms: f64,
    simd_ms: f64,
}

impl GroupResult {
    fn speedup_vs_scalar(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }

    fn report(&self, rec: &mut BenchRecord) {
        compare(
            &format!("{} scalar / tiled / simd", self.name),
            format!(
                "{:.2} / {:.2} / {:.3} ms → {:.1}× vs scalar, {:.1}× vs tiled",
                self.scalar_ms,
                self.tiled_ms,
                self.simd_ms,
                self.speedup_vs_scalar(),
                self.tiled_ms / self.simd_ms
            ),
            "bit-exact across all three",
        );
        rec.metric(&format!("{}.scalar_ms", self.name), self.scalar_ms);
        rec.metric(&format!("{}.tiled_ms", self.name), self.tiled_ms);
        rec.metric(&format!("{}.simd_ms", self.name), self.simd_ms);
        rec.metric(&format!("{}.speedup_vs_scalar", self.name), self.speedup_vs_scalar());
        rec.metric(&format!("{}.speedup_vs_tiled", self.name), self.tiled_ms / self.simd_ms);
    }
}

/// Times one float GEMM group: scalar reference, tiled (`off`), vector
/// (`force`); the fast results must match the reference bit-for-bit.
fn float_group(
    name: &'static str,
    mode: FmaMode,
    a: &Tensor,
    b: &Tensor,
    reps: usize,
) -> Result<GroupResult, Box<dyn std::error::Error>> {
    let (reference, scalar_ms) = best_ms(reps, || matmul_emulated_scalar(mode, a, b, CHUNK));
    let (tiled, tiled_ms) = best_ms(reps, || {
        matmul_emulated_with_simd(mode, a, b, CHUNK, SimdMode::Off)
    });
    let (simd, simd_ms) = best_ms(reps, || {
        matmul_emulated_with_simd(mode, a, b, CHUNK, SimdMode::Force)
    });
    assert_bitexact(name, "tiled", &tiled?, &reference);
    assert_bitexact(name, "simd", &simd?, &reference);
    Ok(GroupResult { name, scalar_ms, tiled_ms, simd_ms })
}

/// Times one integer GEMM group (madd or bit-sliced under `force`).
fn int_group(
    name: &'static str,
    fmt: IntFormat,
    a: &Tensor,
    b: &Tensor,
    reps: usize,
) -> Result<GroupResult, Box<dyn std::error::Error>> {
    let q = QuantParams::from_abs_max(fmt, Signedness::Signed, 1.0);
    let (reference, scalar_ms) = best_ms(reps, || matmul_int_scalar(a, b, q, q, CHUNK));
    let (tiled, tiled_ms) =
        best_ms(reps, || matmul_int_with_simd(a, b, q, q, CHUNK, SimdMode::Off));
    let (simd, simd_ms) =
        best_ms(reps, || matmul_int_with_simd(a, b, q, q, CHUNK, SimdMode::Force));
    assert_bitexact(name, "tiled", &tiled?, &reference);
    assert_bitexact(name, "simd", &simd?, &reference);
    Ok(GroupResult { name, scalar_ms, tiled_ms, simd_ms })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-kernel ratios, not machine throughput: default to one thread so
    // the gated speedup metric is stable across host core counts.
    if std::env::var_os("RAPID_THREADS").is_none() {
        std::env::set_var("RAPID_THREADS", "1");
    }
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => drop(args.next()), // path consumed by BenchRecord::finish
            a if a.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: kernel_speed [--smoke] [--json PATH])"
                )
                .into())
            }
        }
    }
    let mut rec = BenchRecord::new("kernel_speed");
    let (dim, reps) = if smoke { (64, 2) } else { (128, 5) };
    rec.config_str("mode", if smoke { "smoke" } else { "full" });
    rec.config_num("dim", dim as f64);
    rec.config_num("chunk_len", CHUNK as f64);
    rec.config_str("simd", SimdMode::from_env().as_str());

    section(&format!("kernel selection matrix ({dim}³, chunk {CHUNK}, RAPID_SIMD=force)"));
    for c in kernel_matrix_at(SimdMode::Force, dim, CHUNK) {
        compare(&format!("  {}", c.format), format!("{}", c.backend), c.reason.as_str());
        rec.config_str(&format!("kernel.{}", c.format), &format!("{} — {}", c.backend, c.reason));
    }

    section(&format!("GEMM {dim}×{dim}×{dim}, chunk {CHUNK} (best of {reps})"));
    let a = filled(vec![dim, dim], 0x9E37_79B9);
    let b = filled(vec![dim, dim], 0xC2B2_AE35);
    let groups = [
        float_group("gemm_fp16", FmaMode::Fp16, &a, &b, reps)?,
        float_group("gemm_hfp8_fwd", FmaMode::hfp8_fwd_default(), &a, &b, reps)?,
        float_group("gemm_hfp8_bwd", FmaMode::hfp8_bwd_default(), &a, &b, reps)?,
        int_group("gemm_int4", IntFormat::Int4, &a, &b, reps)?,
        int_group("gemm_int2", IntFormat::Int2, &a, &b, reps)?,
    ];
    for g in &groups {
        g.report(&mut rec);
    }

    // A convolution exercises the panel-packed path (im2col rows consumed
    // in place, output written straight into [n, co, ho, wo]).
    let (n, ci, hw_in, co) = if smoke { (2, 4, 14, 8) } else { (4, 8, 28, 16) };
    let spec = ConvSpec { stride: 1, pad: 1 };
    section(&format!(
        "conv {n}×{ci}×{hw_in}×{hw_in} · {co}×{ci}×3×3 stride 1 pad 1 (best of {reps})"
    ));
    let input = filled(vec![n, ci, hw_in, hw_in], 0x1234_5678);
    let weight = filled(vec![co, ci, 3, 3], 0x8765_4321);
    let conv_groups = [
        {
            let m = FmaMode::hfp8_fwd_default();
            let (reference, scalar_ms) =
                best_ms(reps, || conv2d_emulated_scalar(&input, &weight, spec, m, CHUNK));
            let (tiled, tiled_ms) = best_ms(reps, || {
                let mut s = ConvScratch::default();
                conv2d_emulated_with_simd(&input, &weight, spec, m, CHUNK, &mut s, SimdMode::Off)
            });
            let (simd, simd_ms) = best_ms(reps, || {
                let mut s = ConvScratch::default();
                conv2d_emulated_with_simd(&input, &weight, spec, m, CHUNK, &mut s, SimdMode::Force)
            });
            assert_bitexact("conv_hfp8", "tiled", &tiled?, &reference);
            assert_bitexact("conv_hfp8", "simd", &simd?, &reference);
            GroupResult { name: "conv_hfp8", scalar_ms, tiled_ms, simd_ms }
        },
        {
            let q = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, 1.0);
            let (reference, scalar_ms) =
                best_ms(reps, || conv2d_int_scalar(&input, &weight, spec, q, q, CHUNK));
            let (tiled, tiled_ms) = best_ms(reps, || {
                let mut s = ConvScratch::default();
                conv2d_int_with_simd(&input, &weight, spec, q, q, CHUNK, &mut s, SimdMode::Off)
            });
            let (simd, simd_ms) = best_ms(reps, || {
                let mut s = ConvScratch::default();
                conv2d_int_with_simd(&input, &weight, spec, q, q, CHUNK, &mut s, SimdMode::Force)
            });
            assert_bitexact("conv_int4", "tiled", &tiled?, &reference);
            assert_bitexact("conv_int4", "simd", &simd?, &reference);
            GroupResult { name: "conv_int4", scalar_ms, tiled_ms, simd_ms }
        },
    ];
    for g in &conv_groups {
        g.report(&mut rec);
    }

    section("bit-exactness");
    compare(
        "all fast backends vs scalar references",
        "identical output bits and datapath stats",
        "required (asserted above)",
    );
    rec.finish();
    Ok(())
}
