//! Regenerates Fig 13: classifications per second (batch 1) on the 4-core
//! chip, with FP8 and INT4 speedups over the FP16-on-RaPiD baseline.

use rapid_arch::precision::Precision;
use rapid_bench::{compare, infer, mean, min_max, section, suite_map, BenchRecord};

fn main() {
    let mut rec = BenchRecord::new("fig13_inference");
    section("Fig 13 — batch-1 inference, 4-core RaPiD chip, DDR 200 GB/s");
    println!(
        "{:<12} {:>11} {:>11} {:>11} {:>11} | {:>9} {:>9}",
        "benchmark", "fp16 inf/s", "fp8 inf/s", "int4 inf/s", "int4 µs", "fp8 spdup", "int4 spdup"
    );

    let rows = suite_map(|net| {
        let fp16 = infer(net, Precision::Fp16, None);
        let fp8 = infer(net, Precision::Hfp8, None);
        let int4 = infer(net, Precision::Int4, None);
        (fp16, fp8, int4)
    });

    let mut s8 = Vec::new();
    let mut s4 = Vec::new();
    for (name, (fp16, fp8, int4)) in &rows {
        let sp8 = fp16.latency_s / fp8.latency_s;
        let sp4 = fp16.latency_s / int4.latency_s;
        s8.push(sp8);
        s4.push(sp4);
        rec.metric(&format!("{name}.int4_inf_per_s"), int4.throughput_per_s);
        rec.metric(&format!("{name}.fp8_speedup"), sp8);
        rec.metric(&format!("{name}.int4_speedup"), sp4);
        println!(
            "{:<12} {:>11.0} {:>11.0} {:>11.0} {:>11.0} | {:>8.2}x {:>8.2}x",
            name,
            fp16.throughput_per_s,
            fp8.throughput_per_s,
            int4.throughput_per_s,
            int4.latency_s * 1e6,
            sp8,
            sp4
        );
    }
    let (lo8, hi8) = min_max(&s8);
    let (lo4, hi4) = min_max(&s4);
    println!();
    compare(
        "FP8 speedup over FP16",
        format!("{lo8:.2}x - {hi8:.2}x (avg {:.2}x)", mean(&s8)),
        "1.2x - 1.9x (avg 1.55x)",
    );
    compare(
        "INT4 speedup over FP16",
        format!("{lo4:.2}x - {hi4:.2}x (avg {:.2}x)", mean(&s4)),
        "1.4x - 4.2x (avg 2.8x)",
    );
    rec.metric("fp8_speedup.mean", mean(&s8));
    rec.metric("int4_speedup.mean", mean(&s4));
    rec.finish();
}
