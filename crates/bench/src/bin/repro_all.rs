//! Runs every experiment binary's logic — the single command that
//! regenerates the whole evaluation (the source of EXPERIMENTS.md).
//!
//! `cargo run -p rapid-bench --bin repro_all --release`
//!
//! The experiments are independent processes, so they fan out over the
//! harness worker pool (`RAPID_THREADS` caps it); each binary's output is
//! captured and printed in the canonical order once it completes. Each
//! experiment runs with `RAPID_FAULT_SEED` set to a child seed derived
//! from the master seed and the experiment name, so fault streams are
//! reproducible yet independent across experiments.
//!
//! Failures degrade gracefully: a crashing experiment (including one
//! forced down with `RAPID_FORCE_FAIL=<bin>`) is marked FAILED in the
//! summary table, every other experiment still runs and prints, and the
//! process exits non-zero.

use rapid_bench::{num_threads, try_par_map};
use rapid_fault::{derive_seed, FaultConfig};
use std::process::{Command, ExitCode};
use std::time::Instant;

fn main() -> ExitCode {
    let start = Instant::now();
    let Some(dir) = std::env::current_exe().ok().and_then(|e| e.parent().map(|p| p.to_path_buf()))
    else {
        eprintln!("error: cannot locate the experiment binaries next to repro_all");
        return ExitCode::FAILURE;
    };
    let bins = [
        "fig10_chip_table",
        "fig4c_area_power",
        "fig13_inference",
        "fig14_efficiency",
        "fig15_training",
        "fig16_throttling",
        "fig17_breakdown",
        "fig18_scaling",
        "calibration",
        "numerics_validation",
        "ring_multicast",
        "int2_future",
        "ablations",
        "batch_sweep",
        "energy_breakdown",
        "fault_sweep",
        "recovery_sweep",
    ];
    // Each experiment gets its own child fault seed derived from the
    // master, so adding an experiment never perturbs another's streams.
    let master = FaultConfig::seed_from_env(7);
    let outputs = try_par_map(&bins, |bin| {
        let path = dir.join(bin);
        match Command::new(&path)
            .env("RAPID_FAULT_SEED", derive_seed(master, bin).to_string())
            .output()
        {
            Ok(out) => (out.status.success(), out.stdout, out.stderr),
            Err(e) => (false, Vec::new(), format!("failed to launch {}: {e}\n", path.display()).into_bytes()),
        }
    });
    let mut failed: Vec<&str> = Vec::new();
    for (bin, result) in bins.iter().zip(outputs) {
        println!("\n############ {bin} ############");
        match result {
            Ok((ok, stdout, stderr)) => {
                print!("{}", String::from_utf8_lossy(&stdout));
                if !stderr.is_empty() {
                    eprint!("{}", String::from_utf8_lossy(&stderr));
                }
                if !ok {
                    println!("*** {bin} FAILED (non-zero exit) ***");
                    failed.push(bin);
                }
            }
            Err(reason) => {
                println!("*** {bin} FAILED (harness worker: {reason}) ***");
                failed.push(bin);
            }
        }
    }
    println!("\n############ summary ############");
    for bin in &bins {
        let status = if failed.contains(bin) { "FAILED" } else { "ok" };
        println!("{bin:<24} {status}");
    }
    println!(
        "\n{}/{} experiments regenerated in {:.2}s wall-clock ({} worker threads)",
        bins.len() - failed.len(),
        bins.len(),
        start.elapsed().as_secs_f64(),
        num_threads().min(bins.len())
    );
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("failed experiments: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
