//! Runs every experiment binary's logic — the single command that
//! regenerates the whole evaluation (the source of EXPERIMENTS.md).
//!
//! `cargo run -p rapid-bench --bin repro_all --release`
//!
//! The experiments are independent processes, so they fan out over the
//! harness worker pool (`RAPID_THREADS` caps it); each binary's output is
//! captured and printed in the canonical order once it completes. Each
//! experiment runs with `RAPID_FAULT_SEED` set to a child seed derived
//! from the master seed and the experiment name, so fault streams are
//! reproducible yet independent across experiments.
//!
//! Failures degrade gracefully: a crashing experiment (including one
//! forced down with `RAPID_FORCE_FAIL=<bin>`) is marked FAILED in the
//! summary table, every other experiment still runs and prints, and the
//! process exits non-zero.
//!
//! The aggregate also carries a kernel-speed regression gate: every
//! `*.speedup_vs_scalar` metric in the previous `BENCH_repro.json` is
//! compared against the fresh run, and any ratio that fell more than 20%
//! below its recorded value fails the run loudly. Ratios compare a
//! kernel against its scalar reference measured in the same process, so
//! machine load cancels out of the comparison.

use rapid_bench::{json_path_from_args, num_threads, try_par_map};
use rapid_fault::{derive_seed, FaultConfig};
use rapid_telemetry::{validate_bench_record, Json, AGGREGATE_SCHEMA};
use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Instant;

fn main() -> ExitCode {
    let start = Instant::now();
    let Some(dir) = std::env::current_exe().ok().and_then(|e| e.parent().map(|p| p.to_path_buf()))
    else {
        eprintln!("error: cannot locate the experiment binaries next to repro_all");
        return ExitCode::FAILURE;
    };
    // Each child writes its machine-readable record here; the validated
    // aggregate lands in BENCH_repro.json (or this binary's own --json).
    let json_dir = dir.join("bench-json");
    let aggregate_path =
        json_path_from_args().unwrap_or_else(|| PathBuf::from("BENCH_repro.json"));
    let bins = [
        "fig10_chip_table",
        "fig4c_area_power",
        "fig13_inference",
        "fig14_efficiency",
        "fig15_training",
        "fig16_throttling",
        "fig17_breakdown",
        "fig18_scaling",
        "calibration",
        "numerics_validation",
        "kernel_speed",
        "ring_multicast",
        "int2_future",
        "ablations",
        "batch_sweep",
        "energy_breakdown",
        "fault_sweep",
        "recovery_sweep",
        "protection_sweep",
        "serving_sweep",
        "elastic_sweep",
        "obs_sweep",
        "health_sweep",
    ];
    // Snapshot the previous run's kernel speedups before the aggregate
    // is overwritten; they are the regression-gate baseline.
    let prior_speedups = read_speedups(&aggregate_path);
    // Each experiment gets its own child fault seed derived from the
    // master, so adding an experiment never perturbs another's streams.
    let master = FaultConfig::seed_from_env(7);
    // Clear stale records from a previous run so a crashing child can
    // never smuggle its old (successful) record into the aggregate.
    let _ = std::fs::remove_dir_all(&json_dir);
    if let Err(e) = std::fs::create_dir_all(&json_dir) {
        eprintln!("error: cannot create {}: {e}", json_dir.display());
        return ExitCode::FAILURE;
    }
    let outputs = try_par_map(&bins, |bin| {
        let path = dir.join(bin);
        match Command::new(&path)
            .env("RAPID_FAULT_SEED", derive_seed(master, bin).to_string())
            .arg("--json")
            .arg(json_dir.join(format!("{bin}.json")))
            .output()
        {
            Ok(out) => (out.status.success(), out.stdout, out.stderr),
            Err(e) => (false, Vec::new(), format!("failed to launch {}: {e}\n", path.display()).into_bytes()),
        }
    });
    let mut failed: Vec<&str> = Vec::new();
    for (bin, result) in bins.iter().zip(outputs) {
        println!("\n############ {bin} ############");
        match result {
            Ok((ok, stdout, stderr)) => {
                print!("{}", String::from_utf8_lossy(&stdout));
                if !stderr.is_empty() {
                    eprint!("{}", String::from_utf8_lossy(&stderr));
                }
                if !ok {
                    println!("*** {bin} FAILED (non-zero exit) ***");
                    failed.push(bin);
                }
            }
            Err(reason) => {
                println!("*** {bin} FAILED (harness worker: {reason}) ***");
                failed.push(bin);
            }
        }
    }
    // Aggregate the per-experiment JSON records. A missing or invalid
    // record marks its experiment failed but never aborts the aggregate.
    let mut records = Vec::new();
    for bin in &bins {
        let path = json_dir.join(format!("{bin}.json"));
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            .and_then(|j| validate_bench_record(&j).map(|()| j));
        match parsed {
            Ok(j) => records.push(j),
            Err(e) => {
                println!("*** {bin}: no valid JSON record ({e}) ***");
                if !failed.contains(bin) {
                    failed.push(bin);
                }
            }
        }
    }
    // Kernel-speed regression gate, computed BEFORE the aggregate is
    // written so its verdict rides along inside it. A speedup-vs-scalar
    // ratio more than 20% below the previous aggregate fails the run
    // loudly, so a SIMD kernel regression cannot hide behind a green
    // repro. A kernel group with *no* baseline (first run, renamed
    // metric, or a fresh checkout without BENCH_repro.json) is a
    // structured warning — never a failure — and is recorded under
    // `kernel_gate.baseline_missing` for the schema gate to see.
    const SPEEDUP_FLOOR: f64 = 0.8;
    let fresh_records = Json::Obj(vec![("records".to_string(), Json::Arr(records.clone()))]);
    let fresh_speedups = speedups_of(&fresh_records);
    let mut regressions: Vec<String> = Vec::new();
    let mut baseline_missing: Vec<String> = Vec::new();
    for (key, new) in &fresh_speedups {
        match prior_speedups.iter().find(|(k, _)| k == key) {
            Some((_, old)) if *new < old * SPEEDUP_FLOOR => {
                println!(
                    "*** kernel speed regression: {key} fell {old:.1}x -> {new:.1}x \
                     (more than 20% below the recorded baseline) ***"
                );
                regressions.push(key.clone());
                if !failed.contains(&"kernel-speed-gate") {
                    failed.push("kernel-speed-gate");
                }
            }
            Some(_) => {}
            None => {
                println!(
                    "warning: kernel-speed gate: no baseline for {key} \
                     (first run for this kernel group); gate skipped for it"
                );
                baseline_missing.push(key.clone());
            }
        }
    }
    let kernel_gate = Json::Obj(vec![
        ("floor".to_string(), Json::num(SPEEDUP_FLOOR)),
        ("checked".to_string(), Json::num(fresh_speedups.len() as f64)),
        (
            "regressions".to_string(),
            Json::Arr(regressions.iter().map(|k| Json::str(k.as_str())).collect()),
        ),
        (
            "baseline_missing".to_string(),
            Json::Arr(baseline_missing.iter().map(|k| Json::str(k.as_str())).collect()),
        ),
    ]);

    let aggregate = Json::Obj(vec![
        ("schema".to_string(), Json::str(AGGREGATE_SCHEMA)),
        ("records".to_string(), Json::Arr(records)),
        ("kernel_gate".to_string(), kernel_gate),
    ]);
    // Rotate the outgoing aggregate to `BENCH_repro.prev.json` so
    // `telemetry_report` can diff the perf trajectory across runs.
    let prev_path = aggregate_path.with_extension("prev.json");
    if aggregate_path.exists() {
        if let Err(e) = std::fs::copy(&aggregate_path, &prev_path) {
            eprintln!(
                "warning: cannot rotate previous aggregate to {}: {e}",
                prev_path.display()
            );
        }
    }
    // Atomic publish (same idiom as the checkpoint store): write a .tmp
    // sibling, flush it, rename into place — a crash or a concurrent
    // reader can never observe a truncated BENCH_repro.json, and the
    // prior baseline survives any failure before the rename.
    if let Err(e) = write_atomic(&aggregate_path, &aggregate.render()) {
        eprintln!("error: cannot write {}: {e}", aggregate_path.display());
        return ExitCode::FAILURE;
    }

    println!("\n############ summary ############");
    for bin in &bins {
        let status = if failed.contains(bin) { "FAILED" } else { "ok" };
        println!("{bin:<24} {status}");
    }
    println!("\naggregated bench records: {}", aggregate_path.display());
    println!(
        "\n{}/{} experiments regenerated in {:.2}s wall-clock ({} worker threads)",
        bins.len() - failed.len(),
        bins.len(),
        start.elapsed().as_secs_f64(),
        num_threads().min(bins.len())
    );
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("failed experiments: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

/// Every `experiment:metric` pair whose metric name ends in
/// `.speedup_vs_scalar`, from an aggregate JSON value.
fn speedups_of(aggregate: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(records) = aggregate.get("records").and_then(Json::as_arr) else { return out };
    for r in records {
        let exp = r.get("experiment").and_then(Json::as_str).unwrap_or("");
        let Some(metrics) = r.get("metrics").and_then(Json::as_obj) else { continue };
        for (k, v) in metrics {
            if k.ends_with(".speedup_vs_scalar") {
                if let Some(x) = v.as_f64() {
                    out.push((format!("{exp}:{k}"), x));
                }
            }
        }
    }
    out
}

/// The speedup baseline from a previous aggregate file; empty (gate
/// disabled) when no prior aggregate exists or it does not parse.
fn read_speedups(path: &std::path::Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(json) = Json::parse(&text) else { return Vec::new() };
    speedups_of(&json)
}

/// Write-then-rename: the destination only ever points at a complete
/// file (the checkpoint store's publish idiom).
fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}
