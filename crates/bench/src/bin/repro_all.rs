//! Runs every experiment binary's logic — the single command that
//! regenerates the whole evaluation (the source of EXPERIMENTS.md).
//!
//! `cargo run -p rapid-bench --bin repro_all --release`
//!
//! The experiments are independent processes, so they fan out over the
//! harness worker pool (`RAPID_THREADS` caps it); each binary's output is
//! captured and printed in the canonical order once it completes.

use rapid_bench::{num_threads, par_map};
use std::process::Command;
use std::time::Instant;

fn main() {
    let start = Instant::now();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    let bins = [
        "fig10_chip_table",
        "fig4c_area_power",
        "fig13_inference",
        "fig14_efficiency",
        "fig15_training",
        "fig16_throttling",
        "fig17_breakdown",
        "fig18_scaling",
        "calibration",
        "numerics_validation",
        "ring_multicast",
        "int2_future",
        "ablations",
        "batch_sweep",
        "energy_breakdown",
    ];
    let outputs = par_map(&bins, |bin| {
        let path = dir.join(bin);
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        (out.status.success(), out.stdout, out.stderr)
    });
    for (bin, (ok, stdout, stderr)) in bins.iter().zip(outputs) {
        println!("\n############ {bin} ############");
        print!("{}", String::from_utf8_lossy(&stdout));
        if !stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&stderr));
        }
        assert!(ok, "{bin} failed");
    }
    println!(
        "\nall experiments regenerated in {:.2}s wall-clock ({} worker threads)",
        start.elapsed().as_secs_f64(),
        num_threads().min(bins.len())
    );
}
