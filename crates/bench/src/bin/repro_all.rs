//! Runs every experiment binary's logic in sequence — the single command
//! that regenerates the whole evaluation (the source of EXPERIMENTS.md).
//!
//! `cargo run -p rapid-bench --bin repro_all --release`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "fig10_chip_table",
        "fig4c_area_power",
        "fig13_inference",
        "fig14_efficiency",
        "fig15_training",
        "fig16_throttling",
        "fig17_breakdown",
        "fig18_scaling",
        "calibration",
        "numerics_validation",
        "ring_multicast",
        "int2_future",
        "ablations",
        "batch_sweep",
        "energy_breakdown",
    ];
    for bin in bins {
        let path = dir.join(bin);
        println!("\n############ {bin} ############");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments regenerated");
}
