//! Regenerates Fig 16: (a) the clock-edge-skip throttle rate as a function
//! of weight sparsity derived from the power characterization, and (b) the
//! per-benchmark speedup of the compiler-guided sparsity-aware schedule
//! over a dense-budget baseline (pruned FP16 models).

use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::ThrottleModel;
use rapid_bench::{compare, mean, min_max, section, BenchRecord};
use rapid_model::cost::ModelConfig;
use rapid_model::throttle::throttling_study;
use rapid_workloads::suite::{apply_pruning_profile, pruned_study_suite};

fn main() {
    let mut rec = BenchRecord::new("fig16_throttling");
    let t = ThrottleModel::rapid_default();
    section("Fig 16(a) — frequency-throttling rate vs weight sparsity");
    println!("{:>10} {:>15} {:>12}", "sparsity", "throttle rate", "f_eff (GHz)");
    let mut s = 0.0;
    while s <= 0.901 {
        println!(
            "{:>9.0}% {:>14.1}% {:>12.2}",
            s * 100.0,
            t.throttle_rate(s) * 100.0,
            t.effective_frequency_ghz(s)
        );
        s += 0.1;
    }

    section("Fig 16(b) — pruned-model speedup from sparsity-aware throttling");
    println!("{:<12} {:>12} {:>10}", "benchmark", "sparsity", "speedup");
    let chip = ChipConfig::rapid_4core();
    let cfg = ModelConfig::default();
    let mut speedups = Vec::new();
    let mut sparsities = Vec::new();
    for mut net in pruned_study_suite() {
        apply_pruning_profile(&mut net);
        let study = throttling_study(&net, &chip, &t, &cfg);
        sparsities.push(study.avg_sparsity);
        speedups.push(study.speedup());
        rec.metric(&format!("{}.sparsity", study.network), study.avg_sparsity);
        rec.metric(&format!("{}.speedup", study.network), study.speedup());
        println!(
            "{:<12} {:>11.0}% {:>9.2}x",
            study.network,
            study.avg_sparsity * 100.0,
            study.speedup()
        );
    }
    println!();
    let (slo, shi) = min_max(&sparsities);
    let (lo, hi) = min_max(&speedups);
    compare(
        "average weight sparsity range",
        format!("{:.0}% - {:.0}%", slo * 100.0, shi * 100.0),
        "50% - 80%",
    );
    compare(
        "throttling speedup",
        format!("{lo:.2}x - {hi:.2}x (avg {:.2}x)", mean(&speedups)),
        "1.1x - 1.7x (avg 1.3x)",
    );
    rec.metric("throttle_speedup.mean", mean(&speedups));
    rec.metric("sparsity.mean", mean(&sparsities));
    rec.finish();
}
