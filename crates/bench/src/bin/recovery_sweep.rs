//! Recovery-layer sweep (E17): what surviving faults *costs*. Where
//! `fault_sweep` asks whether bare SGD rides out corruption, this sweep
//! drives the recovery machinery of DESIGN.md §7 and prices it:
//!
//! 1. **MAC flip rate vs recovery effort** — HFP8 QAT through the
//!    resilient loop (redundant execution + voting, anomaly/clip gates,
//!    skip + loss-scale backoff, rollback). Reported per rate: steps
//!    applied/skipped, rollbacks and the steps they cost, the final loss
//!    scale, and accuracy vs the fault-free run.
//! 2. **Ring fault rate vs retransmit overhead** — the ack/retransmit
//!    allreduce delivers bit-identical sums under drops/dups/delays; the
//!    overhead is retransmissions and cycles over the fault-free ideal.
//! 3. **Degraded-core slowdown** — the 4-core chip losing cores one at a
//!    time: batch-1 inference latency on the survivors vs healthy.
//!
//! Usage: `recovery_sweep [--smoke] [--seed N]`. The seed also honours
//! `RAPID_FAULT_SEED` (`--seed` wins); every cell derives its own child
//! stream, so cells are independent of sweep composition.

use rapid_arch::precision::Precision;
use rapid_bench::{section, try_par_map, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig, FaultPlan};
use rapid_model::{degraded_throughput, ModelConfig};
use rapid_numerics::int::IntFormat;
use rapid_numerics::GuardPolicy;
use rapid_recover::{train_qat_resilient, GuardedHfp8Backend, ResilientConfig};
use rapid_refnet::data::gaussian_blobs;
use rapid_refnet::qat::{train_qat, QatConfig, QatMlp};
use rapid_ring::{reliable_allreduce_instrumented, ReliableConfig};
use rapid_telemetry::Telemetry;
use rapid_workloads::suite::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("recovery_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(7);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: recovery_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }

    section(&format!(
        "recovery sweep — cost of surviving faults (seed {seed}; override with --seed or RAPID_FAULT_SEED)"
    ));
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });

    // ---- sweep 1: MAC flip rate vs resilient-training effort ------------
    let epochs = if smoke { 4 } else { 12 };
    let data = gaussian_blobs(if smoke { 256 } else { 512 }, 4, 16, 0.35, 42);
    let cfg = QatConfig { epochs, ..QatConfig::default() };
    let mut clean = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let acc_clean = train_qat(&mut clean, &data, &cfg);

    let rates: &[f64] = if smoke { &[0.0, 1e-3] } else { &[0.0, 1e-5, 1e-4, 1e-3] };
    section("sweep 1 — MAC flip rate vs resilient HFP8 QAT (skip / backoff / vote / rollback)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>11} {:>9}",
        "flip rate", "applied", "skipped", "rollbks", "lost", "scale", "accuracy", "vs clean"
    );
    // Independent runs: fan out over the worker pool; one child seed each.
    let rows = try_par_map(rates, |&rate| {
        let backend = GuardedHfp8Backend::new(
            FaultConfig {
                seed: derive_seed(seed, &format!("recovery_sweep/train-{rate:e}")),
                mac_acc_rate: rate,
                mac_operand_rate: rate / 4.0,
                ..FaultConfig::default()
            },
            GuardPolicy::Error,
        );
        let mut model = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
        train_qat_resilient(&mut model, &backend, &data, &cfg, &ResilientConfig::default(), None)
            .map_err(|e| e.to_string())
    });
    for (&rate, row) in rates.iter().zip(rows) {
        match row {
            Ok(Ok((acc, r))) => {
                rec.metric(&format!("train.rate{rate:e}.accuracy"), acc);
                rec.metric(&format!("train.rate{rate:e}.rollbacks"), r.rollbacks as f64);
                println!(
                "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10.0} {:>10.1}% {:>8.1}%",
                format!("{rate:.0e}"),
                r.steps_applied,
                r.steps_skipped,
                r.rollbacks,
                r.steps_lost_to_rollback,
                r.final_scale,
                acc * 100.0,
                (acc - acc_clean) * 100.0
            );
            }
            Ok(Err(reason)) => {
                println!("{:<10}   unsurvivable: {reason}", format!("{rate:.0e}"))
            }
            Err(reason) => println!("{:<10}   FAILED: {reason}", format!("{rate:.0e}")),
        }
    }
    println!("\nevery detected trip costs a skipped step and a loss-scale backoff; bursts");
    println!("cost a rollback to the last good checkpoint. Accuracy holds within noise of");
    println!("the fault-free run up to the documented ~1e-3 per-MAC ceiling.");

    // ---- sweep 2: ring fault rate vs retransmit overhead ----------------
    section("sweep 2 — ring fault rate vs ack/retransmit allreduce overhead");
    let chips = 4usize;
    let elems = if smoke { 16_384 } else { 65_536 };
    let inputs: Vec<Vec<f32>> = (0..chips)
        .map(|c| (0..elems).map(|i| ((i * 31 + c * 7919) % 997) as f32 * 0.25 - 120.0).collect())
        .collect();
    let rcfg = ReliableConfig::rapid_training(chips as u32, true);
    // Accumulate RingHealth counters for every exchange into one telemetry
    // bundle; they land in the JSON record as ring.reliable.* metrics.
    let mut tele = Telemetry::new();
    let (clean_sum, clean_health) =
        reliable_allreduce_instrumented(&inputs, &rcfg, None, Some(&mut tele))?;
    println!(
        "{:<8} {:<8} {:<8} {:>8} {:>10} {:>8} {:>12} {:>10}",
        "drop", "dup", "delay", "chunks", "retrans", "dups", "cycles", "retention"
    );
    for &(drop, dup, delay) in
        &[(0.0, 0.0, 0.0), (0.01, 0.0, 0.0), (0.02, 0.01, 0.01), (0.05, 0.02, 0.02)]
    {
        let mut plan = FaultPlan::new(FaultConfig {
            seed: derive_seed(seed, &format!("recovery_sweep/ring-{drop}-{dup}-{delay}")),
            ring_drop_rate: drop,
            ring_dup_rate: dup,
            ring_delay_rate: delay,
            ..FaultConfig::default()
        });
        let (sum, health) =
            reliable_allreduce_instrumented(&inputs, &rcfg, Some(&mut plan), Some(&mut tele))?;
        assert_eq!(sum, clean_sum, "reduced values must be bit-identical under faults");
        println!(
            "{:<8} {:<8} {:<8} {:>8} {:>10} {:>8} {:>12} {:>9.1}%",
            format!("{:.0}%", drop * 100.0),
            format!("{:.0}%", dup * 100.0),
            format!("{:.0}%", delay * 100.0),
            health.chunks,
            health.retransmits,
            health.duplicates_discarded,
            health.cycles,
            health.bandwidth_retention() * 100.0
        );
        rec.metric(&format!("ring.drop{drop}.retention"), health.bandwidth_retention());
    }
    println!(
        "\nfault-free exchange: {} cycles; every faulty exchange reduced bit-identically",
        clean_health.cycles
    );
    println!("(asserted above) — the fault rate only buys retransmissions and cycles.");

    // ---- sweep 3: degraded-core inference slowdown ----------------------
    section("sweep 3 — degraded-core operation: 4-core chip losing cores");
    let floor = if smoke { 3 } else { 1 };
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>14}",
        "workload", "survivors", "latency ms", "slowdown", "inf/s"
    );
    let nets = if smoke { vec!["resnet50"] } else { vec!["resnet50", "bert"] };
    for name in nets {
        let net = benchmark(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
        for p in degraded_throughput(&net, 4, floor, Precision::Int4, &ModelConfig::default()) {
            rec.metric(&format!("{name}.survivors{}.slowdown", p.survivors), p.slowdown);
            println!(
                "{:<12} {:>10} {:>12.3} {:>9.2}x {:>14.0}",
                name,
                p.survivors,
                p.latency_s * 1e3,
                p.slowdown,
                p.throughput
            );
        }
    }
    println!("\na dead core never corrupts results: its column partition is remapped across");
    println!("the survivors, so the chip answers bit-identically and only latency pays.");
    rec.metric("train.clean_accuracy", acc_clean);
    rec.merge_registry(&tele.registry);
    rec.finish();
    Ok(())
}
