//! Ablations of RaPiD's design choices (the DESIGN.md §4 decisions):
//!
//! 1. **SFU doubling** (§III-B: "this necessitated doubling the SFU
//!    arrays") — rerun INT4 inference with the baseline single SFU array.
//! 2. **LRF capacity** — the 256 B weight register file against halved and
//!    doubled variants (block-load amortization vs area).
//! 3. **Accumulation chunk length** (§III-A chunk-based accumulation) —
//!    numeric error of the HFP8 pipeline across chunk sizes.
//! 4. **Zero-gating** (§III-C) — MPE energy at increasing weight sparsity
//!    with and without the gating bypass.

use rapid_arch::geometry::ChipConfig;
use rapid_arch::power::PowerModel;
use rapid_arch::precision::Precision;
use rapid_bench::{mean, section, BenchRecord};
use rapid_compiler::passes::{compile, CompileOptions};
use rapid_model::cost::ModelConfig;
use rapid_model::inference::evaluate_inference;
use rapid_numerics::accumulate::dot_chunked;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::format::FpFormat;
use rapid_numerics::Tensor;
use rapid_workloads::suite::benchmark_suite;

fn int4_latency(chip: &ChipConfig, name: &str) -> Result<f64, String> {
    let net = benchmark_suite()
        .into_iter()
        .find(|n| n.name == name)
        .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let plan = compile(&net, chip, &CompileOptions::for_precision(Precision::Int4));
    Ok(evaluate_inference(&net, &plan, chip, 1, &ModelConfig::default()).latency_s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("ablations");
    section("ablation 1 — SFU array doubling (§III-B)");
    let doubled = ChipConfig::rapid_4core();
    let mut single = ChipConfig::rapid_4core();
    single.core.corelet.sfu_lanes /= 2;
    println!("{:<12} {:>14} {:>14} {:>9}", "benchmark", "1x SFU (µs)", "2x SFU (µs)", "gain");
    let mut gains = Vec::new();
    for name in ["mobilenetv1", "resnet50", "tiny-yolov3", "bert", "vgg16"] {
        let t1 = int4_latency(&single, name)?;
        let t2 = int4_latency(&doubled, name)?;
        gains.push(t1 / t2);
        println!("{:<12} {:>14.0} {:>14.0} {:>8.2}x", name, t1 * 1e6, t2 * 1e6, t1 / t2);
    }
    println!(
        "doubling the SFU buys {:.0}% on aux-heavy nets — the §III-B balance argument",
        (gains[0] - 1.0) * 100.0
    );

    section("ablation 2 — LRF capacity (block-load amortization)");
    // Mapping-level view: the batch-1 LSTM recurrent GEMV (m=1, k=1500,
    // n=6000) is the block-load-bound worst case; a ResNet 3x3 conv is the
    // streaming-bound best case.
    use rapid_compiler::mapping::map_layer;
    use rapid_workloads::graph::Op;
    let gemv = Op::Gemm { m: 1, k: 1500, n: 6000, weighted: true };
    let conv = Op::Conv { ci: 256, co: 256, h: 14, w: 14, kh: 3, kw: 3, stride: 1, pad_h: 1, pad_w: 1 };
    println!(
        "{:<10} {:>16} {:>16} {:>14} {:>14}",
        "LRF bytes", "gemv cycles", "gemv util", "conv cycles", "conv util"
    );
    for lrf in [64u32, 128, 256, 512, 1024] {
        let mut chip = ChipConfig::rapid_4core();
        chip.core.corelet.mpe.lrf_bytes = lrf;
        let g = map_layer(&gemv, Precision::Fp16, 1, &chip.core.corelet, 8);
        let c = map_layer(&conv, Precision::Int4, 1, &chip.core.corelet, 8);
        println!(
            "{:<10} {:>16.0} {:>15.1}% {:>14.0} {:>13.1}%",
            lrf,
            g.total_cycles(),
            g.utilization() * 100.0,
            c.total_cycles(),
            c.utilization() * 100.0
        );
    }
    println!("(fill/drain per block shrinks with a deeper LRF; weight bytes are fixed,");
    println!(" so GEMV gains flatten past 256 B — RaPiD's choice — while area keeps growing)");

    section("ablation 3 — accumulation chunk length (§III-A / [51])");
    // All-positive accumulations expose swamping systematically (ReLU
    // activations are exactly this case).
    let fmt = FpFormat::fp8_e4m3();
    let n = 16384;
    let a: Vec<f32> = Tensor::random_uniform(vec![n], 0.0, 1.0, 7)
        .as_slice()
        .iter()
        .map(|&x| fmt.quantize(x))
        .collect();
    let b: Vec<f32> = Tensor::random_uniform(vec![n], 0.0, 1.0, 8)
        .as_slice()
        .iter()
        .map(|&x| fmt.quantize(x))
        .collect();
    let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
    println!("{:<12} {:>14} {:>12}", "chunk", "dot result", "rel error");
    for chunk in [16usize, 64, 256, 1024, 16384] {
        let got = dot_chunked(FmaMode::hfp8_fwd_default(), &a, &b, chunk);
        let rel = (f64::from(got) - exact).abs() / exact.abs().max(1.0);
        let label = if chunk == 16384 { "flat".to_string() } else { chunk.to_string() };
        println!("{:<12} {:>14.3} {:>11.2}%", label, got, rel * 100.0);
    }
    println!("(exact {exact:.1}; error explodes with chunk length once the running sum swamps
 the addends — 64 keeps full fidelity while bounding SFU chunk traffic)");

    section("ablation 4 — zero-gating energy (§III-C)");
    let pm = PowerModel::rapid_7nm();
    let chip = ChipConfig::rapid_4core();
    let e_op = pm.mpe_op_joules(Precision::Fp16, chip.freq_ghz);
    println!("{:<10} {:>18} {:>18} {:>9}", "sparsity", "gated (pJ/MAC)", "ungated (pJ/MAC)", "saving");
    for s in [0.0f64, 0.25, 0.5, 0.75] {
        let gated = 2.0 * e_op * ((1.0 - s) + s * pm.energy.zero_gate_residual) * 1e12;
        let ungated = 2.0 * e_op * 1e12;
        println!(
            "{:<9.0}% {:>18.3} {:>18.3} {:>8.0}%",
            s * 100.0,
            gated,
            ungated,
            (1.0 - gated / ungated) * 100.0
        );
    }
    println!(
        "avg SFU-doubling gain across probed nets: {:.2}x",
        mean(&gains)
    );
    rec.metric("sfu_doubling_gain.mean", mean(&gains));
    rec.metric("zero_gate_residual", pm.energy.zero_gate_residual);
    rec.finish();
    Ok(())
}
