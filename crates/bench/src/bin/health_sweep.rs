//! Core-health sweep (E24): mercurial-core detection, quarantine, and
//! fleet remap, hard-asserted end to end.
//!
//! Seeded Gilbert–Elliott fault bursts turn chosen cores *intermittently*
//! wrong — the failure mode a static manufacturing-test mask can never
//! catch — and the sweep asserts the four contracts of the health layer:
//!
//! 1. **Bounded detection.** Every injected mercurial core is quarantined
//!    within a fixed probe-cycle budget, on every seed swept.
//! 2. **Zero silent-wrong completions.** A serving cell executes
//!    known-answer batches on the live `CoreMap` with ABFT plus a
//!    response-integrity gate (output bits checked against the model's
//!    golden before delivery; mismatches re-execute on the next
//!    in-service core). No response whose bits differ from the golden is
//!    ever delivered — `silent_wrong=0` is a hard assert at 1e-3
//!    intermittent burst rates.
//! 3. **Goodput retention ≥ the analytic floor.** After quarantine the
//!    cell's completion rate stays at or above
//!    `model::scaling::quarantine_retention(world, k)` of the clean
//!    baseline — the health layer may cost the capacity of the cores it
//!    removed, never more (pre-detection integrity retries are the
//!    transient it must end).
//! 4. **Bit-identical replay.** Rerunning any cell from the same seed
//!    reproduces the quarantine event trace, the serving counters, and
//!    the integrity tallies exactly.
//!
//! A final fleet phase demotes the sick chip from the elastic training
//! ring at a barrier (`ring::elastic::demote_unhealthy`) and completes an
//! allreduce over the survivors. Registries render as OpenMetrics and
//! must validate; probe-cycle spans must form a valid forest.
//!
//! Usage: `health_sweep [--smoke] [--seed N] [--json PATH]`.

use rapid_bench::{section, BenchRecord};
use rapid_fault::{derive_seed, FaultConfig, FaultPlan};
use rapid_health::{ChipHealthMonitor, Evidence, HealthConfig};
use rapid_model::scaling::quarantine_retention;
use rapid_numerics::abft::abft_matmul_emulated;
use rapid_numerics::fma::FmaMode;
use rapid_numerics::gemm::matmul_emulated_scalar;
use rapid_numerics::Tensor;
use rapid_ring::elastic::{demote_unhealthy, elastic_allreduce, ElasticConfig, ElasticEvent};
use rapid_ring::Membership;
use rapid_serve::{synthetic_table, QosClass, Request, ServeConfig, ServeEngine, Tier};
use rapid_telemetry::{
    openmetrics, validate_forest, MetricsRegistry, ServeCounters, Telemetry,
};

const CORES: u32 = 4;
const BAD_CORE: u32 = 2;
/// Probe cycles within which every injected mercurial core must be
/// quarantined (contract 1).
const DETECT_BUDGET: u64 = 32;

/// The Gilbert–Elliott burst process of one mercurial core: 1e-3 per-site
/// burst entry (the "intermittent flip rate" of the E24 contract), long
/// bursts, coin-flip corruption inside one.
fn mercurial(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        mac_burst_rate: 1e-3,
        mac_burst_len: 256,
        mac_burst_flip_rate: 0.5,
        ..FaultConfig::default()
    }
}

fn chip_plans(seed: u64, bad: &[u32]) -> Vec<FaultPlan> {
    (0..CORES)
        .map(|c| {
            let core_seed = derive_seed(seed, &format!("health/core{c}"));
            if bad.contains(&c) {
                FaultPlan::new(mercurial(core_seed))
            } else {
                FaultPlan::new(FaultConfig { seed: core_seed, ..FaultConfig::default() })
            }
        })
        .collect()
}

/// The serving cell's known-answer workload: one FP16 GEMM per request
/// with a precomputed bit-golden, so response integrity is checkable
/// before delivery (the model's outputs on its test vector are fixed).
struct KnownAnswerModel {
    a: Tensor,
    b: Tensor,
    chunk_len: usize,
    golden_bits: Vec<u32>,
}

impl KnownAnswerModel {
    fn new(seed: u64) -> Self {
        let a = Tensor::random_uniform(vec![8, 48], -1.0, 1.0, seed ^ 0x0005_EEDA);
        let b = Tensor::random_uniform(vec![48, 16], -1.0, 1.0, seed ^ 0x0005_EEDB);
        let chunk_len = 64;
        let (g, _) = matmul_emulated_scalar(FmaMode::Fp16, &a, &b, chunk_len);
        let golden_bits = g.as_slice().iter().map(|v| v.to_bits()).collect();
        Self { a, b, chunk_len, golden_bits }
    }
}

/// What one serving cell produced (every field enters the replay
/// equality check).
#[derive(Debug, PartialEq)]
struct CellResult {
    counters: ServeCounters,
    events: Vec<rapid_health::HealthEvent>,
    silent_wrong: u64,
    integrity_retries: u64,
    delivered: u64,
    quarantine_cycle: Option<u64>,
    /// Completions in the steady-state measurement window (the last
    /// third of the run, after quarantine has settled).
    window_completed: u64,
}

/// Runs the serving cell: virtual-time loop interleaving request
/// submission, batch execution on the live `CoreMap` (ABFT + integrity
/// gate), probe cycles, and capacity derate on quarantine.
#[allow(clippy::too_many_lines)] // one linear cell script
fn run_serving_cell(
    seed: u64,
    bad: &[u32],
    ticks: u64,
    tele: Option<&mut Telemetry>,
) -> Result<CellResult, String> {
    let model = KnownAnswerModel::new(derive_seed(seed, "health/model"));
    let hcfg = HealthConfig::default();
    let tick_us = hcfg.probe_period_us;
    let mut mon = ChipHealthMonitor::new(CORES, hcfg);
    let mut plans = chip_plans(seed, bad);

    let table = synthetic_table(&["kam"], 150.0, 60.0);
    let cfg = ServeConfig { batch_window_us: tick_us, ..ServeConfig::hardened() };
    let mut engine = ServeEngine::new(cfg, table);

    let mut tele = tele;
    let mut silent_wrong = 0u64;
    let mut integrity_retries = 0u64;
    let mut delivered = 0u64;
    let mut quarantine_cycle = None;
    let mut rr = 0u32;
    let window_start = ticks - ticks / 3;
    let mut completed_at_window = 0u64;

    for tick in 0..ticks {
        let now = tick * tick_us;
        // Two requests per tick, generous deadline: completion is
        // capacity-bound, not deadline-bound.
        for _ in 0..2 {
            let id = engine.allocate_id();
            engine.submit(
                Request {
                    id,
                    model: "kam".to_string(),
                    tier: Tier::Fp16,
                    qos: QosClass::Standard,
                    submit_us: now,
                    deadline_us: now + 40 * tick_us,
                },
                now,
            );
        }
        engine.tick(now);
        if let Some(batch) = engine.next_batch(now) {
            // Execute every member on the next in-service core; verify
            // output bits against the golden before delivery, retrying
            // on the other in-service cores on mismatch.
            let mut attempts_total = 0u64;
            for _ in &batch.requests {
                let in_service: Vec<u32> = mon.map().in_service_cores().collect();
                let mut ok = false;
                for attempt in 0..in_service.len() {
                    let core = in_service[(rr as usize + attempt) % in_service.len()];
                    attempts_total += 1;
                    let (out, _, abft) = abft_matmul_emulated(
                        FmaMode::Fp16,
                        &model.a,
                        &model.b,
                        model.chunk_len,
                        Some(&mut plans[core as usize]),
                    )
                    .map_err(|e| format!("serving GEMM failed: {e}"))?;
                    // ABFT repairs feed the health score in-band.
                    if abft.corrections > 0 {
                        mon.note_evidence(core, Evidence::AbftCorrection, abft.corrections);
                    }
                    let bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
                    if bits == model.golden_bits {
                        ok = true;
                        break;
                    }
                    // Integrity gate: a wrong response is never
                    // delivered; it re-executes elsewhere.
                    integrity_retries += 1;
                    mon.note_evidence(core, Evidence::CrcRetransmit, 1);
                }
                if ok {
                    delivered += 1;
                } else {
                    silent_wrong += 1; // all cores corrupted it — unreachable
                }
                rr = rr.wrapping_add(1);
            }
            // Service time scales with attempts over in-service cores.
            let exec_us = 100 * attempts_total / u64::from(mon.map().active().max(1));
            engine.complete_batch(batch, Ok(()), now + exec_us.min(tick_us));
        }
        // One probe cycle per tick; derate serving capacity when the map
        // changes.
        let before = mon.map().epoch();
        let rep = mon.probe_cycle(&mut plans, tele.as_deref_mut());
        if rep.epoch != before {
            engine.set_capacity_derate(mon.map().capacity_factor());
        }
        if quarantine_cycle.is_none() && bad.iter().all(|&b| !mon.map().in_service(b)) {
            quarantine_cycle = Some(rep.cycle);
        }
        if tick + 1 == window_start {
            completed_at_window = engine.counters().completed;
        }
    }
    let window_completed = engine.counters().completed - completed_at_window;
    if let Some(t) = tele {
        mon.record_into(&mut t.registry);
        t.registry.merge(engine.registry());
    }
    Ok(CellResult {
        counters: engine.counters(),
        events: mon.events().to_vec(),
        silent_wrong,
        integrity_retries,
        delivered,
        quarantine_cycle,
        window_completed,
    })
}

#[allow(clippy::too_many_lines)] // one linear experiment script, like its siblings
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = BenchRecord::new("health_sweep");
    let mut smoke = false;
    let mut seed = FaultConfig::seed_from_env(24);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            // Consumed by BenchRecord::write_if_requested at exit.
            "--json" => {
                args.next().ok_or("--json requires a path")?;
            }
            other if other.starts_with("--json=") => {}
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: health_sweep [--smoke] [--seed N] [--json PATH])"
                )
                .into())
            }
        }
    }
    rec.config_num("seed", seed as f64);
    rec.config_str("mode", if smoke { "smoke" } else { "full" });
    if !rapid_health::enabled_from_env() {
        // The RAPID_HEALTH knob gates the whole subsystem; E24 *is* the
        // subsystem, so an off run records the fact and exits cleanly.
        println!("RAPID_HEALTH=off: core-health probing disabled; skipping E24");
        rec.config_str("health", "disabled");
        rec.finish();
        return Ok(());
    }
    section(&format!(
        "core-health sweep — probes, quarantine, fleet remap (E24; seed {seed})"
    ));

    // ---- phase 1: bounded detection across seeds -----------------------
    section("phase 1 — detection: every mercurial core quarantined within the probe budget");
    let sweep_seeds = if smoke { 2u64 } else { 6 };
    let mut latencies = Vec::new();
    for i in 0..sweep_seeds {
        let s = derive_seed(seed, &format!("health/detect{i}"));
        let bad: Vec<u32> = if i % 2 == 0 { vec![BAD_CORE] } else { vec![1, 3] };
        let mut mon = ChipHealthMonitor::new(CORES, HealthConfig::default());
        let mut plans = chip_plans(s, &bad);
        let mut detected_at = None;
        for _ in 0..DETECT_BUDGET {
            let rep = mon.probe_cycle(&mut plans, None);
            if detected_at.is_none() && bad.iter().all(|&b| !mon.map().in_service(b)) {
                detected_at = Some(rep.cycle);
            }
        }
        let at = detected_at.ok_or(format!(
            "seed {s}: cores {bad:?} not quarantined within {DETECT_BUDGET} probe cycles"
        ))?;
        for &c in &bad {
            if mon.map().in_service(c) {
                return Err(format!("seed {s}: core {c} still in service").into());
            }
        }
        for c in (0..CORES).filter(|c| !bad.contains(c)) {
            if !mon.map().in_service(c) {
                return Err(format!("seed {s}: clean core {c} was falsely quarantined").into());
            }
        }
        latencies.extend_from_slice(mon.detect_latencies_us());
        println!(
            "  seed {i}: cores {bad:?} quarantined at cycle {at} (budget {DETECT_BUDGET}), \
             clean cores untouched"
        );
    }
    let mean_latency =
        latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    rec.metric("detect.mean_latency_us", mean_latency);
    rec.metric("detect.budget_cycles", DETECT_BUDGET as f64);
    println!("  mean detection latency {mean_latency:.0} us over {} quarantines", latencies.len());

    // ---- phase 2: serving — zero silent wrongs, goodput floor ----------
    section("phase 2 — serving cell: integrity gate + quarantine, goodput vs analytic floor");
    let ticks = if smoke { 120 } else { 300 };
    let mut tele = Telemetry::with_spans();
    let cell = run_serving_cell(seed, &[BAD_CORE], ticks, Some(&mut tele))?;
    let clean = run_serving_cell(seed, &[], ticks, None)?;

    if cell.counters.lost() != 0 {
        return Err(format!("conservation violated: {} lost", cell.counters.lost()).into());
    }
    if cell.silent_wrong != 0 {
        return Err(format!(
            "{} silent-wrong responses delivered (must be 0)",
            cell.silent_wrong
        )
        .into());
    }
    let qc = cell
        .quarantine_cycle
        .ok_or("serving cell never quarantined the mercurial core")?;
    if qc >= DETECT_BUDGET {
        return Err(format!("serving-cell quarantine at cycle {qc} exceeds budget").into());
    }
    // Injection liveness is proven by the quarantine above; whether the
    // integrity gate also tripped depends on whether a burst landed in a
    // production GEMM before the probes caught the core — both are valid.
    let floor = quarantine_retention(CORES, 1);
    let retention = cell.window_completed as f64 / clean.window_completed.max(1) as f64;
    if retention < floor {
        return Err(format!(
            "post-quarantine goodput retention {retention:.3} below analytic floor {floor:.3}"
        )
        .into());
    }
    println!("  silent_wrong=0 (hard-asserted, {} delivered)", cell.delivered);
    println!(
        "  quarantine at probe cycle {qc}; {} integrity retries absorbed pre-detection",
        cell.integrity_retries
    );
    println!(
        "  goodput retention {retention:.3} >= analytic world-k floor {floor:.3} \
         ({} vs {} window completions)",
        cell.window_completed, clean.window_completed
    );
    rec.metric("serve.silent_wrong", cell.silent_wrong as f64);
    rec.metric("serve.integrity_retries", cell.integrity_retries as f64);
    rec.metric("serve.goodput_retention", retention);
    rec.metric("serve.retention_floor", floor);
    rec.metric("serve.quarantine_cycle", qc as f64);

    // ---- phase 3: bit-identical replay ---------------------------------
    section("phase 3 — replay: same seed, same trace, same counters");
    let replay = run_serving_cell(seed, &[BAD_CORE], ticks, None)?;
    if replay != cell {
        return Err("replay diverged: same seed must reproduce the cell exactly".into());
    }
    if replay.events.is_empty() {
        return Err("replay contract is vacuous: no quarantine events recorded".into());
    }
    println!(
        "  replay reproduced {} health events and all counters bit-for-bit (asserted)",
        replay.events.len()
    );
    rec.metric("replay.events", replay.events.len() as f64);

    // ---- phase 4: fleet — barrier demotion of the sick chip ------------
    section("phase 4 — elastic fleet: sick chip demoted at the barrier, ring continues");
    let world = 4u32;
    let mut chip_health = Vec::new();
    for chip in 0..world {
        let s = derive_seed(seed, &format!("health/chip{chip}"));
        let bad: Vec<u32> = if chip == 2 { vec![0, 1, 2] } else { vec![] };
        let mut mon = ChipHealthMonitor::new(CORES, HealthConfig::default());
        let mut plans = chip_plans(s, &bad);
        for _ in 0..DETECT_BUDGET {
            mon.probe_cycle(&mut plans, None);
        }
        chip_health.push((chip, mon.chip_health()));
    }
    let mut mem = Membership::new(world)?;
    let events = demote_unhealthy(&mut mem, &chip_health, 0.8);
    let demoted: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            ElasticEvent::HealthDemoted { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    if demoted != vec![2] {
        return Err(format!("expected chip 2 demoted, got {demoted:?}").into());
    }
    let inputs: Vec<Vec<f32>> =
        (0..world).map(|c| vec![c as f32 * 0.25 + 0.5; 512]).collect();
    let cfg = ElasticConfig::rapid_training(world, true);
    let out = elastic_allreduce(&inputs, &mut mem, &cfg, None)
        .map_err(|e| format!("post-demotion allreduce failed: {e}"))?;
    if out.contributors != vec![0, 1, 3] {
        return Err(format!("survivors wrong: {:?}", out.contributors).into());
    }
    for (chip, h) in &chip_health {
        println!(
            "  chip {chip}: health {h:.3}{}",
            if demoted.contains(chip) { "  -> demoted at barrier" } else { "" }
        );
    }
    println!("  allreduce over {:?} at epoch {} (asserted)", out.contributors, out.epoch);
    rec.metric("fleet.demoted", demoted.len() as f64);
    rec.metric("fleet.survivors", out.contributors.len() as f64);

    // ---- exposition: spans + OpenMetrics must validate ------------------
    section("exposition — probe-cycle spans + OpenMetrics round trip");
    let spans = tele.spans.take().ok_or("span sink missing")?;
    if spans.is_empty() {
        return Err("probe cycles recorded no spans".into());
    }
    validate_forest(spans.spans()).map_err(|e| format!("probe span forest invalid: {e}"))?;
    let mut merged = MetricsRegistry::new();
    merged.merge(&tele.registry);
    let text = openmetrics::render_labeled(&merged, &[("experiment", "health_sweep")]);
    let doc = openmetrics::validate(&text).map_err(|e| format!("snapshot rejected: {e}"))?;
    println!(
        "  {} spans validated, {} metric families validated",
        spans.len(),
        doc.families.len()
    );
    rec.metric("spans.count", spans.len() as f64);
    rec.metric("openmetrics.families", doc.families.len() as f64);

    rec.merge_registry(&merged);
    rec.finish();
    Ok(())
}
