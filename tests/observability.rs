//! Observability suite: the three invariants of DESIGN.md §12, chaos- and
//! property-tested through the `rapid` facade.
//!
//! - **Bit-invisibility**: telemetry (request spans + burn-rate SLO
//!   monitoring) is purely observational — the same seed and offered load
//!   reproduce bit-identical counters, batch compositions, and terminal
//!   responses whether instrumentation is fully off or fully on;
//! - **Well-nested spans**: every emitted span set forms a well-nested
//!   forest (children inside parents, no orphans, no id reuse) and the
//!   per-class critical-path attribution accounts for ≥ 99% of root
//!   latency;
//! - **Exposition round-trip**: OpenMetrics text rendered from an
//!   arbitrary registry snapshot passes the strict validator and parses
//!   back to the same counter / gauge / histogram values.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::serve::{
    run_open_loop, synthetic_table, OfferedLoad, OkSession, ServeConfig, SloPolicy, Tier,
};
use rapid::telemetry::{
    critical_path, validate_forest, validate_openmetrics, MetricsRegistry,
};

/// The three presets the sweeps compare, picked by index so proptest can
/// range over them.
fn preset(idx: u8) -> ServeConfig {
    match idx % 3 {
        0 => ServeConfig::hardened(),
        1 => ServeConfig::admission_only(),
        _ => ServeConfig::naive(),
    }
}

/// A load mixing both models and QoS classes across under- and overload.
fn load(qps: f64, seed: u64, budget: u64) -> OfferedLoad {
    OfferedLoad {
        qps,
        duration_us: 40_000,
        seed,
        deadline_budget_us: budget,
        critical_fraction: 0.2,
        models: vec!["a".into(), "b".into()],
        tier: Tier::Fp16,
    }
}

proptest! {
    /// Turning every observer on (spans + both burn-rate rules) leaves
    /// the serving results bit-identical to the fully dark run: same
    /// counters, same batch compositions, same terminal responses.
    #[test]
    fn telemetry_is_bit_invisible(
        qps in 500.0f64..40_000.0,
        seed in 1u64..1_000_000,
        budget in 5_000u64..40_000,
        cfg_idx in 0u8..3,
    ) {
        let table = synthetic_table(&["a", "b"], 150.0, 60.0);
        let l = load(qps, seed, budget);
        let dark = ServeConfig {
            record_batches: true,
            record_spans: false,
            slo: None,
            ..preset(cfg_idx)
        };
        let lit = ServeConfig {
            record_batches: true,
            record_spans: true,
            span_seed: seed,
            slo: Some(SloPolicy::default()),
            ..preset(cfg_idx)
        };
        let r_dark = run_open_loop(&dark, &table, &l, &OkSession);
        let r_lit = run_open_loop(&lit, &table, &l, &OkSession);
        prop_assert_eq!(&r_dark.counters, &r_lit.counters);
        prop_assert_eq!(&r_dark.batch_log, &r_lit.batch_log);
        prop_assert_eq!(&r_dark.responses, &r_lit.responses);
        // The dark run really was dark; the lit one really observed.
        prop_assert!(r_dark.spans.is_empty());
        prop_assert!(r_dark.slo.rules.is_empty());
        if r_lit.counters.submitted > 0 {
            prop_assert!(!r_lit.spans.is_empty());
        }
    }

    /// Emitted spans always form a well-nested forest, and the per-class
    /// critical path attributes at least 99% of total root latency to
    /// named stages (the E23 attribution bar).
    #[test]
    fn spans_form_a_wellnested_forest_with_tight_attribution(
        qps in 500.0f64..60_000.0,
        seed in 1u64..1_000_000,
        budget in 5_000u64..40_000,
        cfg_idx in 0u8..3,
    ) {
        let table = synthetic_table(&["a", "b"], 150.0, 60.0);
        let cfg = ServeConfig {
            record_spans: true,
            span_seed: seed,
            ..preset(cfg_idx)
        };
        let r = run_open_loop(&cfg, &table, &load(qps, seed, budget), &OkSession);
        if let Err(e) = validate_forest(&r.spans) {
            panic!("span forest invalid: {e}");
        }
        for cp in critical_path(&r.spans) {
            let gap = cp.total - cp.attributed();
            prop_assert!(
                gap * 100 <= cp.total,
                "class {} attribution gap {} exceeds 1% of total {}",
                cp.class, gap, cp.total
            );
        }
    }

    /// OpenMetrics exposition round-trips: any registry snapshot renders
    /// to text the strict validator accepts, and the parsed document
    /// carries the same counter / gauge / histogram values back.
    #[test]
    fn openmetrics_renders_and_parses_back(
        entries in proptest::collection::vec((0u8..3, 0u64..9_007_199_254_740_992), 1..24),
        label_idx in 0usize..6,
    ) {
        const LABELS: [&str; 6] = ["clean", "chaos", "overload", "a-b", "cell_7", "x"];
        let label = LABELS[label_idx];
        let mut reg = MetricsRegistry::new();
        for (i, (kind, v)) in entries.iter().enumerate() {
            match kind % 3 {
                // Index in the name keeps generated families collision-free.
                0 => reg.add(&format!("m{i}.count"), *v),
                1 => reg.set_gauge(&format!("m{i}.gauge"), *v as f64),
                _ => reg.observe(&format!("m{i}.lat"), *v),
            }
        }
        let text = rapid::telemetry::openmetrics::render_labeled(
            &reg,
            &[("experiment", "obs_proptest"), ("cell", label)],
        );
        let doc = match validate_openmetrics(&text) {
            Ok(doc) => doc,
            Err(e) => panic!("render rejected by the strict validator: {e}"),
        };
        prop_assert_eq!(doc.families.len(), reg.len());
        for (i, (kind, v)) in entries.iter().enumerate() {
            match kind % 3 {
                0 => prop_assert_eq!(doc.counter(&format!("m{i}_count")), Some(*v as f64)),
                1 => prop_assert_eq!(doc.gauge(&format!("m{i}_gauge")), Some(*v as f64)),
                _ => {
                    prop_assert_eq!(
                        doc.histogram(&format!("m{i}_lat")),
                        Some((1.0, *v as f64))
                    );
                }
            }
        }
        // Every sample carries the shared labels in emission order.
        for f in &doc.families {
            for s in &f.samples {
                prop_assert_eq!(s.labels[0].0.as_str(), "experiment");
                prop_assert_eq!(s.labels[0].1.as_str(), "obs_proptest");
                prop_assert_eq!(s.labels[1].0.as_str(), "cell");
                prop_assert_eq!(s.labels[1].1.as_str(), label);
            }
        }
    }
}
