//! End-to-end core-health suite: the mercurial-core quarantine stories of
//! DESIGN.md §13 exercised together through the `rapid` facade.
//!
//! - **No flapping at the hysteresis boundary.** Under *any* random
//!   sequence of probe outcomes, a core's service status changes at a
//!   bounded rate: every return to service costs at least
//!   `min_quarantine_probes + probation_probes` consecutive passes, so
//!   the number of reinstatements is bounded by the run length divided by
//!   that cost — never one-per-outcome oscillation.
//! - **Health off = bit-identical.** A chip GEMM consulting an
//!   all-healthy `CoreMap` produces byte-for-byte the result of the
//!   pre-health code path, and a disabled fault plan stays bit-invisible
//!   to probes.
//! - **Same seed, same trace.** Replaying the monitor against
//!   identically-seeded fault plans reproduces the full quarantine event
//!   trace with `==`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::arch::geometry::CoreConfig;
use rapid::arch::precision::Precision;
use rapid::fault::{FaultConfig, FaultPlan};
use rapid::health::{
    ChipHealthMonitor, CoreMap, CoreState, CoreTracker, Evidence, HealthConfig,
};
use rapid::numerics::Tensor;
use rapid::sim::{run_chip_gemm, try_run_chip_gemm_mapped, ChipGemmJob};

fn burst_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        mac_burst_rate: rate,
        mac_burst_len: 128,
        mac_burst_flip_rate: 0.5,
        ..FaultConfig::default()
    })
}

fn chip_plans(cores: u32, bad: &[u32], seed: u64) -> Vec<FaultPlan> {
    (0..cores)
        .map(|c| {
            if bad.contains(&c) {
                burst_plan(seed + u64::from(c), 5e-3)
            } else {
                FaultPlan::new(FaultConfig { seed: seed + u64::from(c), ..FaultConfig::default() })
            }
        })
        .collect()
}

/// A mercurial core is quarantined within a bounded probe budget and the
/// rest of the chip keeps serving; the detection-latency histogram and
/// quarantine SLO both see it.
#[test]
fn mercurial_core_is_detected_within_budget_end_to_end() {
    let cfg = HealthConfig::default();
    let mut mon = ChipHealthMonitor::new(4, cfg);
    let mut plans = chip_plans(4, &[1], 7_700);
    let budget = 32u64;
    let mut detected = None;
    for _ in 0..budget {
        let rep = mon.probe_cycle(&mut plans, None);
        if detected.is_none() && !mon.map().in_service(1) {
            detected = Some(rep.cycle);
        }
    }
    let at = detected.expect("mercurial core must be quarantined within the budget");
    assert!(at < budget);
    assert_eq!(mon.map().active(), 3);
    assert!(!mon.detect_latencies_us().is_empty());
    // The chip GEMM consulted per batch now remaps around the bad core
    // and still produces the healthy chip's exact values.
    let job = ChipGemmJob {
        a: Tensor::random_uniform(vec![8, 64], -1.0, 1.0, 70),
        b: Tensor::random_uniform(vec![64, 32], -1.0, 1.0, 71),
        precision: Precision::Fp16,
    };
    let healthy = run_chip_gemm(&job, CoreConfig::default(), 4);
    let mapped =
        try_run_chip_gemm_mapped(&job, CoreConfig::default(), mon.map(), None, None).unwrap();
    assert_eq!(mapped.c, healthy.c, "quarantine remap must not change values");
    assert_eq!(mapped.cores.len(), 3);
}

/// An all-healthy map runs the chip GEMM byte-for-byte like the plain
/// path — health disabled is bit-invisible end to end.
#[test]
fn health_disabled_is_bit_identical_to_pre_health_path() {
    let job = ChipGemmJob {
        a: Tensor::random_uniform(vec![16, 128], -1.0, 1.0, 80),
        b: Tensor::random_uniform(vec![128, 64], -1.0, 1.0, 81),
        precision: Precision::Fp16,
    };
    let plain = run_chip_gemm(&job, CoreConfig::default(), 4);
    let map = CoreMap::new(4);
    let mapped =
        try_run_chip_gemm_mapped(&job, CoreConfig::default(), &map, None, None).unwrap();
    assert_eq!(mapped.c, plain.c);
    assert_eq!(mapped.compute_cycles, plain.compute_cycles);
    assert_eq!(mapped.distribution_cycles, plain.distribution_cycles);
    // A monitor over clean cores never perturbs the map.
    let mut mon = ChipHealthMonitor::new(4, HealthConfig::default());
    let mut plans = chip_plans(4, &[], 4_242);
    for _ in 0..20 {
        mon.probe_cycle(&mut plans, None);
    }
    assert_eq!(mon.map().epoch(), 0, "clean chip must see zero map churn");
    assert!(mon.events().is_empty());
}

proptest! {
    /// No flapping: under arbitrary probe outcomes, each reinstatement
    /// requires `min_quarantine_probes + probation_probes` consecutive
    /// passes, so service transitions are bounded well below the
    /// outcome count — the hysteresis band cannot oscillate per probe.
    #[test]
    fn quarantine_state_machine_never_flaps(
        outcomes in proptest::collection::vec(0u8..2, 50..300),
    ) {
        let cfg = HealthConfig::default();
        let mut t = CoreTracker::new(0);
        let mut service_flips = 0u32;
        let mut was_in_service = true;
        for (cycle, &bit) in outcomes.iter().enumerate() {
            let pass = bit == 1;
            t.observe_probe(cycle as u64, pass, &cfg);
            let now = t.state().in_service();
            if now != was_in_service {
                service_flips += 1;
                was_in_service = now;
            }
        }
        // A demote+reinstate round-trip costs ≥ 2 + cooldown + probation
        // outcomes, so flips are bounded by the run length over that.
        let round_trip = 2 + cfg.min_quarantine_probes + cfg.probation_probes;
        let bound = 2 * (outcomes.len() as u32 / round_trip + 1);
        prop_assert!(
            service_flips <= bound,
            "{} service flips exceeds hysteresis bound {}",
            service_flips,
            bound
        );
    }

    /// Same seed ⇒ identical quarantine event traces, for any burst
    /// intensity and any subset of bad cores.
    #[test]
    fn same_seed_runs_produce_identical_event_traces(
        seed in 0u64..1_000_000,
        bad_mask in 0u32..15,
        cycles in 10u64..60,
    ) {
        let bad: Vec<u32> = (0..4).filter(|c| bad_mask & (1 << c) != 0).collect();
        let run = || {
            let mut mon = ChipHealthMonitor::new(4, HealthConfig::default());
            let mut plans = chip_plans(4, &bad, seed);
            for _ in 0..cycles {
                mon.probe_cycle(&mut plans, None);
            }
            mon.events().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    /// A disabled fault plan is bit-invisible to probes: every probe
    /// passes and the monitor's map never changes, whatever the seed.
    #[test]
    fn disabled_plans_never_fail_probes(seed in 0u64..u64::MAX) {
        let mut mon = ChipHealthMonitor::new(2, HealthConfig::default());
        let mut plans = vec![
            FaultPlan::new(FaultConfig { seed, ..FaultConfig::default() }),
            FaultPlan::new(FaultConfig { seed: seed ^ 0xABCD, ..FaultConfig::default() }),
        ];
        for _ in 0..5 {
            let rep = mon.probe_cycle(&mut plans, None);
            prop_assert_eq!(rep.failures, 0);
        }
        prop_assert_eq!(mon.map().epoch(), 0);
    }

    /// In-band evidence lowers scores monotonically with count and never
    /// lifts a core out of service by itself.
    #[test]
    fn evidence_is_monotone_and_never_promotes(
        n_ded in 0u64..6,
        n_sec in 0u64..50,
        n_abft in 0u64..8,
    ) {
        let mut a = CoreTracker::new(0);
        let mut b = CoreTracker::new(1);
        a.note_evidence(Evidence::EccDed, n_ded);
        a.note_evidence(Evidence::EccSec, n_sec);
        a.note_evidence(Evidence::AbftCorrection, n_abft);
        b.note_evidence(Evidence::EccDed, n_ded + 1);
        b.note_evidence(Evidence::EccSec, n_sec);
        b.note_evidence(Evidence::AbftCorrection, n_abft);
        prop_assert!(b.score() <= a.score());
        prop_assert_eq!(a.state(), CoreState::Healthy, "evidence defers to probes");
    }
}
