//! Integration: the 4-chip × 32-core training system across the suite
//! (Fig 15) plus the chip-scaling claims (Fig 18b).

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::arch::geometry::SystemConfig;
use rapid::arch::precision::Precision;
use rapid::model::cost::ModelConfig;
use rapid::model::training::{evaluate_training, TrainingResult};
use rapid::model::scaling::training_chip_scaling;
use rapid::workloads::graph::Network;
use rapid::workloads::suite::benchmark_suite;

fn run(net: &Network, p: Precision) -> TrainingResult {
    let sys = SystemConfig::training_4x32();
    evaluate_training(net, &sys, p, 512, &ModelConfig::default())
}

#[test]
fn fig15_hfp8_training_speedups() {
    // Paper: HFP8 over FP16 ranges 1.1×–2× (average 1.4×).
    let mut speedups = Vec::new();
    for net in benchmark_suite() {
        let fp16 = run(&net, Precision::Fp16);
        let hfp8 = run(&net, Precision::Hfp8);
        let s = fp16.step_time_s / hfp8.step_time_s;
        assert!((1.05..=2.0).contains(&s), "{}: hfp8 speedup {s}", net.name);
        speedups.push(s);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((1.25..=1.85).contains(&avg), "average hfp8 speedup {avg} (paper 1.4)");
}

#[test]
fn sustained_tflops_band() {
    // Paper abstract: "a sustained 102 - 588 (average 203) TFLOPS". Our
    // analytical substrate is more optimistic in absolute terms (see
    // EXPERIMENTS.md); the *shape* requirements here are: nothing exceeds
    // the 786-TFLOPS peak, the spread covers several-x, and the
    // memory/aux-bound benchmarks land at the bottom.
    let mut results = Vec::new();
    for net in benchmark_suite() {
        let r = run(&net, Precision::Hfp8);
        assert!(r.sustained_tflops < 786.0, "{}: {}", net.name, r.sustained_tflops);
        assert!(r.sustained_tflops > 50.0, "{}: {}", net.name, r.sustained_tflops);
        results.push((net.name.clone(), r.sustained_tflops));
    }
    let min = results.iter().map(|r| r.1).fold(f64::MAX, f64::min);
    let max = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    assert!(max / min > 3.0, "spread {min}..{max} too narrow");
    // MobileNet (lean convolutions) must be near the bottom.
    let mob = results.iter().find(|r| r.0 == "mobilenetv1").expect("present").1;
    assert!(mob < min * 1.5, "mobilenet {mob} should be near the minimum {min}");
}

#[test]
fn training_slower_than_inference_per_input() {
    // Paper §V-C: training speedups are smaller than inference because of
    // gradient communication and activation stashing.
    for name in ["resnet50", "vgg16"] {
        let net = benchmark_suite().into_iter().find(|n| n.name == name).expect("known");
        let r = run(&net, Precision::Hfp8);
        assert!(r.comm_s > 0.0, "{name}: communication must be visible");
        assert!(r.memory_s > 0.0, "{name}: stash traffic must be visible");
    }
}

#[test]
fn fig18b_chip_scaling() {
    let cfg = ModelConfig::default();
    let counts = [1u32, 2, 4, 8, 16, 32];
    // ResNet50 scales but sublinearly.
    let net = benchmark_suite().into_iter().find(|n| n.name == "resnet50").expect("known");
    let pts = training_chip_scaling(&net, &counts, 512, &cfg);
    for w in pts.windows(2) {
        assert!(w[1].speedup >= w[0].speedup * 0.9, "scaling regressed: {pts:?}");
    }
    assert!(pts[5].speedup > 3.0 && pts[5].speedup < 32.0, "{:?}", pts[5]);
    // The 138M-weight VGG16 saturates harder (update-phase exchange).
    let vgg = benchmark_suite().into_iter().find(|n| n.name == "vgg16").expect("known");
    let vpts = training_chip_scaling(&vgg, &counts, 512, &cfg);
    assert!(vpts[5].speedup < pts[5].speedup, "vgg {:?} vs resnet {:?}", vpts[5], pts[5]);
}

#[test]
fn hfp8_halves_weight_broadcast() {
    // §V-F: HFP8 communicates 8-bit weights in the update phase.
    let net = benchmark_suite().into_iter().find(|n| n.name == "vgg16").expect("known");
    let fp16 = run(&net, Precision::Fp16);
    let hfp8 = run(&net, Precision::Hfp8);
    assert!(hfp8.comm_s < fp16.comm_s);
    assert!(hfp8.comm_s > fp16.comm_s * 0.6, "only the broadcast half shrinks");
}
