//! Integration: run a whole (small) trained network on the cycle simulator
//! — every GEMM through the systolic array, every activation through the
//! SFU stage — and check it classifies exactly like the emulated-kernel
//! reference. This is the deepest end-to-end path in the repository:
//! refnet (training) → quant (scales) → sim (execution).

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::arch::precision::Precision;
use rapid::numerics::format::FpFormat;
use rapid::numerics::Tensor;
use rapid::refnet::backend::{Backend, Fp16Backend, Fp32Backend, OperandRole};
use rapid::refnet::data::gaussian_blobs;
use rapid::refnet::mlp::{train, Mlp, TrainConfig};
use rapid::sim::gemm::{CoreSim, GemmJob};
use rapid::sim::sfu::{SfuStage, SfuUnit};

/// Forward an MLP entirely on the simulated core: simulated FP16 GEMMs +
/// SFU ReLU stages, with biases added through the SFU path (modeled here
/// as exact adds, as the SFU works in FP16/FP32).
fn simulated_infer(core: &CoreSim, mlp: &Mlp, x: &Tensor) -> (Tensor, u64) {
    let fp16 = FpFormat::fp16();
    let sfu = SfuUnit::new(core.config().corelets * core.config().corelet.sfu_lanes);
    let mut cur = x.clone();
    let mut cycles = 0u64;
    for layer in 0..mlp.depth() {
        let r = core.run_gemm(&GemmJob {
            a: cur,
            b: mlp.weights(layer).clone(),
            precision: Precision::Fp16,
        });
        cycles += r.cycles;
        // Biases are zero-initialized in this test's training setup only if
        // never updated; apply them exactly (they ride the SFU add path).
        let z = r.c;
        cur = if layer + 1 < mlp.depth() {
            let (y, c) = sfu.apply(&SfuStage::Relu, &z);
            cycles += c;
            y
        } else {
            z.map(|v| fp16.quantize(v))
        };
    }
    (cur, cycles)
}

#[test]
fn simulated_mlp_matches_emulated_reference() {
    // Train a small model (FP32), then run inference two ways:
    // (a) refnet's emulated FP16 backend, (b) the cycle simulator.
    let data = gaussian_blobs(64, 4, 16, 0.35, 123);
    let mut mlp = Mlp::new(&[16, 32, 4], 9);
    let acc = train(&mut mlp, &Fp32Backend, &data, &TrainConfig { epochs: 25, ..Default::default() });
    assert!(acc > 0.9, "model must train first ({acc})");

    let core = CoreSim::rapid();
    let (sim_logits, cycles) = simulated_infer(&core, &mlp, &data.x);
    assert!(cycles > 0);

    // Reference: the same forward math through the emulated FP16 kernels.
    // (refnet's Mlp::infer adds biases, which train() has made nonzero, so
    // build the bias-free reference explicitly.)
    let fp16 = FpFormat::fp16();
    let mut reference = data.x.clone();
    for layer in 0..mlp.depth() {
        let z = Fp16Backend::default().matmul(
            &reference,
            mlp.weights(layer),
            (OperandRole::Data, OperandRole::Data),
        );
        reference = if layer + 1 < mlp.depth() {
            z.map(|v| fp16.quantize(v.max(0.0)))
        } else {
            z.map(|v| fp16.quantize(v))
        };
    }
    assert_eq!(
        sim_logits, reference,
        "simulated network must be bit-exact vs the emulated kernels"
    );
}

#[test]
fn simulated_network_classification_matches_software() {
    // Class decisions from the simulated forward pass agree with the
    // software (FP32) model on nearly every sample — quantization to FP16
    // may flip only near-ties.
    let data = gaussian_blobs(64, 4, 16, 0.35, 124);
    let mut mlp = Mlp::new(&[16, 24, 4], 10);
    let acc = train(&mut mlp, &Fp32Backend, &data, &TrainConfig { epochs: 25, ..Default::default() });
    assert!(acc > 0.9);

    let core = CoreSim::rapid();
    let (sim_logits, _) = simulated_infer(&core, &mlp, &data.x);
    // Software forward, bias-free to match the simulated path.
    let mut sw = data.x.clone();
    for layer in 0..mlp.depth() {
        let z = Fp32Backend.matmul(&sw, mlp.weights(layer), (OperandRole::Data, OperandRole::Data));
        sw = if layer + 1 < mlp.depth() { z.map(|v| v.max(0.0)) } else { z };
    }
    let argmax = |t: &Tensor, row: usize| {
        (0..4).max_by(|&a, &b| {
            t.get(&[row, a]).partial_cmp(&t.get(&[row, b])).expect("finite logits")
        })
    };
    let mut agree = 0;
    for i in 0..data.len() {
        if argmax(&sim_logits, i) == argmax(&sw, i) {
            agree += 1;
        }
    }
    let frac = agree as f64 / data.len() as f64;
    assert!(frac > 0.95, "simulated and software decisions agree on {frac}");
}
