//! Integration: the full quantized-inference pipeline across crates —
//! train (refnet) → quantize (quant) → execute on the simulated FXU (sim)
//! — and check that all three integer paths agree.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::arch::precision::Precision;
use rapid::numerics::gemm::matmul_int;
use rapid::numerics::int::{IntFormat, QuantParams, Signedness};
use rapid::numerics::Tensor;
use rapid::quant::sawb::sawb_params;
use rapid::refnet::backend::Fp32Backend;
use rapid::refnet::data::gaussian_blobs;
use rapid::refnet::mlp::{train, Mlp, TrainConfig};
use rapid::refnet::quantized::QuantizedMlp;
use rapid::sim::gemm::{CoreSim, GemmJob};

/// The cycle simulator's FXU and the emulated integer GEMM must agree on a
/// SaWB-quantized weight matrix from a really trained model.
#[test]
fn simulated_fxu_matches_emulated_int_gemm_on_trained_weights() {
    let data = gaussian_blobs(256, 4, 16, 0.35, 77);
    let mut mlp = Mlp::new(&[16, 32, 4], 3);
    let acc = train(&mut mlp, &Fp32Backend, &data, &TrainConfig { epochs: 20, ..Default::default() });
    assert!(acc > 0.9, "training must converge first ({acc})");

    let w = mlp.weights(0).clone(); // [16, 32]
    let x = Tensor::random_uniform(vec![8, 16], -1.0, 1.0, 78);
    let qw = sawb_params(&w, IntFormat::Int4);
    let qx = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, x.max_abs());

    // Path 1: emulated integer GEMM.
    let (emulated, stats) = matmul_int(&x, &w, qx, qw, 64);
    assert_eq!(stats.saturations, 0);

    // Path 2: cycle simulator (derives its own max-abs scales, so feed it
    // the fake-quantized tensors whose max-abs reproduces the same grid).
    let core = CoreSim::rapid();
    let xq = x.map(|v| qx.fake_quantize(v));
    let wq = w.map(|v| qw.fake_quantize(v));
    let r = core.run_gemm(&GemmJob { a: xq.clone(), b: wq.clone(), precision: Precision::Int4 });

    // Both paths compute on integer grids; their results must agree to
    // within the scale difference of the two grids (the simulator re-fits
    // a max-abs scale to the already-quantized tensors).
    assert!(
        r.c.max_rel_diff(&emulated) < 0.08,
        "sim vs emulated disagree: {}",
        r.c.max_rel_diff(&emulated)
    );
}

/// PTQ accuracy survives the whole journey at INT4 and degrades gently at
/// INT2 — the §II-C claims, end-to-end.
#[test]
fn ptq_accuracy_ladder() {
    let data = gaussian_blobs(512, 4, 16, 0.35, 79);
    let mut mlp = Mlp::new(&[16, 32, 4], 4);
    let fp = train(&mut mlp, &Fp32Backend, &data, &TrainConfig::default());
    let int4 = QuantizedMlp::quantize(&mlp, IntFormat::Int4, &data).accuracy(&data);
    let int2 = QuantizedMlp::quantize(&mlp, IntFormat::Int2, &data).accuracy(&data);
    assert!(fp > 0.95, "fp32 {fp}");
    assert!(int4 > fp - 0.03, "int4 {int4} vs fp {fp}");
    assert!(int2 >= 0.5, "int2 {int2} should stay far above the 25% chance level");
    assert!(int4 >= int2, "precision ladder must be monotone");
}

/// Zero-gating statistics flow from real ReLU-sparse activations through
/// the emulated GEMM — the signal the sparsity-aware power model consumes.
#[test]
fn relu_sparsity_reaches_gating_statistics() {
    let x = Tensor::random_uniform(vec![16, 64], -1.0, 1.0, 80).map(|v| v.max(0.0));
    let w = Tensor::random_uniform(vec![64, 32], -0.5, 0.5, 81);
    let sparsity = x.sparsity();
    assert!(sparsity > 0.3, "ReLU should zero a large fraction");
    let qx = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Unsigned, x.max_abs());
    let qw = QuantParams::from_abs_max(IntFormat::Int4, Signedness::Signed, w.max_abs());
    let (_, stats) = matmul_int(&x, &w, qx, qw, 64);
    let gated = stats.gated_fraction();
    assert!(
        (gated - sparsity).abs() < 0.1,
        "gated fraction {gated} should track activation sparsity {sparsity}"
    );
}
