//! Serving-runtime suite: the overload-hardening invariants of DESIGN.md
//! §10, chaos-tested across random loads and fault plans through the
//! `rapid` facade.
//!
//! The invariants:
//!
//! - **Conservation**: every submitted request gets exactly one terminal
//!   outcome — `completed + rejected + shed + timed_out == submitted` —
//!   under any load, any config preset, and any fault plan;
//! - **No late deliveries**: a completion is never handed back past its
//!   deadline (the engine's own `serve.deadline_violations` self-check
//!   stays zero even in the deliberately naive preset);
//! - **Determinism**: the same seed and offered load reproduce the same
//!   batch compositions, counters, and responses bit-for-bit;
//! - the **threaded server** (real clocks, real threads) upholds the same
//!   conservation guarantees as the virtual-time engine it wraps;
//! - the **circuit breaker** walks Closed → Open → HalfOpen → Closed and
//!   sheds submissions only while Open.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::fault::FaultConfig;
use rapid::numerics::GuardPolicy;
use rapid::recover::backend::Protection;
use rapid::serve::breaker::BreakerConfig;
use rapid::serve::session::SessionError;
use rapid::serve::{
    run_open_loop, synthetic_table, EmulatedSession, OfferedLoad, Outcome, OkSession, QosClass,
    RejectReason, Request, ServeConfig, ServeEngine, Server, Tier,
};
use rapid::telemetry::ServeCounters;

/// Conservation plus the no-late-delivery self-check, in one place.
fn assert_conserved(c: &ServeCounters) {
    assert_eq!(
        c.lost(),
        0,
        "conservation violated: submitted {} != accounted {} \
         (completed {} rejected {} shed {} timed_out {})",
        c.submitted,
        c.accounted(),
        c.completed,
        c.rejected,
        c.shed,
        c.timed_out,
    );
    assert_eq!(c.deadline_violations, 0, "a completion was delivered past its deadline");
}

/// The three presets the sweeps compare, picked by index so proptest can
/// range over them.
fn preset(idx: u8) -> ServeConfig {
    match idx % 3 {
        0 => ServeConfig::hardened(),
        1 => ServeConfig::admission_only(),
        _ => ServeConfig::naive(),
    }
}

proptest! {
    /// Same seed + same offered load ⇒ identical batch compositions,
    /// counters, and terminal responses, across underload and overload.
    #[test]
    fn same_seed_reproduces_identical_batches(
        qps in 500.0f64..40_000.0,
        seed in 1u64..1_000_000,
        budget in 5_000u64..40_000,
        cfg_idx in 0u8..3,
    ) {
        let table = synthetic_table(&["a", "b"], 150.0, 60.0);
        let cfg = ServeConfig { record_batches: true, ..preset(cfg_idx) };
        let load = OfferedLoad {
            qps,
            duration_us: 40_000,
            seed,
            deadline_budget_us: budget,
            critical_fraction: 0.2,
            models: vec!["a".into(), "b".into()],
            tier: Tier::Fp16,
        };
        let r1 = run_open_loop(&cfg, &table, &load, &OkSession);
        let r2 = run_open_loop(&cfg, &table, &load, &OkSession);
        prop_assert_eq!(r1.counters, r2.counters);
        prop_assert_eq!(r1.batch_log, r2.batch_log);
        prop_assert_eq!(r1.responses, r2.responses);
        assert_conserved(&r1.counters);
    }

    /// Conservation and zero late deliveries hold across random fault
    /// plans driving the real emulated kernels — serving transients,
    /// MAC-accumulator upsets, or both at once.
    #[test]
    fn conservation_holds_across_random_fault_plans(
        transient_rate in 0.0f64..0.4,
        mac_rate in 0.0f64..0.002,
        seed in 1u64..1_000_000,
        cfg_idx in 0u8..3,
    ) {
        let table = synthetic_table(&["resnet50", "bert"], 200.0, 80.0);
        let session = EmulatedSession::new(
            FaultConfig {
                serve_transient_rate: transient_rate,
                mac_acc_rate: mac_rate,
                exponent_share: 0.7,
                seed,
                ..FaultConfig::default()
            },
            GuardPolicy::Error,
            Protection::Abft,
        );
        let load = OfferedLoad {
            qps: 4_000.0,
            duration_us: 25_000,
            seed,
            deadline_budget_us: 20_000,
            critical_fraction: 0.1,
            models: vec!["resnet50".into(), "bert".into()],
            tier: Tier::Hfp8,
        };
        let r = run_open_loop(&preset(cfg_idx), &table, &load, &session);
        assert_conserved(&r.counters);
        // One terminal response per submitted request, never more.
        prop_assert_eq!(r.responses.len() as u64, r.counters.submitted);
    }
}

/// The threaded server — real clocks, real worker threads, injected
/// serving transients — upholds the virtual-time guarantees.
#[test]
fn threaded_server_conserves_under_injected_transients() {
    let table = synthetic_table(&["resnet50"], 120.0, 50.0);
    let cfg = ServeConfig {
        workers: 3,
        batch_window_us: 500,
        drain_timeout_us: 5_000_000,
        ..ServeConfig::hardened()
    };
    let session = EmulatedSession::new(
        FaultConfig { serve_transient_rate: 0.10, seed: 23, ..FaultConfig::default() },
        GuardPolicy::Error,
        Protection::None,
    );
    let report = Server::run(cfg, table, &session, |h| {
        for _ in 0..80 {
            h.submit("resnet50", Tier::Fp16, QosClass::Standard, 2_000_000);
        }
    });
    assert_eq!(report.counters.submitted, 80);
    assert_conserved(&report.counters);
    assert_eq!(report.responses.len(), 80, "one terminal response per request");
    assert!(report.counters.completed > 0, "transients must not starve the server");
    assert!(
        session.fault_counts().serve_transients > 0,
        "the chaos plan never fired — the test exercised nothing"
    );
}

/// Breaker lifecycle at the engine level: repeated failures open it,
/// submissions bounce while it is open, the cooldown admits one probe,
/// and a successful probe closes it again.
#[test]
fn breaker_opens_sheds_probes_and_recovers() {
    let table = synthetic_table(&["m"], 100.0, 50.0);
    let cfg = ServeConfig {
        workers: 1,
        batch_max: 1,
        batch_window_us: 10,
        retry_max: 0,
        breaker: Some(BreakerConfig { open_after: 2, cooldown_us: 10_000 }),
        ..ServeConfig::hardened()
    };
    let mut engine = ServeEngine::new(cfg, table);
    let submit = |engine: &mut ServeEngine, now: u64| -> bool {
        let id = engine.allocate_id();
        let req = Request {
            id,
            model: "m".to_string(),
            tier: Tier::Fp16,
            qos: QosClass::Standard,
            submit_us: now,
            deadline_us: now + 1_000_000,
        };
        engine.submit(req, now)
    };

    // Two consecutive failures trip the breaker (open_after = 2).
    for i in 0..2u64 {
        let now = 100 * i;
        assert!(submit(&mut engine, now), "failure #{i} must be admitted");
        let batch = engine.next_batch(now + 20).expect("batch forms at window");
        engine.complete_batch(batch, Err(SessionError::Transient), now + 30);
    }
    assert_eq!(engine.counters().breaker_opens, 1, "breaker must be open");

    // While open: submissions bounce with the breaker reject reason.
    assert!(!submit(&mut engine, 300), "open breaker must reject");
    let last = engine.responses().last().expect("rejection recorded");
    assert_eq!(last.outcome, Outcome::Rejected(RejectReason::BreakerOpen));

    // Past the cooldown: half-open admits the submission and probes.
    let after = 300 + 10_000 + 1;
    assert!(submit(&mut engine, after), "half-open admits a probe candidate");
    let probe = engine.next_batch(after + 20).expect("probe batch dispatches");
    assert!(probe.probe, "half-open dispatch must be marked a probe");
    assert_eq!(probe.requests.len(), 1, "probe batches carry one request");
    engine.complete_batch(probe, Ok(()), after + 40);

    // Closed again: normal admission and successful service resume.
    assert!(submit(&mut engine, after + 100), "closed breaker admits");
    let batch = engine.next_batch(after + 200).expect("normal batch resumes");
    assert!(!batch.probe);
    engine.complete_batch(batch, Ok(()), after + 220);
    let c = engine.counters();
    assert_eq!(c.breaker_opens, 1, "no re-open after recovery");
    assert_eq!(c.completed, 2);
    assert_conserved(&c);
}

/// The quality ladder engages under overload: at ~3× capacity the
/// hardened preset downgrades tiers and sheds Standard requests while
/// Critical requests keep completing at full precision eligibility.
#[test]
fn shedding_degrades_standard_before_critical() {
    let table = synthetic_table(&["m"], 200.0, 100.0);
    // Anchor the shed watermarks below the admission-limited queue depth
    // (the serving_sweep bins do the same arithmetic).
    let shed = rapid::serve::ShedConfig { hi: 0.10, lo: 0.04, ..Default::default() };
    let cfg = ServeConfig { shed: Some(shed), ..ServeConfig::hardened() };
    let load = OfferedLoad {
        qps: 96_000.0, // capacity ≈ 4e6/125 = 32k qps
        duration_us: 300_000,
        seed: 9,
        deadline_budget_us: 25_000,
        critical_fraction: 0.1,
        models: vec!["m".into()],
        tier: Tier::Fp16,
    };
    let r = run_open_loop(&cfg, &table, &load, &OkSession);
    assert_conserved(&r.counters);
    assert!(r.counters.shed > 0, "overload must engage load shedding");
    assert!(r.counters.downgraded > 0, "overload must engage tier downgrades");
    // Downgraded completions really ran at a cheaper tier than asked.
    let lowered = r
        .responses
        .iter()
        .filter(|resp| {
            matches!(
                resp.outcome,
                Outcome::Completed { downgraded: true, tier, .. } if tier > Tier::Fp16
            )
        })
        .count() as u64;
    assert_eq!(lowered, r.counters.downgraded, "downgrade flag must match a lowered tier");
    assert!(r.counters.completed > 0, "the ladder kept serving under overload");
}
