//! Fault-tolerance suite: seeded injectors, numeric guards, and the
//! deadlock watchdog working together across crates, through the `rapid`
//! facade.
//!
//! The invariants, mirroring DESIGN.md §6:
//!
//! - the ring protocol *drains* under any drop/duplicate/delay plan —
//!   faults cost cycles, never bytes;
//! - a genuine cyclic token dependency is reported as a structured
//!   [`SimError::Deadlock`] in bounded time, never a hang;
//! - [`GuardPolicy::Error`] localizes injected corruption in every RaPiD
//!   format (FP16, FP8 e4m3, FP8 e5m2, INT4, INT2);
//! - a plan with all injectors disabled is invisible: the guarded kernels
//!   are bit-exact against the fast paths;
//! - the same seed reproduces the same fault trace, event for event.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::arch::isa::SeqInstr;
use rapid::fault::{FaultConfig, FaultPlan};
use rapid::numerics::fma::FmaMode;
use rapid::numerics::gemm::{
    matmul_emulated, matmul_emulated_guarded, matmul_int, matmul_int_guarded,
};
use rapid::numerics::int::{IntFormat, QuantParams, Signedness};
use rapid::numerics::{GuardPolicy, NumericsError, Tensor};
use rapid::ring::sim::{multicast, unicast, RingSim};
use rapid::ring::{reliable_allreduce, ReliableConfig, ReliableError};
use rapid::sim::{run_token_programs, SimError};

fn mats(seed: u64) -> (Tensor, Tensor) {
    (
        Tensor::random_uniform(vec![8, 16], -1.0, 1.0, seed),
        Tensor::random_uniform(vec![16, 8], -1.0, 1.0, seed + 1),
    )
}

/// 256 deterministic fault plans spanning the drop/dup/delay grid: every
/// one must drain with full delivery (the acceptance floor for the ring
/// property tests).
#[test]
fn ring_drains_under_256_random_fault_plans() {
    let bytes = 4096u32;
    for seed in 0..256u64 {
        let cfg = FaultConfig {
            seed,
            ring_drop_rate: (seed % 8) as f64 * 0.015,
            ring_dup_rate: ((seed / 8) % 4) as f64 * 0.01,
            ring_delay_rate: ((seed / 32) % 8) as f64 * 0.015,
            ..FaultConfig::default()
        };
        let mut sim = RingSim::try_new(4, 20).expect("valid ring config");
        sim.set_fault_plan(FaultPlan::new(cfg));
        multicast(&mut sim, 9, 0, &[1, 2, 3], bytes);
        let t = sim
            .run_until_idle(10_000_000)
            .unwrap_or_else(|e| panic!("plan {seed} wedged the ring: {e}"));
        assert!(t > 0);
        for node in 1..4 {
            assert_eq!(
                sim.received_bytes(node),
                u64::from(bytes),
                "plan {seed}: node {node} lost bytes"
            );
        }
    }
}

#[test]
fn token_cycle_deadlock_is_reported_not_hung() {
    // A waits for B's token before signalling; B waits for A's: a circular
    // wait no amount of simulation will resolve.
    let a = vec![
        SeqInstr::WaitToken { token: 1, count: 1 },
        SeqInstr::SignalToken { token: 0 },
    ];
    let b = vec![
        SeqInstr::WaitToken { token: 0, count: 1 },
        SeqInstr::SignalToken { token: 1 },
    ];
    let err = run_token_programs(&[a, b], 2, 200).expect_err("circular wait must deadlock");
    let rendered = format!("{err}");
    assert!(rendered.contains("deadlocked"), "report should say so: {rendered}");
    match err {
        SimError::Deadlock { cycle, sequencer_states, waiting_tokens } => {
            assert!((200..1_000).contains(&cycle), "bounded detection, got {cycle}");
            assert_eq!(sequencer_states.len(), 2);
            assert_eq!(sequencer_states[0].waiting_on, Some((1, 1)));
            assert_eq!(sequencer_states[1].waiting_on, Some((0, 1)));
            assert_eq!(waiting_tokens, vec![(0, 0), (1, 0)]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn same_seed_reproduces_identical_fault_trace() {
    let (a, b) = mats(77);
    let cfg = FaultConfig {
        seed: 1234,
        mac_operand_rate: 0.02,
        mac_acc_rate: 0.02,
        ..FaultConfig::default()
    };
    let run = |cfg: FaultConfig| {
        let mut plan = FaultPlan::new(cfg);
        let (c, _) = matmul_emulated_guarded(
            FmaMode::hfp8_fwd_default(),
            &a,
            &b,
            64,
            GuardPolicy::Saturate,
            Some(&mut plan),
        )
        .expect("saturating guards never error");
        (c, plan.trace().to_vec(), plan.counts())
    };
    let (c1, trace1, counts1) = run(cfg);
    let (c2, trace2, counts2) = run(cfg);
    assert!(!trace1.is_empty(), "rates this high must fire");
    assert_eq!(trace1, trace2, "same seed, same trace");
    assert_eq!(counts1, counts2);
    assert_eq!(c1, c2, "same trace, same corrupted output");
    let (_, trace3, _) = run(FaultConfig { seed: 4321, ..cfg });
    assert_ne!(trace1, trace3, "different seed, different trace");
}

/// GuardPolicy::Error pinpoints injected non-finite accumulators in each
/// float format's pipeline. Exponent-targeted flips (share 1.0) push a
/// chunk accumulator to Inf/NaN quickly; not every seed lands one on a
/// vulnerable exponent, so each format scans a small seed range.
#[test]
fn guard_error_catches_float_injection_in_all_three_float_formats() {
    let a = Tensor::random_uniform(vec![8, 64], 0.5, 1.5, 3);
    let b = Tensor::random_uniform(vec![64, 8], 0.5, 1.5, 4);
    for (name, mode) in [
        ("fp16", FmaMode::Fp16),
        ("fp8 e4m3", FmaMode::hfp8_fwd_default()),
        ("fp8 e5m2", FmaMode::hfp8_bwd_default()),
    ] {
        let mut caught = false;
        for seed in 0..64 {
            let mut plan = FaultPlan::new(FaultConfig {
                seed,
                mac_acc_rate: 0.25,
                exponent_share: 1.0,
                ..FaultConfig::default()
            });
            match matmul_emulated_guarded(mode, &a, &b, 64, GuardPolicy::Error, Some(&mut plan)) {
                Err(NumericsError::NonFinite { row, col, bits }) => {
                    assert!(row < 8 && col < 8, "{name}: coordinates in range");
                    assert!(!f32::from_bits(bits).is_finite());
                    caught = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("{name}: unexpected error {other:?}"),
            }
        }
        assert!(caught, "{name}: no injected NaN/Inf caught across 64 seeds");
    }
}

/// GuardPolicy::Error pinpoints chunk-register corruption in the integer
/// pipeline for both INT4 and INT2: a high bit flipped into the INT16
/// chunk register breaches the legal worst-case bound.
#[test]
fn guard_error_catches_chunk_injection_in_int4_and_int2() {
    let a = Tensor::random_uniform(vec![4, 32], -0.7, 0.7, 5);
    let b = Tensor::random_uniform(vec![32, 4], -0.7, 0.7, 6);
    for fmt in [IntFormat::Int4, IntFormat::Int2] {
        let q = QuantParams::with_scale(fmt, Signedness::Signed, 0.1).expect("valid scale");
        let mut caught = false;
        for seed in 0..64 {
            let mut plan = FaultPlan::new(FaultConfig {
                seed,
                mac_acc_rate: 0.25,
                ..FaultConfig::default()
            });
            match matmul_int_guarded(&a, &b, q, q, 32, GuardPolicy::Error, Some(&mut plan)) {
                Err(NumericsError::Overflow { row, col, .. }) => {
                    assert!(row < 4 && col < 4, "{fmt:?}: coordinates in range");
                    caught = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("{fmt:?}: unexpected error {other:?}"),
            }
        }
        assert!(caught, "{fmt:?}: no injected overflow caught across 64 seeds");
    }
}

/// A fully disabled plan must be invisible: the guarded kernels take the
/// same fast paths PR 1's bit-exactness suite certifies, and the trace
/// stays empty.
#[test]
fn disabled_injectors_leave_every_fast_path_bit_exact() {
    let (a, b) = mats(9);
    for mode in [FmaMode::Fp16, FmaMode::hfp8_fwd_default(), FmaMode::hfp8_bwd_default()] {
        let (clean, _) = matmul_emulated(mode, &a, &b, 64);
        let mut plan = FaultPlan::disabled();
        let (guarded, _) =
            matmul_emulated_guarded(mode, &a, &b, 64, GuardPolicy::Error, Some(&mut plan))
                .expect("clean run cannot trip the guard");
        assert_eq!(clean, guarded);
        assert!(plan.trace().is_empty());
        assert_eq!(plan.counts(), rapid::fault::FaultCounts::default());
    }
    for fmt in [IntFormat::Int4, IntFormat::Int2] {
        let q = QuantParams::with_scale(fmt, Signedness::Signed, 0.05).expect("valid scale");
        let (clean, _) = matmul_int(&a, &b, q, q, 64);
        let (guarded, _) = matmul_int_guarded(&a, &b, q, q, 64, GuardPolicy::Propagate, None)
            .expect("clean run");
        assert_eq!(clean, guarded);
    }
}

proptest! {
    /// The ring drains under arbitrary random drop/dup/delay plans with a
    /// mixed multicast + reverse-unicast load: delivered bytes are
    /// invariant, only latency pays.
    #[test]
    fn ring_never_deadlocks_under_random_fault_plans(
        seed in 0u64..u64::MAX,
        drop in 0.0f64..0.10,
        dup in 0.0f64..0.05,
        delay in 0.0f64..0.10,
    ) {
        let mut sim = RingSim::try_new(4, 20).expect("valid ring config");
        sim.set_fault_plan(FaultPlan::new(FaultConfig {
            seed,
            ring_drop_rate: drop,
            ring_dup_rate: dup,
            ring_delay_rate: delay,
            ..FaultConfig::default()
        }));
        multicast(&mut sim, 3, 0, &[1, 2, 3], 2048);
        unicast(&mut sim, 4, 2, 0, 1024);
        let t = sim.run_until_idle(5_000_000);
        prop_assert!(t.is_ok(), "seed {} wedged the ring: {:?}", seed, t);
        for node in 1..4 {
            prop_assert_eq!(sim.received_bytes(node), 2048u64, "node {} lost bytes", node);
        }
        prop_assert_eq!(sim.received_bytes(0), 1024u64);
    }

    /// A permanently dead link (drop rate 1.0) can never deliver: the
    /// reliable allreduce must come back with the structured
    /// retries-exhausted error in bounded time — never a hang, never a
    /// partial sum — whatever the seed, world size, or payload.
    #[test]
    fn dead_link_yields_a_structured_timeout_never_a_hang(
        seed in 0u64..u64::MAX,
        chips in 2u32..6,
        elems in 1usize..512,
    ) {
        let inputs: Vec<Vec<f32>> = (0..chips)
            .map(|c| (0..elems).map(|i| (i + c as usize) as f32).collect())
            .collect();
        let cfg = ReliableConfig::rapid_training(chips, true);
        let mut plan = FaultPlan::new(FaultConfig {
            seed,
            ring_drop_rate: 1.0,
            ..FaultConfig::default()
        });
        match reliable_allreduce(&inputs, &cfg, Some(&mut plan)) {
            Err(ReliableError::RetriesExhausted { seq: _, retries }) => {
                // The reported count is the attempt that broke the budget.
                prop_assert_eq!(retries, cfg.max_retries + 1, "budget must be fully spent");
            }
            other => prop_assert!(false, "dead link must exhaust retries, got {:?}", other),
        }
    }

    /// Saturating guards keep every faulted float GEMM finite, whatever
    /// the seed and rate — the property that lets training ride out hits.
    #[test]
    fn saturating_guards_keep_faulted_gemms_finite(
        seed in 0u64..u64::MAX,
        rate in 0.0f64..0.2,
    ) {
        let (a, b) = mats(11);
        let mut plan = FaultPlan::new(FaultConfig {
            seed,
            mac_operand_rate: rate / 4.0,
            mac_acc_rate: rate,
            exponent_share: 1.0,
            ..FaultConfig::default()
        });
        let (c, _) = matmul_emulated_guarded(
            FmaMode::hfp8_fwd_default(), &a, &b, 64, GuardPolicy::Saturate, Some(&mut plan),
        ).expect("saturating guards never error");
        for &v in c.as_slice() {
            prop_assert!(v.is_finite(), "saturated output must stay finite, got {}", v);
        }
    }
}
