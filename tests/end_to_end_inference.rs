//! Integration: compile and evaluate the whole 11-benchmark suite for
//! batch-1 inference and check the paper's headline bands (Figs 13, 14, 17).

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::arch::geometry::ChipConfig;
use rapid::arch::precision::Precision;
use rapid::compiler::passes::{compile, CompileOptions};
use rapid::model::cost::ModelConfig;
use rapid::model::inference::{evaluate_inference, InferenceResult};
use rapid::workloads::graph::Network;
use rapid::workloads::suite::benchmark_suite;

fn evaluate(net: &Network, p: Precision) -> InferenceResult {
    let chip = ChipConfig::rapid_4core();
    let plan = compile(net, &chip, &CompileOptions::for_precision(p));
    evaluate_inference(net, &plan, &chip, 1, &ModelConfig::default())
}

#[test]
fn fig13_int4_speedups_over_fp16() {
    // Paper: 1.4×–4.2× (average 2.8×). We accept a modestly wider band.
    let mut speedups = Vec::new();
    for net in benchmark_suite() {
        let fp16 = evaluate(&net, Precision::Fp16);
        let int4 = evaluate(&net, Precision::Int4);
        let s = fp16.latency_s / int4.latency_s;
        assert!((1.2..=5.2).contains(&s), "{}: int4 speedup {s}", net.name);
        speedups.push(s);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((2.2..=3.8).contains(&avg), "average int4 speedup {avg} (paper 2.8)");
}

#[test]
fn fig13_fp8_speedups_over_fp16() {
    // Paper: 1.2×–1.9× (average 1.55×).
    let mut speedups = Vec::new();
    for net in benchmark_suite() {
        let fp16 = evaluate(&net, Precision::Fp16);
        let fp8 = evaluate(&net, Precision::Hfp8);
        let s = fp16.latency_s / fp8.latency_s;
        assert!((1.1..=2.0).contains(&s), "{}: fp8 speedup {s}", net.name);
        speedups.push(s);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((1.3..=1.9).contains(&avg), "average fp8 speedup {avg} (paper 1.55)");
}

#[test]
fn fig14_sustained_efficiency_bands() {
    // Paper: INT4 3–13.5 TOPS/W (avg 7), FP8 1.4–4.68 (avg 3.16), at the
    // peak-efficiency operating point (nominal voltage, 1.0 GHz).
    let mut chip = ChipConfig::rapid_4core();
    chip.freq_ghz = 1.0; // nominal-voltage point for efficiency studies
    let cfg = ModelConfig::default();
    let mut int4 = Vec::new();
    for net in benchmark_suite() {
        let plan = compile(&net, &chip, &CompileOptions::for_precision(Precision::Int4));
        let r = evaluate_inference(&net, &plan, &chip, 1, &cfg);
        assert!(
            (0.4..=16.5).contains(&r.tops_per_w),
            "{}: int4 {} TOPS/W",
            net.name,
            r.tops_per_w
        );
        int4.push(r.tops_per_w);
    }
    let avg = int4.iter().sum::<f64>() / int4.len() as f64;
    assert!((4.0..=11.0).contains(&avg), "int4 avg {avg} TOPS/W (paper 7)");
    // The best network must stay below the chip's peak efficiency.
    let max = int4.iter().cloned().fold(0.0, f64::max);
    assert!(max < 16.5, "sustained {max} cannot beat peak 16.5");
}

#[test]
fn fig17_breakdown_shape() {
    // Paper averages: conv 50%, overheads 14%, quantization 17%, aux 19%.
    let mut sums = [0.0f64; 4];
    let suite = benchmark_suite();
    for net in &suite {
        let r = evaluate(net, Precision::Int4);
        let f = r.breakdown.fractions();
        for (s, v) in sums.iter_mut().zip(f) {
            *s += v;
        }
    }
    let n = suite.len() as f64;
    let avg: Vec<f64> = sums.iter().map(|s| s / n).collect();
    assert!((0.30..0.65).contains(&avg[0]), "conv fraction {avg:?}");
    assert!((0.08..0.40).contains(&avg[1]), "overhead fraction {avg:?}");
    assert!((0.05..0.30).contains(&avg[2]), "quant fraction {avg:?}");
    assert!((0.08..0.30).contains(&avg[3]), "aux fraction {avg:?}");
}

#[test]
fn compute_heavy_benchmarks_speed_up_most() {
    // Paper: "image classification and object detection benchmarks with
    // compute-heavy convolution layers achieve the best improvement, while
    // mobile networks ... benefit the least."
    let suite = benchmark_suite();
    let speedup = |name: &str| {
        let net = suite.iter().find(|n| n.name == name).expect("known");
        evaluate(net, Precision::Fp16).latency_s / evaluate(net, Precision::Int4).latency_s
    };
    let mobile = speedup("mobilenetv1");
    for heavy in ["vgg16", "yolov3", "inception4"] {
        assert!(speedup(heavy) > mobile + 0.5, "{heavy} must beat mobilenet clearly");
    }
}

#[test]
fn absolute_latencies_are_plausible() {
    // Batch-1 INT4 latencies on a 96-TOPS chip should land in the
    // tens-of-µs .. few-ms range across the suite.
    for net in benchmark_suite() {
        let r = evaluate(&net, Precision::Int4);
        assert!(
            r.latency_s > 10e-6 && r.latency_s < 20e-3,
            "{}: {} s",
            net.name,
            r.latency_s
        );
    }
}
