//! End-to-end elastic-training suite: the node-loss survival stories of
//! DESIGN.md §11 exercised together through the `rapid` facade.
//!
//! - **A crash heals, training finishes.** A seeded node crash is
//!   detected, the dead rank is spliced out under a bumped membership
//!   epoch, in-flight chunks are re-reduced, and the run lands within 2
//!   accuracy points of the fault-free baseline.
//! - **Catch-up is bit-identical.** A node restored from checkpoint
//!   generation N−1 replays the missing epoch and matches the
//!   uninterrupted run's weights bit for bit at the next barrier.
//! - **Stragglers cost time, never membership.** A slowdown inside the
//!   deadline is waited out; beyond it the laggard is dropped from that
//!   exchange only.
//! - **Nothing hangs.** Whatever the seeded mix of crashes, hangs, and
//!   slowdowns, the elastic allreduce either returns a reduced vector or
//!   a structured error — in bounded modeled time.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::fault::{FaultConfig, FaultPlan};
use rapid::recover::{train_elastic, CheckpointStore, ElasticTrainConfig};
use rapid::refnet::backend::{Fp32Backend, Hfp8Backend};
use rapid::refnet::data::gaussian_blobs;
use rapid::refnet::mlp::Mlp;
use rapid::ring::{elastic_allreduce, ElasticConfig, ElasticError, Membership};

/// The model's parameters in reduction order — the unit the bit-identity
/// assertions compare.
fn weights_of(mlp: &Mlp) -> Vec<f32> {
    let mut out = Vec::new();
    for i in 0..mlp.depth() {
        out.extend_from_slice(mlp.weights(i).as_slice());
        out.extend_from_slice(mlp.biases(i));
    }
    out
}

fn train_cfg(world: u32, epochs: usize) -> ElasticTrainConfig {
    ElasticTrainConfig { epochs, ..ElasticTrainConfig::rapid_training(world) }
}

/// One seeded crash mid-run: the ring heals to 3 survivors under a new
/// membership epoch and accuracy stays within 2 points of fault-free.
#[test]
fn crashed_node_is_spliced_and_training_lands_within_two_points() {
    let data = gaussian_blobs(256, 4, 16, 0.35, 42);
    let mut clean = Mlp::new(&[16, 32, 4], 1);
    let mut mem = Membership::new(4).unwrap();
    let (acc_clean, _) = train_elastic(
        &mut clean,
        &Hfp8Backend::default(),
        &data,
        &train_cfg(4, 10),
        &mut mem,
        None,
        None,
        None,
    )
    .unwrap();
    let mut mlp = Mlp::new(&[16, 32, 4], 1);
    let mut mem = Membership::new(4).unwrap();
    let mut plan = FaultPlan::new(FaultConfig {
        seed: 7,
        node_crash_rate: 0.02,
        node_fault_budget: 1,
        ..FaultConfig::default()
    });
    let (acc, report) = train_elastic(
        &mut mlp,
        &Hfp8Backend::default(),
        &data,
        &train_cfg(4, 10),
        &mut mem,
        Some(&mut plan),
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.crashes_survived, 1, "{report:?}");
    assert!(report.splices >= 1);
    assert_eq!(report.final_world, 3);
    assert_eq!(mem.epoch(), report.final_epoch);
    assert!(report.goodput() < 1.0, "healing must cost cycles");
    assert!(acc >= acc_clean - 0.02, "one crash cost too much: {acc} vs {acc_clean}");
}

/// Satellite contract: a node restored from checkpoint generation N−1
/// catches up bit-identically by the next barrier. The interrupted store
/// holds generations 0..N−1; a fresh node resuming over it replays epoch
/// N with the same data order and ring order, landing on the
/// uninterrupted run's weights exactly.
#[test]
fn node_restored_from_generation_n_minus_1_catches_up_bit_identical() {
    let dir = std::env::temp_dir().join(format!("rapid-elastic-it-catchup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = gaussian_blobs(128, 4, 16, 0.35, 44);
    let cfg = train_cfg(4, 6);

    // Uninterrupted run: 6 epochs, one checkpoint generation per barrier.
    let mut full = Mlp::new(&[16, 24, 4], 3);
    let mut mem = Membership::new(4).unwrap();
    let mut store = CheckpointStore::open(dir.join("full"), "el", 8).unwrap();
    train_elastic(&mut full, &Fp32Backend, &data, &cfg, &mut mem, None, Some(&mut store), None)
        .unwrap();

    // Interrupted run: the same schedule stops after 5 epochs, leaving
    // generation N−1 as the newest checkpoint.
    let mut part = Mlp::new(&[16, 24, 4], 3);
    let mut mem = Membership::new(4).unwrap();
    let mut store = CheckpointStore::open(dir.join("part"), "el", 8).unwrap();
    train_elastic(
        &mut part,
        &Fp32Backend,
        &data,
        &ElasticTrainConfig { epochs: 5, ..cfg },
        &mut mem,
        None,
        Some(&mut store),
        None,
    )
    .unwrap();

    // The restored node: fresh weights, resumes over the interrupted
    // store, replays only the missing epoch.
    let mut restored = Mlp::new(&[16, 24, 4], 99);
    let mut mem = Membership::new(4).unwrap();
    let mut store = CheckpointStore::open(dir.join("part"), "el", 8).unwrap();
    let (_, report) = train_elastic(
        &mut restored,
        &Fp32Backend,
        &data,
        &cfg,
        &mut mem,
        None,
        Some(&mut store),
        None,
    )
    .unwrap();
    assert_eq!(report.epochs_resumed, 5, "{report:?}");
    assert_eq!(report.steps_run, (data.len().div_ceil(cfg.batch)) as u64, "one epoch replayed");
    assert_eq!(
        weights_of(&restored),
        weights_of(&full),
        "generation N-1 catch-up must be bit-identical at the next barrier"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stragglers pay in exchange time only: within the deadline the ring
/// waits; beyond it the laggard's contribution is dropped — membership
/// and epoch are untouched either way.
#[test]
fn stragglers_never_cost_membership() {
    let inputs: Vec<Vec<f32>> = (0..4).map(|c| vec![c as f32 + 1.0; 64]).collect();
    let cfg = ElasticConfig::rapid_training(4, true);
    // Scan seeds for a run where some but not all members straggle past
    // the deadline (all-dropped legitimately errors instead).
    let dropped_case = (0..64u64).find_map(|seed| {
        let mut mem = Membership::new(4).unwrap();
        let mut plan = FaultPlan::new(FaultConfig {
            seed,
            node_slow_rate: 0.5,
            node_slow_factor: 4.0,
            ..FaultConfig::default()
        });
        let out = elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)).ok()?;
        (out.health.stragglers_dropped > 0).then_some((out, mem))
    });
    let (out, mem) = dropped_case.expect("some seed must drop 1–3 stragglers");
    assert!(out.contributors.len() < 4, "dropped laggards cannot contribute");
    assert_eq!(mem.members().len(), 4, "dropping is per-exchange, membership intact");
    assert_eq!(mem.epoch(), 0, "no splice, no epoch bump");
}

proptest! {
    /// The elastic allreduce is hang-free by construction: any seeded mix
    /// of crashes, hangs, and slowdowns either reduces over the survivors
    /// or returns a structured error — with modeled cycles bounded and
    /// membership never below the configured floor.
    #[test]
    fn elastic_allreduce_never_hangs_under_node_faults(
        seed in 0u64..u64::MAX,
        crash in 0.0f64..0.3,
        hang in 0.0f64..0.3,
        slow in 0.0f64..0.3,
    ) {
        let inputs: Vec<Vec<f32>> = (0..4).map(|c| vec![c as f32; 32]).collect();
        let cfg = ElasticConfig::rapid_training(4, true);
        let mut mem = Membership::new(4).unwrap();
        let mut plan = FaultPlan::new(FaultConfig {
            seed,
            node_crash_rate: crash,
            node_hang_rate: hang,
            node_slow_rate: slow,
            ..FaultConfig::default()
        });
        match elastic_allreduce(&inputs, &mut mem, &cfg, Some(&mut plan)) {
            Ok(out) => {
                prop_assert!(!out.contributors.is_empty());
                prop_assert!(out.health.cycles >= out.health.ideal_cycles);
                prop_assert_eq!(out.reduced.len(), 32);
                for &v in &out.reduced {
                    prop_assert!(v.is_finite());
                }
            }
            Err(ElasticError::WorldTooSmall { survivors, min }) => {
                prop_assert!(survivors < min, "structured floor violation: {} < {}", survivors, min);
            }
            Err(other) => prop_assert!(false, "unexpected elastic failure: {}", other),
        }
    }
}
