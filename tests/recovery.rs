//! End-to-end recovery suite: the four survivability stories of
//! DESIGN.md §7 exercised together through the `rapid` facade.
//!
//! - **Training rides out datapath faults.** Under a seeded 1e-3 MAC
//!   bit-flip rate, HFP8 QAT through the recovery loop (skip / back-off /
//!   redundant-execution voting / rollback) finishes within 2% of the
//!   fault-free run — while the same configuration without the recovery
//!   layer surfaces a guard error and aborts.
//! - **Checkpoints survive corruption.** A flipped byte in the newest
//!   generation fails its CRC32 and the previous generation loads.
//! - **The reliable allreduce is exact.** Under drop + duplicate + delay
//!   faults the ack/retransmit protocol delivers values bit-identical to
//!   the fault-free reduction; only cycles pay.
//! - **A dead core degrades, never corrupts.** A 4-core chip with one
//!   core failed computes bit-identical GEMM results on the 3 survivors,
//!   and the analytical model prices the slowdown above 1×.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::fault::{derive_seed, FaultConfig, FaultPlan};
use rapid::model::{degraded_throughput, ModelConfig};
use rapid::numerics::int::IntFormat;
use rapid::numerics::GuardPolicy;
use rapid::recover::{
    train_qat_resilient, CheckpointStore, GuardedHfp8Backend, LayerState, ResilientConfig,
    TrainState,
};
use rapid::refnet::data::gaussian_blobs;
use rapid::refnet::qat::{train_qat, QatConfig, QatMlp};
use rapid::arch::geometry::CoreConfig;
use rapid::arch::precision::Precision;
use rapid::numerics::Tensor;
use rapid::ring::{reliable_allreduce, ReliableConfig};
use rapid::sim::{try_run_chip_gemm_degraded, ChipGemmJob};
use rapid::workloads::suite::benchmark;

fn faulty_backend(seed: u64, rate: f64) -> GuardedHfp8Backend {
    GuardedHfp8Backend::new(
        FaultConfig {
            seed,
            mac_acc_rate: rate,
            mac_operand_rate: rate / 4.0,
            ..FaultConfig::default()
        },
        GuardPolicy::Error,
    )
}

/// (a) Recovery completes QAT within 2% of fault-free under a 1e-3 MAC
/// flip rate; the identical configuration without the recovery loop
/// aborts on the first unguarded trip.
#[test]
fn qat_under_flips_recovers_while_unprotected_run_aborts() {
    let data = gaussian_blobs(256, 4, 16, 0.35, 42);
    let cfg = QatConfig { epochs: 12, ..QatConfig::default() };
    let mut clean = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let acc_clean = train_qat(&mut clean, &data, &cfg);

    let seed = derive_seed(7, "recovery/qat");
    // Without the recovery layer the same schedule surfaces a guard
    // error: the caller has nothing to do but abort.
    let unprotected = faulty_backend(seed, 1e-3);
    let mut doomed = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let mut aborted = false;
    'outer: for _ in 0..cfg.epochs {
        let mut start = 0;
        while start < data.len() {
            let end = (start + cfg.batch).min(data.len());
            let (bx, by) = data.batch(start, end);
            if doomed.try_step_with(&unprotected, &bx, by, &cfg, 1.0).is_err() {
                aborted = true;
                break 'outer;
            }
            start = end;
        }
    }
    assert!(aborted, "1e-3 flips must trip the Error guard without recovery");

    let backend = faulty_backend(seed, 1e-3);
    let mut model = QatMlp::new(&[16, 32, 4], IntFormat::Int4, 1);
    let (acc, report) = train_qat_resilient(
        &mut model,
        &backend,
        &data,
        &cfg,
        &ResilientConfig::default(),
        None,
    )
    .expect("recovery absorbs a 1e-3 flip rate");
    assert!(report.steps_skipped > 0, "faults must force skips: {report:?}");
    assert!(
        acc > acc_clean - 0.02,
        "resilient {acc} within 2% of fault-free {acc_clean}: {report:?}"
    );
}

/// (b) A flipped byte in the newest checkpoint generation fails its
/// checksum; the store falls back to the previous generation.
#[test]
fn corrupted_checkpoint_is_rejected_and_previous_generation_loads() {
    let dir = std::env::temp_dir()
        .join(format!("rapid-recovery-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = CheckpointStore::open(&dir, "train", 4).expect("store opens");
    let state_at = |step: u64| TrainState {
        step,
        rng_state: 0,
        scale: 256.0,
        scaler_good_steps: 0,
        layers: vec![LayerState {
            rows: 2,
            cols: 2,
            w: vec![step as f32; 4],
            b: vec![0.5; 2],
        }],
        alphas: vec![1.0],
    };
    store.save(&state_at(10)).expect("gen 0 saves");
    store.save(&state_at(20)).expect("gen 1 saves");

    // Flip one payload byte in the newest generation.
    let newest = dir.join("train.1.ckpt");
    let mut bytes = std::fs::read(&newest).expect("read newest");
    let mid = bytes.len() - 3;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("write corrupted");

    let (_, loaded) = store
        .load_latest()
        .expect("load scans generations")
        .expect("previous generation survives");
    assert_eq!(loaded.step, 10, "fallback must be the older checkpoint");
    assert_eq!(store.corrupt_skipped(), 1, "the flipped byte must be counted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// (c) The ack/retransmit allreduce delivers bit-identical values under
/// drop + duplicate + delay faults; the health report prices the cost.
#[test]
fn reliable_allreduce_is_bit_identical_under_faults() {
    let chips = 4usize;
    let elems = 32_768usize;
    let inputs: Vec<Vec<f32>> = (0..chips)
        .map(|c| {
            (0..elems)
                .map(|i| ((i * 31 + c * 7919) % 997) as f32 * 0.25 - 120.0)
                .collect()
        })
        .collect();
    let cfg = ReliableConfig::rapid_training(chips as u32, true);
    let (clean, clean_health) =
        reliable_allreduce(&inputs, &cfg, None).expect("fault-free allreduce");

    let seed = derive_seed(7, "recovery/allreduce");
    let mut plan = FaultPlan::new(FaultConfig {
        seed,
        ring_drop_rate: 0.04,
        ring_dup_rate: 0.02,
        ring_delay_rate: 0.02,
        ..FaultConfig::default()
    });
    let (faulty, health) =
        reliable_allreduce(&inputs, &cfg, Some(&mut plan)).expect("protocol absorbs faults");

    assert_eq!(clean, faulty, "reduced values must be bit-identical");
    assert!(health.retransmits > 0, "4% drops must force retransmits: {health:?}");
    assert!(health.cycles > clean_health.cycles, "faults must cost cycles");
    assert!(
        health.bandwidth_retention() < 1.0,
        "retention must reflect the overhead: {health:?}"
    );
}

/// (d) Killing one of four cores leaves GEMM results bit-identical on
/// the survivors, and the model prices the 4→3 inference slowdown in
/// (1.0, 4/3 + ε].
#[test]
fn degraded_chip_matches_healthy_values_and_pays_slowdown() {
    let job = ChipGemmJob {
        a: Tensor::random_uniform(vec![24, 48], -1.0, 1.0, 99),
        b: Tensor::random_uniform(vec![48, 32], -1.0, 1.0, 100),
        precision: Precision::Fp16,
    };
    let core = CoreConfig::default();
    let healthy =
        try_run_chip_gemm_degraded(&job, core, 4, 0, None).expect("healthy chip runs");
    let degraded =
        try_run_chip_gemm_degraded(&job, core, 4, 0b0010, None).expect("3 cores survive");
    assert_eq!(degraded.cores.len(), 3, "one core is gone");
    assert_eq!(healthy.c, degraded.c, "remapped columns must be bit-identical");
    assert!(
        degraded.compute_cycles > healthy.compute_cycles,
        "3 survivors pay more cycles: {} vs {}",
        degraded.compute_cycles,
        healthy.compute_cycles
    );

    let net = benchmark("resnet50").expect("suite has resnet50");
    let points =
        degraded_throughput(&net, 4, 3, Precision::Int4, &ModelConfig::default());
    assert_eq!(points.len(), 2);
    assert!((points[0].slowdown - 1.0).abs() < 1e-9, "4/4 survivors is the baseline");
    let three = &points[1];
    assert_eq!(three.survivors, 3);
    assert!(
        three.slowdown > 1.0 && three.slowdown < 4.0 / 3.0 + 0.05,
        "3-core slowdown should sit in (1, 4/3+ε]: {}",
        three.slowdown
    );
}
