//! Property tests for the end-to-end data protection layer (E19): ABFT
//! checksummed GEMMs across all five compute formats, and torn checkpoint
//! writes that must never panic or load garbage.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::fault::{FaultConfig, FaultPlan};
use rapid::numerics::abft::{abft_matmul_emulated, abft_matmul_int, fp_tolerance_factor};
use rapid::numerics::fma::FmaMode;
use rapid::numerics::gemm::{matmul_emulated, matmul_int};
use rapid::numerics::int::{IntFormat, QuantParams, Signedness};
use rapid::numerics::Tensor;
use rapid::recover::checkpoint::{decode, CheckpointStore, LayerState, TrainState};

const M: usize = 6;
const K: usize = 16;
const N: usize = 5;
const CHUNK: usize = 4;

fn operands(seed: u64) -> (Tensor, Tensor) {
    let a = Tensor::random_uniform(vec![M, K], -2.0, 2.0, seed);
    let b = Tensor::random_uniform(vec![K, N], -2.0, 2.0, seed ^ 0xABCD);
    (a, b)
}

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        mac_acc_rate: 5e-3,
        mac_operand_rate: 2e-3,
        ..FaultConfig::default()
    })
}

/// Per-element bounds of the FP dual contract: a fault that survives must
/// have slipped under BOTH the row and the column residual thresholds, so
/// any delivered error is at most 2× the smaller of the two detection
/// envelopes (detection slack plus the datapath's own rounding slack).
fn fp_error_bounds(mode: FmaMode, a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (fa, fb) = mode.operand_formats();
    let qa: Vec<f64> = a.as_slice().iter().map(|&x| f64::from(fa.quantize(x))).collect();
    let qb: Vec<f64> = b.as_slice().iter().map(|&x| f64::from(fb.quantize(x))).collect();
    let tol = fp_tolerance_factor(K, CHUNK);
    let abs_row_sum_b: Vec<f64> =
        (0..K).map(|p| (0..N).map(|j| qb[p * N + j].abs()).sum()).collect();
    let abs_col_sum_a: Vec<f64> =
        (0..K).map(|p| (0..M).map(|i| qa[i * K + p].abs()).sum()).collect();
    let mut bounds = Vec::with_capacity(M * N);
    for i in 0..M {
        let env_row: f64 = (0..K).map(|p| qa[i * K + p].abs() * abs_row_sum_b[p]).sum();
        for j in 0..N {
            let env_col: f64 = (0..K).map(|p| abs_col_sum_a[p] * qb[p * N + j].abs()).sum();
            bounds.push(2.0 * tol * env_row.min(env_col));
        }
    }
    bounds
}

proptest! {
    /// Every seeded fault stream — whatever it flips — leaves the ABFT
    /// product equal to the fault-free one: bit-exactly for the integer
    /// formats (INT4, INT2), within the rounding-envelope dual contract
    /// for the float formats (FP16 and both HFP8 modes).
    #[test]
    fn abft_corrects_single_faults(seed in 1u64..100_000, fmt in 0usize..5) {
        let (a, b) = operands(seed.rotate_left(7) ^ fmt as u64);
        match fmt {
            0..=2 => {
                let mode = [
                    FmaMode::Fp16,
                    FmaMode::hfp8_fwd_default(),
                    FmaMode::hfp8_bwd_default(),
                ][fmt];
                let (clean, _) = matmul_emulated(mode, &a, &b, CHUNK);
                let mut p = plan(seed);
                let (c, _, rep) =
                    abft_matmul_emulated(mode, &a, &b, CHUNK, Some(&mut p)).unwrap();
                prop_assert!(rep.checksum_macs > 0);
                let bounds = fp_error_bounds(mode, &a, &b);
                for (idx, (&got, &want)) in
                    c.as_slice().iter().zip(clean.as_slice()).enumerate()
                {
                    prop_assert!(
                        got.to_bits() == want.to_bits()
                            || f64::from((got - want).abs()) <= bounds[idx],
                        "{mode:?} seed {seed} element {idx}: got {got}, clean {want}, bound {}",
                        bounds[idx]
                    );
                }
            }
            _ => {
                let ifmt = if fmt == 3 { IntFormat::Int4 } else { IntFormat::Int2 };
                let q = QuantParams::from_abs_max(ifmt, Signedness::Signed, 2.0);
                let (clean, _) = matmul_int(&a, &b, q, q, CHUNK);
                let mut p = plan(seed);
                let (c, _, rep) = abft_matmul_int(&a, &b, q, q, CHUNK, Some(&mut p)).unwrap();
                prop_assert!(rep.checksum_macs > 0);
                prop_assert_eq!(
                    c.as_slice(),
                    clean.as_slice(),
                    "{:?} seed {}: integer repair must be bit-exact",
                    ifmt,
                    seed
                );
            }
        }
    }

    /// With no fault plan the protected GEMM is bit-invisible: identical
    /// output to the unprotected kernel and zero detections, in every
    /// format.
    #[test]
    fn disabled_protection_is_bit_invisible(seed in 1u64..100_000) {
        let (a, b) = operands(seed);
        for mode in [FmaMode::Fp16, FmaMode::hfp8_fwd_default(), FmaMode::hfp8_bwd_default()] {
            let (clean, _) = matmul_emulated(mode, &a, &b, CHUNK);
            let (c, _, rep) = abft_matmul_emulated(mode, &a, &b, CHUNK, None).unwrap();
            prop_assert_eq!(c.as_slice(), clean.as_slice());
            prop_assert_eq!(rep.corrections + rep.detected_rows + rep.detected_cols, 0);
        }
        for ifmt in [IntFormat::Int4, IntFormat::Int2] {
            let q = QuantParams::from_abs_max(ifmt, Signedness::Signed, 2.0);
            let (clean, _) = matmul_int(&a, &b, q, q, CHUNK);
            let (c, _, rep) = abft_matmul_int(&a, &b, q, q, CHUNK, None).unwrap();
            prop_assert_eq!(c.as_slice(), clean.as_slice());
            prop_assert_eq!(rep.corrections + rep.detected_rows + rep.detected_cols, 0);
        }
    }

    /// A torn write of the newest checkpoint — truncation at EVERY byte
    /// offset — either falls back to the previous good generation or
    /// reports a structured error. It never panics and never loads
    /// garbage.
    #[test]
    fn torn_checkpoint_writes_never_panic(
        step0 in 1u64..1_000,
        step1 in 1_000u64..2_000,
        wseed in 0u64..1_000_000,
    ) {
        let state = |step: u64, fill: f32| TrainState {
            step,
            rng_state: wseed,
            scale: 128.0,
            scaler_good_steps: 3,
            layers: vec![LayerState {
                rows: 2,
                cols: 3,
                w: vec![fill; 6],
                b: vec![-fill; 2],
            }],
            alphas: vec![1.0, 0.5],
        };
        let dir = std::env::temp_dir()
            .join(format!("rapid-torn-{}-{wseed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, "t", 8).unwrap();
        store.save(&state(step0, wseed as f32 * 1e-6)).unwrap();
        store.save(&state(step1, 2.5)).unwrap();
        let newest = dir.join("t.1.ckpt");
        let full = std::fs::read(&newest).unwrap();
        for len in 0..full.len() {
            // Decoding the torn image is a structured error, not a panic.
            prop_assert!(decode(&full[..len]).is_err(), "prefix of {len} bytes decoded");
            // The store skips the torn generation and serves the previous
            // good one.
            std::fs::write(&newest, &full[..len]).unwrap();
            let (gen, loaded) = store.load_latest().unwrap().expect("gen 0 survives");
            prop_assert_eq!(gen, 0);
            prop_assert_eq!(loaded.step, step0);
        }
        prop_assert!(store.corrupt_skipped() >= full.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
