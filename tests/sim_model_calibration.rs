//! Integration (E9): sweep GEMM shapes through the cycle-approximate core
//! simulator and require the analytical model to track it — our analog of
//! the paper's "performance model calibrated to within 1% of the
//! measurement results".

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::arch::geometry::CoreletConfig;
use rapid::arch::precision::Precision;
use rapid::compiler::mapping::map_layer;
use rapid::numerics::Tensor;
use rapid::sim::gemm::{CoreSim, GemmJob};
use rapid::workloads::graph::Op;

fn calibration_error(m: usize, k: usize, n: usize, p: Precision, seed: u64) -> f64 {
    let core = CoreSim::rapid();
    let job = GemmJob {
        a: Tensor::random_uniform(vec![m, k], -1.0, 1.0, seed),
        b: Tensor::random_uniform(vec![k, n], -1.0, 1.0, seed + 1),
        precision: p,
    };
    let r = core.run_gemm(&job);
    let op = Op::Gemm { m: m as u64, k: k as u64, n: n as u64, weighted: true };
    let predicted = map_layer(&op, p, 1, &CoreletConfig::default(), 2).total_cycles();
    (predicted - r.cycles as f64).abs() / r.cycles as f64
}

#[test]
fn calibration_sweep_mean_error_is_small() {
    let shapes = [
        (16usize, 128usize, 128usize),
        (32, 256, 128),
        (64, 256, 256),
        (8, 512, 128),
        (128, 64, 128),
    ];
    let mut errors = Vec::new();
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        for p in [Precision::Fp16, Precision::Hfp8, Precision::Int4] {
            let e = calibration_error(m, k, n, p, 100 + i as u64);
            assert!(e < 0.10, "{p} {m}x{k}x{n}: error {:.1}%", e * 100.0);
            errors.push(e);
        }
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.05, "mean calibration error {:.2}% (target < 5%)", mean * 100.0);
}

#[test]
fn calibration_holds_for_awkward_shapes() {
    // Non-multiple dimensions exercise residue handling on both sides.
    for &(m, k, n) in &[(7usize, 100usize, 70usize), (33, 130, 65), (5, 513, 129)] {
        let e = calibration_error(m, k, n, Precision::Fp16, 200);
        assert!(e < 0.15, "{m}x{k}x{n}: error {:.1}%", e * 100.0);
    }
}

#[test]
fn simulated_int4_outpaces_fp16_by_the_architected_factor() {
    // End-to-end cycles won't show the full 8× (block loads don't scale),
    // but the streaming phase must.
    let core = CoreSim::rapid();
    let a = Tensor::random_uniform(vec![64, 512], -1.0, 1.0, 300);
    let b = Tensor::random_uniform(vec![512, 128], -1.0, 1.0, 301);
    let run = |p| {
        core.run_gemm(&GemmJob { a: a.clone(), b: b.clone(), precision: p })
    };
    let fp16 = run(Precision::Fp16);
    let int4 = run(Precision::Int4);
    let fp16_stream: u64 = fp16.corelets.iter().map(|c| c.phase_cycles[2]).sum();
    let int4_stream: u64 = int4.corelets.iter().map(|c| c.phase_cycles[2]).sum();
    let ratio = fp16_stream as f64 / int4_stream as f64;
    assert!((7.0..=9.0).contains(&ratio), "stream-rate ratio {ratio} (architected 8x)");
}
