//! Property-based tests on cross-crate invariants (proptest).

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use proptest::prelude::*;
use rapid::arch::geometry::CoreletConfig;
use rapid::arch::isa::MpeInstr;
use rapid::arch::power::ThrottleModel;
use rapid::arch::precision::Precision;
use rapid::compiler::mapping::map_layer;
use rapid::numerics::format::FpFormat;
use rapid::numerics::int::{pack_codes, unpack_codes, IntFormat, QuantParams, Signedness};
use rapid::ring::sim::{unicast, RingSim};
use rapid::workloads::graph::Op;

proptest! {
    /// Quantization to any RaPiD float format is idempotent and monotone.
    #[test]
    fn float_quantization_idempotent_and_monotone(
        x in -1e6f32..1e6,
        y in -1e6f32..1e6,
    ) {
        for fmt in [
            FpFormat::fp16(),
            FpFormat::fp8_e4m3(),
            FpFormat::fp8_e5m2(),
            FpFormat::fp9(),
        ] {
            let qx = fmt.quantize(x);
            prop_assert_eq!(fmt.quantize(qx), qx, "idempotence in {}", fmt);
            let qy = fmt.quantize(y);
            if x <= y {
                prop_assert!(qx <= qy, "monotonicity in {}: q({x})={qx} > q({y})={qy}", fmt);
            }
        }
    }

    /// Quantization error is bounded by half a ulp at the value's scale
    /// (within range, normal numbers).
    #[test]
    fn float_quantization_error_bound(x in 0.001f32..100.0) {
        let fmt = FpFormat::fp8_e4m3();
        let q = fmt.quantize(x);
        let ulp = 2f32.powi(x.log2().floor() as i32) * fmt.epsilon();
        prop_assert!((q - x).abs() <= ulp / 2.0 + 1e-9, "q({x})={q}, ulp {ulp}");
    }

    /// Programmable bias is exactly a power-of-two rescaling.
    #[test]
    fn bias_change_is_power_of_two_scaling(x in -400.0f32..400.0, shift in -3i32..=3) {
        let base = FpFormat::fp8_e4m3();
        let shifted = FpFormat::fp8_e4m3_with_bias(7 + shift).unwrap();
        // Raising the bias by s scales the whole value set by 2^-s:
        // q_{b+s}(x · 2^-s) == q_b(x) · 2^-s, saturation included.
        let scale = 2f32.powi(-shift);
        let lhs = base.quantize(x) * scale;
        let rhs = shifted.quantize(x * scale);
        prop_assert_eq!(lhs, rhs);
    }

    /// INT4/INT2 pack→unpack round-trips arbitrary in-range codes.
    #[test]
    fn int_pack_roundtrip(codes in proptest::collection::vec(-7i8..=7, 0..64)) {
        let packed = pack_codes(IntFormat::Int4, &codes);
        prop_assert_eq!(unpack_codes(IntFormat::Int4, &packed, codes.len()), codes);
    }

    /// Integer quantization round-trips every code and clamps the rest.
    #[test]
    fn int_quantize_bounds(x in -1e4f32..1e4, scale in 0.001f32..10.0) {
        let q = QuantParams::with_scale(IntFormat::Int4, Signedness::Signed, scale).unwrap();
        let code = q.quantize(x);
        prop_assert!((-7..=7).contains(&i32::from(code)));
        // Error within half a step unless clamped.
        let v = q.dequantize(code);
        if x.abs() < 7.0 * scale {
            prop_assert!((v - x).abs() <= scale / 2.0 + 1e-6);
        }
    }

    /// The dataflow mapping never reports more than 100% utilization and
    /// never loses work, for arbitrary GEMM shapes and precisions.
    #[test]
    fn mapping_invariants(
        m in 1u64..300,
        k in 1u64..1200,
        n in 1u64..1200,
        pi in 0usize..4,
        corelets in 1u32..16,
    ) {
        let p = Precision::MPE_PRECISIONS[pi];
        let op = Op::Gemm { m, k, n, weighted: true };
        let cost = map_layer(&op, p, 1, &CoreletConfig::default(), corelets);
        prop_assert!(cost.utilization() <= 1.0 + 1e-9);
        prop_assert!(cost.utilization() > 0.0);
        prop_assert!(cost.overhead_cycles() >= 0.0);
        prop_assert!(cost.total_cycles() + 1e-9 >= cost.ideal_cycles);
        // Compute cycles alone can never beat the ideal MAC bound.
        prop_assert!(cost.compute_cycles + 1e-9 >= cost.ideal_cycles);
    }

    /// More corelets never increase mapped cycles.
    #[test]
    fn mapping_monotone_in_corelets(
        m in 1u64..128,
        k in 1u64..512,
        n in 1u64..512,
    ) {
        let op = Op::Gemm { m, k, n, weighted: true };
        let c2 = map_layer(&op, Precision::Fp16, 1, &CoreletConfig::default(), 2);
        let c8 = map_layer(&op, Precision::Fp16, 1, &CoreletConfig::default(), 8);
        prop_assert!(c8.total_cycles() <= c2.total_cycles() * 1.001);
    }

    /// MPE instruction words decode back to themselves.
    #[test]
    fn isa_roundtrip(lrf in 0u8..=255, vecs in 0u8..=255, cycles in 0u16..=u16::MAX) {
        for i in [
            MpeInstr::BlockLoad { lrf_base: lrf, words: vecs },
            MpeInstr::Nop { cycles },
        ] {
            prop_assert_eq!(MpeInstr::decode(i.encode()), Some(i));
        }
    }

    /// Throttle rate falls monotonically with sparsity and stays in [0,1).
    #[test]
    fn throttle_monotone(s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let t = ThrottleModel::rapid_default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(t.throttle_rate(lo) >= t.throttle_rate(hi) - 1e-12);
        prop_assert!((0.0..1.0).contains(&t.throttle_rate(lo)));
        prop_assert!(t.effective_frequency_ghz(hi) <= t.f_max_ghz + 1e-12);
    }

    /// Chunked dot products commute with input permutation of whole chunks
    /// (the hierarchical accumulation is order-sensitive only within a
    /// chunk).
    #[test]
    fn chunk_accumulation_stable_under_chunk_swap(
        a in proptest::collection::vec(-1.0f32..1.0, 128),
        b in proptest::collection::vec(-1.0f32..1.0, 128),
    ) {
        use rapid::numerics::accumulate::dot_chunked;
        use rapid::numerics::fma::FmaMode;
        use rapid::numerics::format::FpFormat;
        let fmt = FpFormat::fp16();
        let qa: Vec<f32> = a.iter().map(|&x| fmt.quantize(x)).collect();
        let qb: Vec<f32> = b.iter().map(|&x| fmt.quantize(x)).collect();
        let direct = dot_chunked(FmaMode::Fp16, &qa, &qb, 64);
        // Swap the two 64-element chunks wholesale.
        let mut pa = qa[64..].to_vec();
        pa.extend_from_slice(&qa[..64]);
        let mut pb = qb[64..].to_vec();
        pb.extend_from_slice(&qb[..64]);
        let swapped = dot_chunked(FmaMode::Fp16, &pa, &pb, 64);
        // The outer accumulation is FP32 addition of two chunk sums:
        // commutative for two addends.
        prop_assert_eq!(direct, swapped);
    }

    /// The ring conserves bytes and always drains for arbitrary transfer
    /// sets (no deadlock, no loss).
    #[test]
    fn ring_transfers_conserve_bytes(
        transfers in proptest::collection::vec(
            (0usize..4, 0usize..4, 1u32..4096),
            1..6,
        ),
    ) {
        let mut sim = RingSim::new(4, 5);
        let mut expected = [0u64; 4];
        let mut tag = 1u16;
        for &(src, dst, bytes) in &transfers {
            if src == dst {
                continue;
            }
            unicast(&mut sim, tag, src, dst, bytes);
            expected[dst] += u64::from(bytes);
            tag += 1;
        }
        let drained = sim.run_until_idle(2_000_000);
        prop_assert!(drained.is_ok(), "ring deadlocked: {drained:?}");
        for (node, &want) in expected.iter().enumerate() {
            prop_assert_eq!(sim.received_bytes(node), want, "node {}", node);
        }
    }

    /// The multi-chip all-reduce simulation never undershoots the analytic
    /// bandwidth bound and converges to it for large payloads.
    #[test]
    fn allreduce_bounded_by_analytic(weights in 1u64..50_000_000, chips in 2u32..16) {
        use rapid::ring::allreduce::{analytic_allreduce_cycles, simulate_allreduce, AllReduceConfig};
        let cfg = AllReduceConfig::rapid_training(chips, true);
        let sim = simulate_allreduce(weights, &cfg).cycles as f64;
        let analytic = analytic_allreduce_cycles(weights, &cfg);
        prop_assert!(sim + 1e-9 >= analytic, "sim {} below analytic {}", sim, analytic);
    }
}
