//! Integration tests for the unified telemetry layer: counter determinism
//! across identical seeded runs, bit-invisibility when telemetry is
//! disabled, Chrome-trace well-formedness, thin-view round trips, and the
//! bench record schema.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design

use rapid::fault::{FaultConfig, FaultPlan};
use rapid::numerics::gemm::GemmStats;
use rapid::numerics::Tensor;
use rapid::sim::chip::{try_run_chip_gemm_telemetry, ChipGemmJob};
use rapid::sim::error::SimError;
use rapid::sim::gemm::{CoreSim, GemmJob};
use rapid::telemetry::{validate_bench_record, Json, MetricsRegistry, Telemetry, BENCH_SCHEMA};
use rapid_arch::precision::Precision;

fn gemm_job(seed: u64) -> GemmJob {
    GemmJob {
        a: Tensor::random_uniform(vec![16, 96], -1.0, 1.0, seed),
        b: Tensor::random_uniform(vec![96, 64], -1.0, 1.0, seed + 1),
        precision: Precision::Int4,
    }
}

#[test]
fn counters_are_deterministic_across_identical_runs() {
    let core = CoreSim::rapid();
    let job = gemm_job(70);
    let run = || {
        let mut tele = Telemetry::new();
        core.try_run_gemm_instrumented(&job, None, Some(&mut tele)).expect("clean run");
        tele.registry.to_json().render()
    };
    let first = run();
    assert_eq!(first, run(), "same job twice must produce identical snapshots");
    assert!(first.contains("sim.gemm.runs"), "core counters missing: {first}");
    assert!(first.contains("sim.macs.int4"), "per-precision MACs missing: {first}");
}

#[test]
fn disabled_telemetry_is_bit_invisible() {
    let core = CoreSim::rapid();
    let job = gemm_job(71);
    let plain = core.try_run_gemm_with(&job, None).expect("plain run");
    let mut tele = Telemetry::with_trace();
    let instrumented =
        core.try_run_gemm_instrumented(&job, None, Some(&mut tele)).expect("instrumented run");
    assert_eq!(plain.cycles, instrumented.cycles, "cycle counts must match");
    let pa = plain.c.as_slice();
    let ia = instrumented.c.as_slice();
    assert_eq!(pa.len(), ia.len());
    for (i, (x, y)) in pa.iter().zip(ia).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "element {i} differs with telemetry on");
    }
    assert!(tele.trace.is_some_and(|t| !t.is_empty()), "tracing run must emit events");
}

#[test]
fn chip_trace_round_trips_and_is_well_nested() {
    let job = ChipGemmJob {
        a: Tensor::random_uniform(vec![16, 128], -1.0, 1.0, 72),
        b: Tensor::random_uniform(vec![128, 128], -1.0, 1.0, 73),
        precision: Precision::Int4,
    };
    let mut tele = Telemetry::with_trace();
    try_run_chip_gemm_telemetry(&job, Default::default(), 4, 0, None, Some(&mut tele))
        .expect("chip run");
    let sink = tele.trace.expect("trace sink");
    let text = sink.to_json().render();
    let doc = Json::parse(&text).expect("trace must round-trip through our own parser");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty());

    // ≥4 distinct tracks (pid, tid), including the ring and SFU processes.
    let mut tracks: Vec<(f64, f64)> = Vec::new();
    let mut pids: Vec<f64> = Vec::new();
    for e in events {
        let pid = e.get("pid").and_then(Json::as_f64).expect("pid");
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid");
        if !tracks.contains(&(pid, tid)) {
            tracks.push((pid, tid));
        }
        if !pids.contains(&pid) {
            pids.push(pid);
        }
    }
    assert!(tracks.len() >= 4, "expected >=4 tracks, got {}", tracks.len());
    assert!(pids.contains(&1000.0), "ring track missing");
    assert!(pids.contains(&1001.0), "SFU track missing");

    // Complete events on one track must not overlap (spans are emitted by
    // a per-track coalescer, so they must tile cleanly).
    for &(pid, tid) in &tracks {
        let mut spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").and_then(Json::as_f64) == Some(pid)
                    && e.get("tid").and_then(Json::as_f64) == Some(tid)
            })
            .map(|e| {
                (
                    e.get("ts").and_then(Json::as_f64).expect("ts"),
                    e.get("dur").and_then(Json::as_f64).expect("dur"),
                )
            })
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
        let mut end = f64::MIN;
        for (ts, dur) in spans {
            assert!(ts >= end, "overlapping spans on track ({pid}, {tid})");
            assert!(dur > 0.0, "empty span on track ({pid}, {tid})");
            end = ts + dur;
        }
    }
}

#[test]
fn watchdog_deadlock_flushes_partial_telemetry() {
    // Permanently stalled sequencers: every cycle draws a fresh
    // million-cycle stall burst, so no forward progress is ever made and
    // the watchdog must trip — with the partial counters already flushed.
    let core = CoreSim::rapid();
    let job = gemm_job(74);
    let mut plan = FaultPlan::new(FaultConfig {
        seed: 99,
        seq_stall_rate: 1.0,
        seq_stall_cycles: 1_000_000,
        ..FaultConfig::default()
    });
    let mut tele = Telemetry::with_trace();
    let err = core
        .try_run_gemm_instrumented(&job, Some(&mut plan), Some(&mut tele))
        .expect_err("fully stalled sequencers must deadlock");
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
    assert_eq!(tele.registry.counter("sim.watchdog.deadlocks"), 1);
    assert!(
        tele.registry.counter("sim.watchdog.deadlock_cycle") > 0,
        "deadlock cycle must be recorded"
    );
    let snapshot = tele.registry.to_json().render();
    assert!(snapshot.contains("wseq_stall_cycles"), "partial corelet counters: {snapshot}");
    let sink = tele.trace.expect("trace sink");
    let text = sink.to_json().render();
    assert!(text.contains("\"deadlock\""), "deadlock instant missing from trace");
}

#[test]
fn gemm_stats_round_trip_through_the_registry() {
    let stats = GemmStats { macs: 1234, zero_gated: 56, saturations: 7, guard_clamps: 8 };
    let mut reg = MetricsRegistry::new();
    stats.record_into(&mut reg, "t.gemm");
    stats.record_into(&mut reg, "t.gemm");
    let view = GemmStats::from_registry(&reg, "t.gemm");
    assert_eq!(view.macs, 2468);
    assert_eq!(view.zero_gated, 112);
    assert_eq!(view.saturations, 14);
    assert_eq!(view.guard_clamps, 16);
}

#[test]
fn bench_record_schema_accepts_good_and_rejects_bad() {
    let good = Json::Obj(vec![
        ("schema".to_string(), Json::str(BENCH_SCHEMA)),
        ("experiment".to_string(), Json::str("e2e")),
        (
            "config".to_string(),
            Json::Obj(vec![
                ("threads".to_string(), Json::num(4.0)),
                ("fault_seed".to_string(), Json::num(7.0)),
            ]),
        ),
        ("metrics".to_string(), Json::Obj(vec![("x".to_string(), Json::num(1.5))])),
        ("wall_ms".to_string(), Json::num(12.5)),
    ]);
    validate_bench_record(&good).expect("well-formed record validates");

    let mut missing_seed = good.clone();
    if let Json::Obj(fields) = &mut missing_seed {
        for (k, v) in fields.iter_mut() {
            if k == "config" {
                *v = Json::Obj(vec![("threads".to_string(), Json::num(4.0))]);
            }
        }
    }
    validate_bench_record(&missing_seed).expect_err("config without fault_seed must fail");
}
